"""Legacy setup shim.

The primary build metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works in offline environments where the
``wheel`` package is unavailable and PEP 517 editable installs cannot build.
"""

from setuptools import setup

setup()
