"""Fault injection for the serving stack: hostile streams and mid-run crashes.

Runtime adaptation consults the prediction service precisely when the
environment is misbehaving, so the serving stack must be validated under
the same conditions: lossy collectors (dropped samples), at-least-once
delivery (duplicates), out-of-order arrival, corrupted measurements, stalls
— and the server process itself dying mid-stream.

Three tools:

* :class:`FaultInjector` wraps any record stream with configurable drop /
  duplicate / reorder / corrupt-value / stall faults, drawn from a seeded
  RNG so every run is reproducible.  Fault counts are tallied per kind.
* :func:`run_crash_recovery` drives a durable
  :class:`~repro.server.app.PredictionServer` over HTTP, kills it mid-stream
  (no final checkpoint — the state a ``kill -9`` leaves), restarts it from
  checkpoint + WAL tail, finishes the stream, and compares the recovered
  model *sample-for-sample* against an uninterrupted baseline: same
  ``updates_applied``, bit-identical factor matrices.
* :func:`run_failover` drives a primary/standby pair
  (:mod:`repro.server.replication`) through a partition of the replication
  link, a ``kill -9`` of the primary mid-stream, auto-promotion of the
  standby via the epoch CAS, client failover onto the new primary, and a
  fencing probe against the revived old primary — then diffs the promoted
  standby against a never-failed baseline (factors, gate, dedup ledger,
  windowed accuracy, checkpoint digest).  :class:`FaultyReplicaLink`
  injects the partition / packet-loss / slow-link faults between replicas.
* :func:`run_memory_pressure` squeezes a hot/cold-tiered server under a
  fault-injected allocation ceiling and proves the degradation contract:
  caps tighten, cold-entity revive reads shed with a structured 429,
  hot-entity predictions keep answering, and a ``kill -9`` restart
  reproduces the squeezed state bit-exactly from checkpoint + WAL.

Used by ``tests/test_recovery.py``, ``tests/test_replication.py``,
``tests/test_lifecycle.py`` and ``scripts/chaos_check.py``.
"""

from __future__ import annotations

import math
import os
import time
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AMFConfig
from repro.datasets.schema import QoSRecord
from repro.observability import parse_prometheus_text
from repro.utils.rng import spawn_rng

#: Metric families the chaos drill requires a recovered server to expose:
#: ingest and replay actually ran, predictions were served, durability
#: machinery fired, the trainer supervisor is accounted for, the windowed
#: accuracy monitor is registered, and the robustness layer (outlier gate,
#: dedup ledger, admission control) is wired in — those families register
#: at import time and render even at zero, so their absence means the
#: subsystem fell off the data plane.
CORE_METRIC_FAMILIES: tuple[str, ...] = (
    "qos_amf_observations_total",
    "qos_amf_replay_steps_total",
    "qos_predictions_total",
    "qos_wal_appends_total",
    "qos_checkpoint_saves_total",
    "qos_background_crashes_total",
    "qos_stream_mae",
    "qos_stream_mre",
    "qos_stream_npre",
    "qos_gate_admitted_total",
    "qos_gate_clipped_total",
    "qos_gate_quarantined_total",
    "qos_gate_released_total",
    "qos_gate_evicted_total",
    "qos_gate_score",
    "qos_gate_quarantine_size",
    "qos_ingest_deduped_total",
    "qos_ingest_stale_total",
    "qos_requests_shed_total",
    "qos_ingest_queue_depth",
    "qos_wal_append_errors_total",
    "qos_replication_epoch",
    "qos_replication_lag_records",
    "qos_replication_records_shipped_total",
    "qos_replication_records_applied_total",
    "qos_replication_fetch_errors_total",
    "qos_replication_promotions_total",
    "qos_replication_stale_epoch_total",
    "qos_predict_cache_hits_total",
    "qos_predict_cache_misses_total",
    "qos_predict_cache_evictions_total",
    "qos_predict_cache_size",
    "qos_predict_batch_size",
    "qos_replay_worker_steps_total",
    "qos_replay_parallel_scalar_steps_total",
    "qos_transport_requests_total",
    "qos_transport_mode",
    "qos_lifecycle_resident_bytes",
    "qos_lifecycle_hot_entities",
    "qos_lifecycle_spilled_entities",
    "qos_lifecycle_demotions_total",
    "qos_lifecycle_revivals_total",
    "qos_lifecycle_cold_reads_shed_total",
    "qos_lifecycle_pressure_level",
    "qos_lifecycle_pressure_events_total",
    "qos_migration_exports_total",
    "qos_migration_imports_total",
    "qos_migration_deletes_total",
)


def check_metrics_exposition(text: str) -> "tuple[bool, dict]":
    """Validate a ``/metrics`` scrape for the chaos drill.

    Strict-parses the exposition text and checks every
    :data:`CORE_METRIC_FAMILIES` entry is present.  Returns ``(ok, detail)``
    where ``detail`` reports the family count and whatever went wrong.
    """
    try:
        families = parse_prometheus_text(text)
    except ValueError as exc:
        return False, {"parse_error": str(exc)}
    missing = [name for name in CORE_METRIC_FAMILIES if name not in families]
    detail = {"families": len(families), "missing": missing}
    return not missing, detail


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Per-record fault probabilities for a :class:`FaultInjector`.

    Attributes:
        drop_rate:       probability a record is silently lost.
        duplicate_rate:  probability a record is delivered twice.
        reorder_rate:    probability a record is held back and delivered
                         after its successor (pairwise swap).
        corrupt_rate:    probability a record's value is corrupted.
        corrupt_factor:  corrupted value = ``value * corrupt_factor`` (still
                         finite — the model must clamp, not crash).
        stall_rate:      probability a stall event precedes a record.
        stall_seconds:   how long drivers should pause on a stall event.
        poison_rate:     probability a record is replaced by a *poisoned*
                         wire payload (NaN / ±inf / negative value) that no
                         valid :class:`QoSRecord` can represent — the API
                         boundary must 400 it, never the WAL or the model.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_factor: float = 1000.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.01
    poison_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "duplicate_rate",
            "reorder_rate",
            "corrupt_rate",
            "stall_rate",
            "poison_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be non-negative, got {self.stall_seconds}"
            )


#: Poisoned wire values cycled through by ``poison_rate`` faults.  These
#: cannot live in a :class:`QoSRecord` (its validation refuses them), so
#: the injector carries them as raw payloads; the stdlib's JSON emits and
#: parses ``NaN``/``Infinity``, so they really do cross the wire.
_POISON_VALUES: tuple[float, ...] = (
    float("nan"),
    float("inf"),
    float("-inf"),
    -1.0,
)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One delivery event: a record (or ``None`` for a pure stall) + the
    fault kinds applied to it.  Poison events carry no record — ``payload``
    is the raw wire dict to POST as-is."""

    record: "QoSRecord | None"
    faults: tuple[str, ...] = ()
    payload: "dict | None" = None


class FaultInjector:
    """Apply a :class:`FaultConfig` to a record stream, reproducibly.

    Iterate :meth:`events` for the full event stream (including stalls),
    or the injector itself for just the delivered records.  ``counts``
    tallies injected faults by kind after iteration.
    """

    def __init__(
        self,
        records: Iterable[QoSRecord],
        config: "FaultConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self._records = list(records)
        self.config = config if config is not None else FaultConfig()
        self._rng = spawn_rng(rng)
        self.counts: dict[str, int] = {
            "delivered": 0,
            "dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "corrupted": 0,
            "stalled": 0,
            "poisoned": 0,
        }

    def _corrupt(self, record: QoSRecord) -> QoSRecord:
        return QoSRecord(
            timestamp=record.timestamp,
            user_id=record.user_id,
            service_id=record.service_id,
            value=record.value * self.config.corrupt_factor,
            slice_id=record.slice_id,
        )

    def events(self) -> Iterator[FaultEvent]:
        config = self.config
        rng = self._rng
        held: "QoSRecord | None" = None
        held_faults: tuple[str, ...] = ()

        def deliver(record: QoSRecord, faults: tuple[str, ...]) -> FaultEvent:
            self.counts["delivered"] += 1
            return FaultEvent(record, faults)

        for record in self._records:
            if config.stall_rate and rng.random() < config.stall_rate:
                self.counts["stalled"] += 1
                yield FaultEvent(None, ("stall",))
            if config.drop_rate and rng.random() < config.drop_rate:
                self.counts["dropped"] += 1
                continue
            if config.poison_rate and rng.random() < config.poison_rate:
                # The collector destroyed the measurement: what goes over
                # the wire is garbage that must bounce off the API boundary.
                poison = _POISON_VALUES[
                    int(rng.integers(len(_POISON_VALUES)))
                ]
                self.counts["poisoned"] += 1
                yield FaultEvent(
                    None,
                    ("poison",),
                    payload={
                        "timestamp": record.timestamp,
                        "user_id": record.user_id,
                        "service_id": record.service_id,
                        "value": poison,
                    },
                )
                continue
            faults: tuple[str, ...] = ()
            if config.corrupt_rate and rng.random() < config.corrupt_rate:
                record = self._corrupt(record)
                faults += ("corrupt",)
                self.counts["corrupted"] += 1
            if held is None and config.reorder_rate and rng.random() < config.reorder_rate:
                held, held_faults = record, faults + ("reorder",)
                self.counts["reordered"] += 1
                continue
            yield deliver(record, faults)
            if held is not None:
                yield deliver(held, held_faults)
                held = None
            elif config.duplicate_rate and rng.random() < config.duplicate_rate:
                self.counts["duplicated"] += 1
                yield deliver(record, faults + ("duplicate",))
        if held is not None:
            yield deliver(held, held_faults)

    def __iter__(self) -> Iterator[QoSRecord]:
        return (event.record for event in self.events() if event.record is not None)


def drive_client(
    client,
    injector: FaultInjector,
    sleep_on_stall: bool = True,
    idempotency_prefix: "str | None" = None,
) -> dict:
    """Feed an injector's event stream into a server through its client.

    Observations the server rejects (e.g. values corrupted beyond record
    validation) are counted, not raised — a lossy collector keeps going.
    Poison events POST their raw payload as-is; a server that *accepts* one
    is broken, which ``poison_accepted`` surfaces.  With
    ``idempotency_prefix`` set, each delivery carries a unique idempotency
    key (``"<prefix>:<n>"``), switching the client into its retrying
    at-least-once mode — deliveries shed by admission control are then
    retried (honoring ``Retry-After``) instead of dropped.  Returns
    ``{"reported": n, "rejected": n, "stalls": n, "poisoned": n,
    "poison_accepted": n}``.
    """
    from repro.server.client import PredictionServiceError

    reported = rejected = stalls = poisoned = poison_accepted = 0
    delivery = 0
    for event in injector.events():
        if event.payload is not None:
            poisoned += 1
            try:
                client._request(
                    "POST", "/observations", event.payload, idempotent=False
                )
                poison_accepted += 1
            except PredictionServiceError:
                pass
            continue
        if event.record is None:
            stalls += 1
            if sleep_on_stall:
                time.sleep(injector.config.stall_seconds)
            continue
        record = event.record
        delivery += 1
        key = (
            f"{idempotency_prefix}:{delivery}"
            if idempotency_prefix is not None
            else None
        )
        try:
            client.report_observation(
                record.user_id,
                record.service_id,
                record.value,
                record.timestamp,
                idempotency_key=key,
            )
            reported += 1
        except PredictionServiceError:
            rejected += 1
    return {
        "reported": reported,
        "rejected": rejected,
        "stalls": stalls,
        "poisoned": poisoned,
        "poison_accepted": poison_accepted,
    }


@dataclass
class RecoveryReport:
    """Outcome of :func:`run_crash_recovery`.

    ``matches`` covers model-state equality only; ``metrics_ok`` reports
    whether the recovered server's ``/metrics`` scrape parsed as valid
    Prometheus exposition and contained every :data:`CORE_METRIC_FAMILIES`
    entry (always ``True`` if the scrape was skipped).
    """

    matches: bool
    detail: dict = field(default_factory=dict)
    metrics_ok: bool = True

    def summary(self) -> str:
        lines = [f"recovery {'MATCHES' if self.matches else 'DIVERGES from'} baseline"]
        lines.append(
            f"metrics exposition {'OK' if self.metrics_ok else 'INVALID'}"
        )
        for key, value in self.detail.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def _snapshot(server) -> dict:
    state = {
        "updates_applied": server.model.updates_applied,
        "stored_samples": server.model.n_stored_samples,
        "user_factors": server.model.user_factors(),
        "service_factors": server.model.service_factors(),
        "gate": None,
    }
    gate = getattr(server, "gate", None)
    if gate is not None:
        state["gate"] = {"state": gate.state_dict(), "counts": dict(gate.counts)}
    return state


def run_crash_recovery(
    records: "list[QoSRecord]",
    crash_after: int,
    data_dir: str,
    config: "AMFConfig | None" = None,
    rng: int = 0,
    checkpoint_interval: int = 50,
    faults: "FaultConfig | None" = None,
    server_kwargs: "dict | None" = None,
    baseline_data_dir: "str | None" = None,
) -> RecoveryReport:
    """Kill a durable server mid-stream, recover it, and diff against an
    uninterrupted baseline.

    Both runs use ``background_replay=False`` so the model state is a
    deterministic function of the observation sequence — which is exactly
    what makes "recovered == uninterrupted" a checkable equality rather
    than a statistical claim.  ``faults`` optionally mangles the stream
    first (both runs then see the *same* mangled stream).

    ``server_kwargs`` is forwarded to every :class:`PredictionServer` in
    the drill (crashed, recovered, baseline) — pass ``gate=``/
    ``timestamp_policy=`` etc. to drill the robustness layer; the gate
    snapshot (full state + decision counts) then joins the equality check,
    proving the recovered gate reproduces the pre-crash admit/clip/
    quarantine decisions.  ``baseline_data_dir`` makes the baseline run
    durable too and compares the final checkpoint *contents* of both runs
    (:func:`repro.core.serialization.archive_digest` — zip-member bytes,
    ignoring archive timestamps): equal digests mean the crash left no
    trace at all in the persisted state.
    """
    from repro.core.serialization import archive_digest
    from repro.server.app import PredictionServer
    from repro.server.client import PredictionClient
    from repro.server.wal import CheckpointStore

    if not (0 <= crash_after <= len(records)):
        raise ValueError(
            f"crash_after must be within [0, {len(records)}], got {crash_after}"
        )
    if faults is not None:
        records = list(FaultInjector(records, faults, rng=rng))
        crash_after = min(crash_after, len(records))

    def post(client: "PredictionClient", batch: "list[QoSRecord]") -> None:
        for record in batch:
            client.report_observation(
                record.user_id, record.service_id, record.value, record.timestamp
            )

    server_args = dict(
        config=config,
        rng=rng,
        background_replay=False,
        checkpoint_interval=checkpoint_interval,
    )
    if server_kwargs:
        server_args.update(server_kwargs)

    # Phase 1: serve until the crash point, then die without a checkpoint.
    server = PredictionServer(data_dir=data_dir, **server_args)
    server.start()
    post(PredictionClient(server.address), records[:crash_after])
    server.kill()

    # Phase 2: a new process-equivalent recovers from checkpoint + WAL tail
    # and finishes the stream.
    recovered = PredictionServer(data_dir=data_dir, **server_args)
    recovery_info = dict(recovered.recovery)
    recovered.start()
    recovered_client = PredictionClient(recovered.address)
    post(recovered_client, records[crash_after:])
    # Exercise the read path so prediction metrics accumulate, then scrape
    # /metrics from the still-recovering server — the drill validates the
    # exposition exactly where an operator's monitoring would hit it.
    if records:
        sample = records[0]
        recovered_client.predict(sample.user_id, sample.service_id)
    metrics_ok, metrics_detail = check_metrics_exposition(
        recovered_client.metrics()
    )
    recovered_state = _snapshot(recovered)
    recovered.stop()

    # Baseline: same stream, same seed, never interrupted.  Durable only
    # when checkpoint contents are being compared.  The baseline issues the
    # same read the recovered server answered above: with tiering enabled a
    # read can *revive* a cold entity (a deterministic state mutation), so
    # the equality check requires both servers to see the same read
    # sequence, not just the same writes.
    baseline = PredictionServer(data_dir=baseline_data_dir, **server_args)
    baseline.start()
    baseline_client = PredictionClient(baseline.address)
    post(baseline_client, records)
    if records:
        sample = records[0]
        baseline_client.predict(sample.user_id, sample.service_id)
    baseline_state = _snapshot(baseline)
    baseline.stop()

    mismatches = []
    for key in ("updates_applied", "stored_samples"):
        if recovered_state[key] != baseline_state[key]:
            mismatches.append(
                f"{key}: recovered={recovered_state[key]} baseline={baseline_state[key]}"
            )
    for key in ("user_factors", "service_factors"):
        if recovered_state[key].shape != baseline_state[key].shape:
            mismatches.append(
                f"{key}: shape {recovered_state[key].shape} vs "
                f"{baseline_state[key].shape}"
            )
        elif not np.array_equal(recovered_state[key], baseline_state[key]):
            delta = float(np.max(np.abs(recovered_state[key] - baseline_state[key])))
            mismatches.append(f"{key}: max abs divergence {delta:.3e}")
    if recovered_state["gate"] != baseline_state["gate"]:
        mismatches.append("gate: recovered state diverges from baseline")
    checkpoint_digests = None
    if baseline_data_dir is not None:
        recovered_ckpt = CheckpointStore(data_dir).path
        baseline_ckpt = CheckpointStore(baseline_data_dir).path
        checkpoint_digests = {
            "recovered": archive_digest(recovered_ckpt),
            "baseline": archive_digest(baseline_ckpt),
        }
        if checkpoint_digests["recovered"] != checkpoint_digests["baseline"]:
            mismatches.append(
                "checkpoint: recovered and baseline archives differ "
                f"({checkpoint_digests['recovered'][:12]} vs "
                f"{checkpoint_digests['baseline'][:12]})"
            )
    detail = {
        "records": len(records),
        "crash_after": crash_after,
        "recovery": recovery_info,
        "updates_applied": baseline_state["updates_applied"],
        "mismatches": mismatches,
        "metrics": metrics_detail,
    }
    if recovered_state["gate"] is not None:
        detail["gate_counts"] = recovered_state["gate"]["counts"]
    if checkpoint_digests is not None:
        detail["checkpoint_digests"] = checkpoint_digests
    return RecoveryReport(
        matches=not mismatches,
        metrics_ok=metrics_ok,
        detail=detail,
    )


def run_flood(
    address: "tuple[str, int]",
    records: "list[QoSRecord]",
    threads: int = 4,
    predict_pairs: "list[tuple[int, int]] | None" = None,
) -> dict:
    """Hammer a server's observation endpoint from many threads at once.

    The overload drill: split ``records`` round-robin across ``threads``
    non-retrying clients posting as fast as they can, while a prober thread
    keeps requesting predictions.  With admission control on, the server
    should shed the excess with 429/503 + ``Retry-After`` — and the prober
    should see *zero* failures, because predictions are never shed.

    Returns tallies: ``accepted``, ``rate_limited`` (429), ``overloaded``
    (503), ``rejected`` (other 4xx), ``errors`` (transport), ``retry_after_hints``
    (shed responses that carried a usable hint), ``predictions_ok`` /
    ``predictions_failed``.
    """
    import threading

    from repro.server.client import (
        PredictionClient,
        RetryableServiceError,
        TerminalServiceError,
    )

    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    shards = [records[i::threads] for i in range(threads)]
    tallies = [
        {
            "accepted": 0,
            "rate_limited": 0,
            "overloaded": 0,
            "rejected": 0,
            "errors": 0,
            "retry_after_hints": 0,
        }
        for __ in range(threads)
    ]

    def flood_worker(shard: "list[QoSRecord]", tally: dict) -> None:
        client = PredictionClient(address, retries=0)
        for record in shard:
            try:
                client.report_observation(
                    record.user_id, record.service_id, record.value, record.timestamp
                )
                tally["accepted"] += 1
            except RetryableServiceError as exc:
                status = getattr(exc, "status", None)
                if status == 429:
                    tally["rate_limited"] += 1
                elif status == 503:
                    tally["overloaded"] += 1
                else:
                    tally["errors"] += 1
                if getattr(exc, "retry_after", None) is not None:
                    tally["retry_after_hints"] += 1
            except TerminalServiceError:
                tally["rejected"] += 1

    stop_probing = threading.Event()
    probe_tally = {"predictions_ok": 0, "predictions_failed": 0}

    def probe_worker() -> None:
        client = PredictionClient(address, retries=0)
        pairs = predict_pairs or [(0, 0)]
        index = 0
        while not stop_probing.is_set():
            user_id, service_id = pairs[index % len(pairs)]
            index += 1
            try:
                client.predict(user_id, service_id)
                probe_tally["predictions_ok"] += 1
            except Exception:  # noqa: BLE001 — any failure counts against the drill
                probe_tally["predictions_failed"] += 1
            time.sleep(0.001)

    workers = [
        threading.Thread(target=flood_worker, args=(shard, tally), daemon=True)
        for shard, tally in zip(shards, tallies)
    ]
    prober = threading.Thread(target=probe_worker, daemon=True)
    prober.start()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    stop_probing.set()
    prober.join(timeout=5.0)

    outcome = {key: sum(tally[key] for tally in tallies) for key in tallies[0]}
    outcome.update(probe_tally)
    outcome["shed"] = outcome["rate_limited"] + outcome["overloaded"]
    return outcome


@dataclass(frozen=True, slots=True)
class LinkFaultConfig:
    """Fault profile for the replication link between two replicas.

    Attributes:
        loss_rate:     probability one pull attempt is lost in transit
                       (the fetch raises as if the packet never arrived).
        delay_seconds: added one-way latency per successful pull (a slow
                       WAN link; inflates replication lag without losing
                       anything).
        partitioned:   start with the link down; :meth:`FaultyReplicaLink
                       .heal` restores it.
    """

    loss_rate: float = 0.0
    delay_seconds: float = 0.0
    partitioned: bool = False

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_rate <= 1.0):
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )


class FaultyReplicaLink:
    """Wrap a replica link with partition / packet-loss / slow-link faults.

    Drop-in for :class:`repro.server.replication.HttpReplicaLink` (it only
    needs ``fetch``), so the standby's replicator pulls through the fault
    layer without knowing it.  A partitioned or lossy fetch raises
    :class:`OSError` — indistinguishable, by design, from the primary being
    dead, which is exactly the ambiguity a real standby faces.  ``counts``
    tallies what the link did; :meth:`partition` / :meth:`heal` flip the
    partition at runtime (thread-safe: the replicator thread reads the
    flag while the chaos harness writes it).
    """

    def __init__(
        self,
        inner,
        config: "LinkFaultConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.inner = inner
        self.config = config if config is not None else LinkFaultConfig()
        self._rng = spawn_rng(rng)
        self._partitioned = self.config.partitioned
        self.counts: dict[str, int] = {
            "fetches": 0,
            "delivered": 0,
            "lost": 0,
            "blocked": 0,
            "delayed": 0,
        }

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    def partition(self) -> None:
        """Sever the link: every fetch fails until :meth:`heal`."""
        self._partitioned = True

    def heal(self) -> None:
        self._partitioned = False

    def fetch(self, after_seq: int, limit: int) -> dict:
        self.counts["fetches"] += 1
        if self._partitioned:
            self.counts["blocked"] += 1
            raise OSError("replication link partitioned")
        if self.config.loss_rate and self._rng.random() < self.config.loss_rate:
            self.counts["lost"] += 1
            raise OSError("replication pull lost in transit")
        if self.config.delay_seconds:
            self.counts["delayed"] += 1
            time.sleep(self.config.delay_seconds)
        batch = self.inner.fetch(after_seq, limit)
        self.counts["delivered"] += 1
        return batch


@dataclass
class FailoverReport:
    """Outcome of :func:`run_failover`.

    ``matches`` is the drill verdict: the promoted standby is
    indistinguishable from a server that never failed (state, accuracy
    window, checkpoint digest), promotion won a strictly higher epoch, the
    deposed primary is fenced, and the at-least-once retry across the
    promotion deduplicated.  ``time_to_promote`` is seconds from the
    primary's death to the standby serving as primary.
    """

    matches: bool
    detail: dict = field(default_factory=dict)
    metrics_ok: bool = True
    time_to_promote: float = float("nan")

    def summary(self) -> str:
        lines = [
            "failover "
            + ("MATCHES" if self.matches else "DIVERGES from")
            + " never-failed baseline"
        ]
        lines.append(
            f"metrics exposition {'OK' if self.metrics_ok else 'INVALID'}"
        )
        lines.append(f"time to promote: {self.time_to_promote:.3f}s")
        for key, value in self.detail.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def _ha_snapshot(server) -> dict:
    state = _snapshot(server)
    state["drift"] = server.drift.snapshot()
    state["ledger"] = server.ledger.state_dict()
    return state


def run_failover(
    records: "list[QoSRecord]",
    kill_after: int,
    primary_dir: str,
    standby_dir: str,
    baseline_dir: str,
    epoch_store: str,
    config: "AMFConfig | None" = None,
    rng: int = 0,
    checkpoint_interval: int = 50,
    server_kwargs: "dict | None" = None,
    link_faults: "LinkFaultConfig | None" = None,
    auto_promote_after: "float | None" = 0.25,
    catchup_timeout: float = 30.0,
    key_prefix: str = "failover",
) -> FailoverReport:
    """Kill the primary mid-stream and prove the promoted standby is exact.

    The drill, in order:

    1. A durable **primary** and a WAL-shipping **standby** come up around
       a shared ``epoch_store``; a multi-endpoint
       :class:`~repro.server.client.PredictionClient` posts the first
       ``kill_after`` records (each with an idempotency key) to the
       primary while the standby replicates.
    2. Mid-stream the replication link is **partitioned** (plus whatever
       ``link_faults`` adds — packet loss, slow link); the primary keeps
       ingesting, the standby falls behind, the link **heals**, and the
       drill waits for replication lag to return to zero.
    3. The primary is killed (``kill -9`` semantics — no final
       checkpoint).  With ``auto_promote_after`` set the standby detects
       the silence and promotes itself via the epoch CAS (the measured
       **time to promote**); ``None`` promotes explicitly, timing just the
       CAS + fencing checkpoint.
    4. The *same* client resends the last pre-kill record (same key —
       must deduplicate on the new primary, proving at-least-once across
       promotion), then fails over and posts the remaining records.
    5. The old primary is revived from its untouched data dir and probed
       with a write: it must refuse with a structured 409 ``stale_epoch``.
    6. A never-failed baseline server ingests the identical stream; the
       promoted standby must match it sample-for-sample — model factors,
       gate state, dedup ledger, windowed MAE/MRE/NPRE — and its final
       checkpoint must be byte-identical under
       :func:`~repro.core.serialization.archive_digest` with the
       control-plane ``replication`` extra (the necessarily-higher epoch)
       excluded.

    Both replicas and the baseline run ``background_replay=False`` so every
    comparison is an equality, not a tolerance.
    """
    from repro.core.serialization import archive_digest
    from repro.server.app import PredictionServer
    from repro.server.client import (
        PredictionClient,
        TerminalServiceError,
    )
    from repro.server.replication import HttpReplicaLink, ReplicationConfig
    from repro.server.wal import CheckpointStore

    if not (1 <= kill_after <= len(records)):
        raise ValueError(
            f"kill_after must be within [1, {len(records)}], got {kill_after}"
        )

    server_args = dict(
        config=config,
        rng=rng,
        background_replay=False,
        checkpoint_interval=checkpoint_interval,
    )
    if server_kwargs:
        server_args.update(server_kwargs)

    mismatches: list[str] = []
    detail: dict = {"records": len(records), "kill_after": kill_after}

    primary = PredictionServer(
        data_dir=primary_dir,
        replication=ReplicationConfig(
            epoch_store, role="primary", node_id="drill-primary"
        ),
        **server_args,
    )
    primary.start()
    link = FaultyReplicaLink(
        HttpReplicaLink(primary.address, timeout=2.0), link_faults, rng=rng
    )
    standby = PredictionServer(
        data_dir=standby_dir,
        replication=ReplicationConfig(
            epoch_store,
            role="standby",
            primary_address=primary.address,
            node_id="drill-standby",
            poll_interval=0.01,
            fetch_timeout=2.0,
            auto_promote_after=auto_promote_after,
        ),
        replication_link=link,
        **server_args,
    )
    standby.start()

    client = PredictionClient(
        [primary.address, standby.address],
        retries=4,
        backoff=0.02,
        backoff_max=0.25,
        jitter=0.1,
    )

    def post(batch_start: int, batch_end: int) -> None:
        for index in range(batch_start, batch_end):
            record = records[index]
            client.report_observation(
                record.user_id,
                record.service_id,
                record.value,
                record.timestamp,
                idempotency_key=f"{key_prefix}:{index}",
            )

    def wait_catchup() -> float:
        started = time.perf_counter()
        deadline = started + catchup_timeout
        while standby.wal_last_seq < primary.wal_last_seq:
            if time.perf_counter() > deadline:
                mismatches.append(
                    "replication: standby never caught up "
                    f"(standby seq {standby.wal_last_seq} < primary "
                    f"{primary.wal_last_seq}: "
                    f"{standby._replicator.status()})"
                )
                break
            time.sleep(0.005)
        return time.perf_counter() - started

    # Phase 1+2: stream to the primary; partition the link mid-stream so
    # the standby falls behind, then heal and require full catch-up.
    partition_at = max(1, kill_after // 2)
    post(0, partition_at)
    wait_catchup()
    link.partition()
    post(partition_at, kill_after)
    detail["lag_during_partition"] = (
        primary.wal_last_seq - standby.wal_last_seq
    )
    link.heal()
    detail["catchup_seconds_after_heal"] = round(wait_catchup(), 4)
    detail["link_counts"] = dict(link.counts)

    # Phase 3: kill the primary (no final checkpoint) and wait for the
    # standby to promote itself via health-check timeout + epoch CAS.  The
    # clock starts *before* kill(): the primary stops answering fetches
    # somewhere inside the teardown, and the standby arms its silence
    # timer from its last successful fetch — counting teardown time
    # against the measurement would systematically under-report.
    promote_started = time.perf_counter()
    primary.kill()
    if auto_promote_after is None:
        if not standby.promote():
            mismatches.append("promotion: explicit promote() lost the CAS")
        time_to_promote = time.perf_counter() - promote_started
    else:
        promote_deadline = promote_started + auto_promote_after + catchup_timeout
        while standby.role != "primary":
            if time.perf_counter() > promote_deadline:
                mismatches.append(
                    "promotion: standby never auto-promoted "
                    f"({standby._replicator.status()})"
                )
                break
            time.sleep(0.005)
        time_to_promote = time.perf_counter() - promote_started
    detail["promoted_epoch"] = standby.epoch
    if standby.role == "primary" and standby.epoch < 2:
        mismatches.append(
            f"promotion: epoch did not advance (still {standby.epoch})"
        )

    # Phase 4: the at-least-once retry across the promotion, then the rest
    # of the stream through client failover (the dead primary's endpoint
    # trips the breaker; the write lands on the new primary).
    if standby.role == "primary":
        resend = records[kill_after - 1]
        duplicate_error = client.report_observation(
            resend.user_id,
            resend.service_id,
            resend.value,
            resend.timestamp,
            idempotency_key=f"{key_prefix}:{kill_after - 1}",
        )
        if duplicate_error == duplicate_error:  # not NaN -> re-applied
            mismatches.append(
                "dedup: retried key re-applied an SGD step across promotion"
            )
        post(kill_after, len(records))
        sample = records[0]
        client.predict(sample.user_id, sample.service_id)
        metrics_ok, metrics_detail = check_metrics_exposition(client.metrics())
        detail["client_failovers"] = client.failovers_performed
        detail["replication_status"] = client.replication_status()
    else:
        metrics_ok, metrics_detail = False, {"skipped": "promotion failed"}
    detail["metrics"] = metrics_detail

    # Phase 5: revive the deposed primary from its own data dir; the epoch
    # store outranks its checkpoint, so it must come up fenced and refuse
    # writes with a structured 409.
    revived = PredictionServer(
        data_dir=primary_dir,
        replication=ReplicationConfig(
            epoch_store, role="primary", node_id="drill-primary-revived"
        ),
        **server_args,
    )
    revived.start()
    fence_probe = records[0]
    try:
        PredictionClient(revived.address, retries=0).report_observation(
            fence_probe.user_id,
            fence_probe.service_id,
            fence_probe.value,
            fence_probe.timestamp,
        )
        mismatches.append("fencing: deposed primary accepted a write")
    except TerminalServiceError as exc:
        body = getattr(exc, "body", None) or {}
        detail["fence_probe"] = {
            "status": getattr(exc, "status", None),
            "code": body.get("code"),
            "cluster_epoch": body.get("cluster_epoch"),
        }
        if getattr(exc, "status", None) != 409 or body.get("code") != "stale_epoch":
            mismatches.append(
                "fencing: expected 409 stale_epoch, got "
                f"{detail['fence_probe']}"
            )
    revived.kill()

    standby_state = _ha_snapshot(standby)
    standby.stop()  # final checkpoint carries the post-promotion epoch

    # Phase 6: the never-failed baseline sees the identical logical stream,
    # including the duplicate resend (a ledger no-op on both sides).
    baseline = PredictionServer(data_dir=baseline_dir, **server_args)
    baseline.start()
    baseline_client = PredictionClient(baseline.address)
    for index, record in enumerate(records[:kill_after]):
        baseline_client.report_observation(
            record.user_id,
            record.service_id,
            record.value,
            record.timestamp,
            idempotency_key=f"{key_prefix}:{index}",
        )
    resend = records[kill_after - 1]
    baseline_client.report_observation(
        resend.user_id,
        resend.service_id,
        resend.value,
        resend.timestamp,
        idempotency_key=f"{key_prefix}:{kill_after - 1}",
    )
    for index in range(kill_after, len(records)):
        record = records[index]
        baseline_client.report_observation(
            record.user_id,
            record.service_id,
            record.value,
            record.timestamp,
            idempotency_key=f"{key_prefix}:{index}",
        )
    baseline_state = _ha_snapshot(baseline)
    baseline.stop()

    for key in ("updates_applied", "stored_samples"):
        if standby_state[key] != baseline_state[key]:
            mismatches.append(
                f"{key}: promoted={standby_state[key]} "
                f"baseline={baseline_state[key]}"
            )
    for key in ("user_factors", "service_factors"):
        if standby_state[key].shape != baseline_state[key].shape:
            mismatches.append(
                f"{key}: shape {standby_state[key].shape} vs "
                f"{baseline_state[key].shape}"
            )
        elif not np.array_equal(standby_state[key], baseline_state[key]):
            delta = float(
                np.max(np.abs(standby_state[key] - baseline_state[key]))
            )
            mismatches.append(f"{key}: max abs divergence {delta:.3e}")
    if standby_state["gate"] != baseline_state["gate"]:
        mismatches.append("gate: promoted state diverges from baseline")
    if standby_state["ledger"] != baseline_state["ledger"]:
        mismatches.append("ledger: promoted dedup ledger diverges from baseline")
    drift_promoted, drift_baseline = standby_state["drift"], baseline_state["drift"]
    for metric in ("window", "mae", "mre", "npre"):
        lhs, rhs = drift_promoted[metric], drift_baseline[metric]
        if lhs != rhs and not (lhs != lhs and rhs != rhs):  # NaN == NaN here
            mismatches.append(
                f"drift {metric}: promoted={lhs!r} baseline={rhs!r}"
            )
    detail["windowed_accuracy"] = {
        "promoted": drift_promoted,
        "baseline": drift_baseline,
    }

    digests = {
        "promoted": archive_digest(
            CheckpointStore(standby_dir).path, ignore_extra=("replication",)
        ),
        "baseline": archive_digest(
            CheckpointStore(baseline_dir).path, ignore_extra=("replication",)
        ),
    }
    detail["checkpoint_digests"] = digests
    if digests["promoted"] != digests["baseline"]:
        mismatches.append(
            "checkpoint: promoted and baseline archives differ "
            f"({digests['promoted'][:12]} vs {digests['baseline'][:12]})"
        )

    detail["mismatches"] = mismatches
    return FailoverReport(
        matches=not mismatches,
        metrics_ok=metrics_ok,
        detail=detail,
        time_to_promote=time_to_promote,
    )


@dataclass
class MemoryPressureReport:
    """Outcome of :func:`run_memory_pressure`.

    ``matches`` is the drill verdict: under a fault-injected allocation
    ceiling the server *degraded* — tightened its hot-tier caps, shed
    cold-entity revive reads with a structured 429, kept answering
    hot-entity predictions — instead of dying, and a kill-and-restart
    reproduced the squeezed state bit-exactly from checkpoint + WAL
    (pressure and revive events replay at their logged positions).
    """

    matches: bool
    detail: dict = field(default_factory=dict)
    metrics_ok: bool = True

    def summary(self) -> str:
        lines = [
            "memory pressure "
            + ("DEGRADED GRACEFULLY" if self.matches else "FAILED")
        ]
        lines.append(
            f"metrics exposition {'OK' if self.metrics_ok else 'INVALID'}"
        )
        for key, value in self.detail.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def run_memory_pressure(
    records: "list[QoSRecord]",
    data_dir: str,
    config: "AMFConfig | None" = None,
    rng: int = 0,
    checkpoint_interval: int = 200,
    hot_users: int = 48,
    hot_services: int = 48,
    limit_fraction: float = 0.5,
    pressure_deadline: float = 30.0,
    server_kwargs: "dict | None" = None,
) -> MemoryPressureReport:
    """Squeeze a tiered server under an allocation ceiling and prove it
    degrades instead of dying, then recovers bit-exactly.

    The ceiling is fault-injected: a throwaway :class:`TieredAMF` filled to
    the hot caps measures what a full hot tier costs, and the watchdog
    limit is set to ``limit_fraction`` of that — guaranteed unreachable, so
    sustained pressure is certain.  ``min_hot`` is floored at 70% of the
    caps so one tighten step exhausts the shrink headroom and the server
    sits in ``critical`` (shedding cold reads) for the rest of the stream.

    The drill then asserts the degradation contract from the outside:

    1. the watchdog escalates to ``critical`` and logs pressure events;
    2. a prediction for a *spilled* entity is refused with a structured
       429 + ``Retry-After`` (the revive read is shed);
    3. a prediction for a *hot* entity still answers from the model —
       predictions for hot entities are never shed;
    4. ``/metrics`` stays a valid exposition including every lifecycle
       family;
    5. after ``kill()`` (no final checkpoint) a restart reproduces the
       squeezed state — factors, lifecycle state (tier assignment, caps,
       counters), pressure level — bit-exactly from checkpoint + WAL.
    """
    from repro.datasets.schema import QoSRecord as _QoSRecord
    from repro.lifecycle import LifecycleConfig, SpillStore, TieredAMF
    from repro.server.app import PredictionServer
    from repro.server.client import PredictionClient, RetryableServiceError

    if not records:
        raise ValueError("memory-pressure drill needs a non-empty stream")

    # Fault injection: measure a full hot tier, then cap below it.
    probe = TieredAMF(
        config,
        rng=rng,
        lifecycle=LifecycleConfig(
            hot_users=hot_users, hot_services=hot_services
        ),
        spill=SpillStore(":memory:"),
    )
    for k in range(max(hot_users, hot_services)):
        probe.observe(
            _QoSRecord(
                timestamp=float(k),
                user_id=k % hot_users,
                service_id=k % hot_services,
                value=1.0,
            )
        )
    full_resident = probe.resident_bytes()
    limit = max(1, int(full_resident * limit_fraction))

    lifecycle = LifecycleConfig(
        hot_users=hot_users,
        hot_services=hot_services,
        memory_limit_bytes=limit,
        watchdog_interval=0.02,
        sustain_polls=2,
        shrink_factor=0.7,
        min_hot=max(2, int(hot_users * 0.7)),
    )
    server_args = dict(
        config=config,
        rng=rng,
        background_replay=False,
        checkpoint_interval=checkpoint_interval,
        lifecycle=lifecycle,
    )
    if server_kwargs:
        server_args.update(server_kwargs)

    mismatches: list[str] = []
    detail: dict = {
        "records": len(records),
        "memory_limit_bytes": limit,
        "full_tier_resident_bytes": full_resident,
    }

    server = PredictionServer(data_dir=data_dir, **server_args)
    server.start()
    client = PredictionClient(server.address, retries=0)
    for record in records:
        client.report_observation(
            record.user_id, record.service_id, record.value, record.timestamp
        )

    # 1. Sustained pressure: the watchdog must reach critical, shed, and
    # tighten the caps all the way to the min_hot floor — after that the
    # tier assignment is static (further tighten steps are no-ops), so the
    # hot/spilled entities probed below cannot move underneath the probes.
    deadline = time.monotonic() + pressure_deadline
    status = {}
    sample = records[0]
    tick = max(record.timestamp for record in records)
    while time.monotonic() < deadline:
        status = client.status()["lifecycle"]
        if (
            status["pressure_level"] == "critical"
            and status["shedding_cold_reads"]
            and status["capacity_users"] <= lifecycle.min_hot
        ):
            break
        # Keep the hot tier warm so resident bytes stay above the ceiling.
        tick += 1.0
        client.report_observation(
            sample.user_id, sample.service_id, sample.value, tick
        )
        time.sleep(0.01)
    detail["lifecycle_status"] = dict(status)
    if status.get("pressure_level") != "critical":
        mismatches.append(
            f"pressure: watchdog never reached critical ({status})"
        )
    if not status.get("pressure_events"):
        mismatches.append("pressure: no pressure events were applied")
    if status.get("capacity_users", hot_users) >= hot_users:
        mismatches.append("pressure: hot-user cap was never tightened")

    # 2+3. Shed the cold read, never the hot one.
    spilled = server.model.with_model(lambda m: sorted(m._spilled_users))
    hot = server.model.with_model(lambda m: sorted(m._u_slot_of))
    known_service = server.model.with_model(lambda m: sorted(m._s_slot_of))[0]
    if not spilled:
        mismatches.append("tiering: squeeze produced no spilled users")
    else:
        try:
            client.predict(spilled[0], known_service)
            mismatches.append(
                "shedding: cold-entity read answered instead of shedding"
            )
        except RetryableServiceError as exc:
            detail["cold_read"] = {
                "status": exc.status,
                "retry_after": getattr(exc, "retry_after", None),
            }
            if exc.status != 429 or not getattr(exc, "retry_after", None):
                mismatches.append(
                    f"shedding: expected 429 + Retry-After, got {exc.status}"
                )
    hot_answer = client.predict_detailed(hot[0], known_service)
    detail["hot_read_source"] = hot_answer["source"]
    if hot_answer["source"] != "model":
        mismatches.append(
            f"hot path: expected a model answer, got {hot_answer['source']!r}"
        )

    # 4. The exposition stays valid mid-squeeze.
    metrics_ok, metrics_detail = check_metrics_exposition(client.metrics())
    detail["metrics"] = metrics_detail

    # Observe a few *spilled* users so revive events land in the WAL after
    # the last checkpoint — the restart below then replays lifecycle
    # events, not just observations (unless a checkpoint boundary happens
    # to fall on the final write, which the recovery detail records).
    for uid in spilled[:7]:
        tick += 1.0
        client.report_observation(uid, known_service, sample.value, tick)

    # 5. Kill (no final checkpoint) and require a bit-exact restart.
    squeezed = {
        "user_factors": server.model.user_factors(),
        "service_factors": server.model.service_factors(),
        "updates_applied": server.model.updates_applied,
        "lifecycle": server.model.with_model(lambda m: m.lifecycle_state()),
    }
    server.kill()
    restarted = PredictionServer(data_dir=data_dir, **server_args)
    detail["recovery"] = dict(restarted.recovery)
    recovered = {
        "user_factors": restarted.model.user_factors(),
        "service_factors": restarted.model.service_factors(),
        "updates_applied": restarted.model.updates_applied,
        "lifecycle": restarted.model.with_model(lambda m: m.lifecycle_state()),
    }
    for key in ("user_factors", "service_factors"):
        if not np.array_equal(squeezed[key], recovered[key]):
            mismatches.append(f"recovery: {key} diverged across restart")
    if squeezed["updates_applied"] != recovered["updates_applied"]:
        mismatches.append(
            "recovery: updates_applied "
            f"{recovered['updates_applied']} != {squeezed['updates_applied']}"
        )
    if squeezed["lifecycle"] != recovered["lifecycle"]:
        mismatches.append(
            "recovery: lifecycle state (tier assignment / caps / counters) "
            "diverged across restart"
        )
    restarted.start()
    survivor = PredictionClient(restarted.address, retries=0)
    post_restart = survivor.predict_detailed(hot[0], known_service)
    if post_restart["source"] != "model":
        mismatches.append("recovery: hot prediction degraded after restart")
    survivor.close()
    restarted.stop()
    client.close()

    detail["mismatches"] = mismatches
    return MemoryPressureReport(
        matches=not mismatches,
        metrics_ok=metrics_ok,
        detail=detail,
    )


@dataclass
class ShardKillReport:
    """Outcome of :func:`run_shard_kill`.

    ``matches`` covers the whole containment contract: surviving shards'
    state and per-sample error streams identical to a never-faulted
    baseline, zero failed requests outside the dead shard's keyspace,
    and the killed shard recovering bit-exact (checkpoint digest
    equality) from its own WAL.  ``metrics_ok`` validates the router's
    *aggregated* ``/metrics`` exposition.
    """

    matches: bool
    detail: dict = field(default_factory=dict)
    metrics_ok: bool = True

    def summary(self) -> str:
        lines = [
            "shard-kill blast radius "
            + ("CONTAINED" if self.matches else "NOT CONTAINED")
        ]
        lines.append(
            f"fleet metrics exposition {'OK' if self.metrics_ok else 'INVALID'}"
        )
        for key, value in self.detail.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def _errors_equal(ours: "list[float]", theirs: "list[float]") -> bool:
    if len(ours) != len(theirs):
        return False
    return all(
        a == b or (math.isnan(a) and math.isnan(b))
        for a, b in zip(ours, theirs)
    )


def run_shard_kill(
    records: "list[QoSRecord]",
    data_root: str,
    n_shards: int = 3,
    kill_after: "int | None" = None,
    rng: int = 0,
    checkpoint_interval: int = 50,
) -> ShardKillReport:
    """Kill one shard of a routed fleet mid-stream; prove the blast
    radius is bounded.

    The drill builds ``n_shards`` full durable :class:`PredictionServer`
    shards behind a :class:`~repro.cluster.router.ClusterRouter`, drives
    the stream through the router one observation at a time, and kills
    the shard owning the record at ``kill_after`` (default: halfway).
    While the shard is down:

    * requests for its users must fail with a structured
      ``503 shard_unavailable`` (counted, later replayed);
    * every surviving shard must keep accepting writes *and* answering
      predictions — one hard failure fails the drill.

    The killed shard then restarts from its own checkpoint + WAL tail
    (same data dir, same port), the orphaned records are re-sent in
    their original order, and the stream finishes.  Finally every shard
    is diffed against a never-faulted baseline server fed exactly the
    records that shard accepted, in order: per-sample error streams must
    match element-for-element (so windowed MAE is untouched), and final
    checkpoint archives must be byte-identical
    (:func:`~repro.core.serialization.archive_digest`).
    """
    from repro.cluster.placement import PlacementTable, ShardSpec
    from repro.cluster.router import ClusterRouter
    from repro.core.serialization import archive_digest
    from repro.server.app import PredictionServer
    from repro.server.client import (
        PredictionClient,
        RetryableServiceError,
    )
    from repro.server.wal import CheckpointStore

    if n_shards < 2:
        raise ValueError(f"n_shards must be >= 2, got {n_shards}")
    if kill_after is None:
        kill_after = len(records) // 2
    if not (0 < kill_after < len(records)):
        raise ValueError(
            f"kill_after must be within (0, {len(records)}), got {kill_after}"
        )

    server_args = dict(
        rng=rng,
        background_replay=False,
        checkpoint_interval=checkpoint_interval,
        binary_port=None,
    )
    names = [f"shard-{index}" for index in range(n_shards)]
    servers: dict[str, PredictionServer] = {}
    for name in names:
        server = PredictionServer(
            data_dir=os.path.join(data_root, name), **server_args
        )
        server.start()
        servers[name] = server
    table = PlacementTable(
        [
            ShardSpec(name=name, addresses=(servers[name].address,))
            for name in names
        ]
    )
    router = ClusterRouter(table)
    router.start()
    client = PredictionClient(router.address, retries=0)

    # The victim is whichever shard owns the record at the kill point, so
    # the outage is guaranteed to intersect live traffic.
    victim = table.owner_of("user", records[kill_after].user_id).name
    victim_port = servers[victim].address[1]

    owners = [
        table.owner_of("user", record.user_id).name for record in records
    ]
    fleet_errors: dict[str, list[float]] = {name: [] for name in names}
    mismatches: list[str] = []
    detail: dict = {
        "records": len(records),
        "shards": n_shards,
        "kill_after": kill_after,
        "victim": victim,
        "substream_sizes": dict(Counter(owners)),
    }

    def send(index: int) -> None:
        record = records[index]
        error = client.report_observation(
            record.user_id, record.service_id, record.value, record.timestamp
        )
        fleet_errors[owners[index]].append(error)

    # Phase A: healthy fleet up to the kill point.
    for index in range(kill_after):
        send(index)

    servers[victim].kill()

    # Phase B: the outage.  Victim-owned records must fail structurally;
    # surviving shards must stay fully available for writes and reads.
    orphaned: list[int] = []
    outage_shed = 0
    survivor_failures: list[str] = []
    for index in range(kill_after, len(records)):
        record = records[index]
        if owners[index] == victim:
            try:
                send(index)
            except RetryableServiceError as exc:
                body = getattr(exc, "body", None) or {}
                if body.get("code") != "shard_unavailable":
                    survivor_failures.append(
                        f"record {index}: dead shard failed without "
                        f"shard_unavailable: {body}"
                    )
                outage_shed += 1
                orphaned.append(index)
            else:
                survivor_failures.append(
                    f"record {index}: write for dead shard {victim} was "
                    "acknowledged"
                )
        else:
            try:
                send(index)
                client.predict(record.user_id, record.service_id)
            except Exception as exc:  # noqa: BLE001 — any failure breaks containment
                survivor_failures.append(
                    f"record {index} (shard {owners[index]}): {exc}"
                )
    if survivor_failures:
        mismatches.append(
            f"availability: {len(survivor_failures)} surviving-shard "
            f"failures, first: {survivor_failures[0]}"
        )
    detail["outage_requests_shed"] = outage_shed
    if not orphaned:
        mismatches.append(
            "drill produced no victim-owned traffic during the outage; "
            "increase the stream length"
        )

    # Phase C: the victim restarts from its own WAL on the same address
    # and the orphaned records are replayed in their original order.
    restarted = PredictionServer(
        data_dir=os.path.join(data_root, victim),
        port=victim_port,
        **server_args,
    )
    detail["recovery"] = dict(restarted.recovery)
    restarted.start()
    servers[victim] = restarted
    for index in orphaned:
        send(index)

    # Fleet-level read path + aggregated exposition, scraped where an
    # operator's monitoring would hit it.
    sample = records[0]
    client.predict(sample.user_id, sample.service_id)
    metrics_ok, metrics_detail = check_metrics_exposition(
        client._request("GET", "/metrics", raw=True)
    )
    detail["metrics"] = metrics_detail
    health = client._request("GET", "/health")
    if health.get("status") != "ok":
        mismatches.append(f"fleet health after recovery: {health.get('status')}")

    snapshots = {name: _snapshot(servers[name]) for name in names}
    for name in names:
        servers[name].stop()
    router.stop()
    client.close()

    # Baselines: one never-faulted server per shard, fed exactly the
    # records that shard accepted, in order.  The victim's baseline sees
    # pre-kill records then the orphaned replays (their original order);
    # survivors' baselines see their full substream.
    for name in names:
        if name == victim:
            indices = [i for i in range(kill_after) if owners[i] == name]
            indices += orphaned
        else:
            indices = [i for i in range(len(records)) if owners[i] == name]
        baseline_dir = os.path.join(data_root, f"baseline-{name}")
        baseline = PredictionServer(data_dir=baseline_dir, **server_args)
        baseline.start()
        baseline_client = PredictionClient(baseline.address)
        baseline_errors = [
            baseline_client.report_observation(
                records[i].user_id,
                records[i].service_id,
                records[i].value,
                records[i].timestamp,
            )
            for i in indices
        ]
        baseline_state = _snapshot(baseline)
        baseline_client.close()
        baseline.stop()
        if not _errors_equal(fleet_errors[name], baseline_errors):
            mismatches.append(
                f"{name}: per-sample error stream diverges from baseline "
                "(windowed MAE affected)"
            )
        state = snapshots[name]
        for key in ("updates_applied", "stored_samples"):
            if state[key] != baseline_state[key]:
                mismatches.append(
                    f"{name}: {key} {state[key]} != baseline {baseline_state[key]}"
                )
        for key in ("user_factors", "service_factors"):
            if not np.array_equal(state[key], baseline_state[key]):
                mismatches.append(f"{name}: {key} diverged from baseline")
        digests = {
            "shard": archive_digest(
                CheckpointStore(os.path.join(data_root, name)).path
            ),
            "baseline": archive_digest(CheckpointStore(baseline_dir).path),
        }
        if digests["shard"] != digests["baseline"]:
            mismatches.append(
                f"{name}: checkpoint archive differs from baseline "
                f"({digests['shard'][:12]} vs {digests['baseline'][:12]})"
            )
        if name == victim:
            detail["victim_checkpoint_digests"] = digests

    detail["mismatches"] = mismatches
    return ShardKillReport(
        matches=not mismatches,
        metrics_ok=metrics_ok,
        detail=detail,
    )


@dataclass
class MigrationKillReport:
    """Outcome of :func:`run_migration_kill`.

    ``matches`` covers the crash-safety contract: with a kill injected
    mid-migration (source shard, destination shard, or router), the
    resumed migration converges with zero lost and zero duplicated
    entities, every re-homed entity's exported payload (factor row, EMA
    error, samples, gate stats) byte-equal to an unkilled baseline
    migration's, predictions bit-identical before/after and across the
    two runs, and both shards' checkpoint archives digest-equal to the
    baseline's (the migration ledger — whose batch sequence numbers may
    legitimately differ after a resume — is the only excluded extra).
    """

    matches: bool
    detail: dict = field(default_factory=dict)
    metrics_ok: bool = True

    def summary(self) -> str:
        lines = [
            "migration kill drill "
            + ("CONVERGED" if self.matches else "DIVERGED")
        ]
        lines.append(
            f"fleet metrics exposition {'OK' if self.metrics_ok else 'INVALID'}"
        )
        for key, value in self.detail.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def run_migration_kill(
    records: "list[QoSRecord]",
    data_root: str,
    kill_target: str = "source",
    kill_phase: str = "transfer",
    rng: int = 0,
    checkpoint_interval: int = 50,
    batch_entities: int = 6,
    restart_delay: float = 0.25,
    join_timeout: float = 120.0,
) -> MigrationKillReport:
    """Kill anything mid-migration; prove the resumed migration converges.

    Two identical 2-shard fleets (lifecycle tiering on, durable WALs,
    router journal on disk) ingest ``records`` and then drain shard
    ``s0`` through a live migration.  The *baseline* fleet migrates
    uninterrupted.  The *faulted* fleet has ``kill_target`` (``source``,
    ``dest``, or ``router``) killed — no graceful shutdown, no final
    checkpoint — at the first occurrence of ``kill_phase`` (``export``,
    ``transfer``, ``commit``, or ``pre-commit``), then restarted: a shard
    restarts from its own checkpoint + WAL on the same port while the
    coordinator retries against it; a killed router is rebuilt over the
    same data dir and resumes the journaled migration on start.

    Convergence is judged against the baseline: the source ends empty,
    the destination holds every entity exactly once, each re-homed
    entity's canonical export payload is byte-equal, predictions are
    bit-identical before/after migration and across fleets, and both
    shards' final checkpoint archives are digest-equal (ignoring only
    the destination's migration ledger, whose batch sequence numbers may
    skip after a resume).
    """
    import threading

    from repro.cluster.placement import PlacementTable, ShardSpec
    from repro.cluster.router import ClusterRouter
    from repro.core.serialization import archive_digest
    from repro.server.app import PredictionServer
    from repro.server.client import PredictionClient
    from repro.server.wal import CheckpointStore

    if kill_target not in ("source", "dest", "router"):
        raise ValueError(
            f"kill_target must be source/dest/router, got {kill_target!r}"
        )
    if kill_phase not in ("export", "transfer", "commit", "pre-commit"):
        raise ValueError(
            f"kill_phase must be export/transfer/commit/pre-commit, "
            f"got {kill_phase!r}"
        )

    server_args = dict(
        background_replay=False,
        checkpoint_interval=checkpoint_interval,
        binary_port=None,
        lifecycle=True,
    )
    names = ("s0", "s1")
    probe = [
        (record.user_id, record.service_id) for record in records[:1]
    ]
    if not probe:
        raise ValueError("records must be non-empty")

    def run_fleet(root: str, kill: bool) -> dict:
        servers: dict[str, PredictionServer] = {}
        ports: dict[str, int] = {}
        for index, name in enumerate(names):
            server = PredictionServer(
                rng=rng + index,
                data_dir=os.path.join(root, name),
                **server_args,
            )
            server.start()
            servers[name] = server
            ports[name] = server.address[1]
        table = PlacementTable(
            [
                ShardSpec(name=name, addresses=(servers[name].address,))
                for name in names
            ]
        )
        router = ClusterRouter(table, data_dir=os.path.join(root, "router"))
        router.start()
        client = PredictionClient(router.address, retries=0)

        for record in records:
            client.report_observation(
                record.user_id, record.service_id, record.value, record.timestamp
            )
        pairs = sorted(
            {(record.user_id, record.service_id) for record in records}
        )
        pre = {pair: client.predict(*pair) for pair in pairs}
        source_inventory = servers["s0"].model.with_model(
            lambda m: {
                "user": sorted(m.entity_ids("user")),
                "service": sorted(m.entity_ids("service")),
            }
        )

        target = table.draining_shard("s0")
        kill_fired = threading.Event()

        def on_phase(progress: dict) -> None:
            if kill_fired.is_set() or progress["phase"] != kill_phase:
                return
            kill_fired.set()
            if kill_target == "router":
                router.kill()
                return
            victim = "s0" if kill_target == "source" else "s1"
            servers[victim].kill()

            def _restart() -> None:
                time.sleep(restart_delay)
                replacement = PredictionServer(
                    rng=rng + names.index(victim),
                    data_dir=os.path.join(root, victim),
                    port=ports[victim],
                    **server_args,
                )
                replacement.start()
                servers[victim] = replacement

            threading.Thread(target=_restart, daemon=True).start()

        coordinator = router.start_migration(
            target,
            on_phase=on_phase if kill else None,
            batch_entities=batch_entities,
        )
        coordinator.join(timeout=join_timeout)
        if kill and kill_target == "router":
            # The dead router's journal is the contract: a successor
            # over the same data dir resumes the migration on start.
            client.close()
            router = ClusterRouter(
                table, data_dir=os.path.join(root, "router")
            )
            router.start()
            client = PredictionClient(router.address, retries=0)
            coordinator = router.migration
            if coordinator is not None:
                coordinator.join(timeout=join_timeout)
        info: dict = {
            "kill_fired": kill_fired.is_set(),
            "coordinator_done": coordinator is not None
            and not coordinator.active,
            "coordinator_error": (
                str(coordinator.error)
                if coordinator is not None and coordinator.error is not None
                else None
            ),
            "result": coordinator.result if coordinator is not None else None,
            "placement_version": router.placement.version,
            "target_version": target.version,
            "pre": pre,
            "source_inventory": source_inventory,
        }
        info["post"] = {pair: client.predict(*pair) for pair in pairs}
        metrics_ok, metrics_detail = check_metrics_exposition(
            client._request("GET", "/metrics", raw=True)
        )
        info["metrics_ok"] = metrics_ok
        info["metrics"] = metrics_detail
        info["counts"] = {
            name: servers[name].model.with_model(
                lambda m: (len(m.entity_ids("user")), len(m.entity_ids("service")))
            )
            for name in names
        }
        # Canonical export payloads of everything the source used to
        # hold, as served by the destination now — the byte-equality
        # oracle between fleets.
        def _exports(model):
            payloads = {}
            for kind in ("user", "service"):
                for ext_id in source_inventory[kind]:
                    try:
                        payloads[f"{kind}:{ext_id}"] = model.export_payload(
                            kind, ext_id
                        )
                    except KeyError:
                        pass
            return payloads

        info["dest_exports"] = servers["s1"].model.with_model(_exports)
        client.close()
        router.stop()
        for name in names:
            servers[name].stop()
        info["digests"] = {
            name: archive_digest(
                CheckpointStore(os.path.join(root, name)).path,
                ignore_extra=("migration",),
            )
            for name in names
        }
        return info

    baseline = run_fleet(os.path.join(data_root, "baseline"), kill=False)
    faulted = run_fleet(os.path.join(data_root, "faulted"), kill=True)

    mismatches: list[str] = []
    detail: dict = {
        "kill_target": kill_target,
        "kill_phase": kill_phase,
        "records": len(records),
        "baseline_result": baseline["result"],
        "faulted_result": faulted["result"],
    }

    if not faulted["kill_fired"]:
        mismatches.append(
            f"kill at phase {kill_phase!r} never fired — the migration "
            "finished without reaching it (stream too small?)"
        )
    for label, info in (("baseline", baseline), ("faulted", faulted)):
        if not info["coordinator_done"]:
            mismatches.append(f"{label}: migration did not finish in time")
        if info["coordinator_error"] is not None:
            mismatches.append(
                f"{label}: migration errored: {info['coordinator_error']}"
            )
        if info["placement_version"] != info["target_version"]:
            mismatches.append(
                f"{label}: target table not installed "
                f"(at version {info['placement_version']})"
            )
        if info["counts"]["s0"] != (0, 0):
            mismatches.append(
                f"{label}: source not empty after drain: "
                f"{info['counts']['s0']} (lost-or-stranded entities)"
            )
        expected = (
            len(info["source_inventory"]["user"]),
            len(info["source_inventory"]["service"]),
        )
        moved = (
            len([k for k in info["dest_exports"] if k.startswith("user:")]),
            len([k for k in info["dest_exports"] if k.startswith("service:")]),
        )
        if moved != expected:
            mismatches.append(
                f"{label}: destination holds {moved} of the source's "
                f"{expected} entities (lost entities)"
            )
        if not _errors_equal(
            list(info["pre"].values()), list(info["post"].values())
        ):
            mismatches.append(
                f"{label}: predictions changed across the migration"
            )

    if baseline["source_inventory"] != faulted["source_inventory"]:
        mismatches.append(
            "fleets diverged before the migration started (setup bug)"
        )
    for key, payload in baseline["dest_exports"].items():
        other = faulted["dest_exports"].get(key)
        if other != payload:
            mismatches.append(
                f"{key}: re-homed payload differs from baseline "
                "(factor row / samples / gate not byte-equal)"
            )
            break
    if baseline["post"] != faulted["post"]:
        mismatches.append(
            "post-migration predictions differ between baseline and "
            "faulted fleets"
        )
    for name in names:
        if baseline["digests"][name] != faulted["digests"][name]:
            mismatches.append(
                f"{name}: checkpoint digest differs from baseline "
                f"({faulted['digests'][name][:12]} vs "
                f"{baseline['digests'][name][:12]})"
            )
    detail["digests"] = {
        "baseline": baseline["digests"],
        "faulted": faulted["digests"],
    }
    detail["entities_moved"] = (
        baseline["result"]["entities_moved"]
        if baseline["result"]
        else None
    )
    detail["mismatches"] = mismatches
    return MigrationKillReport(
        matches=not mismatches,
        metrics_ok=baseline["metrics_ok"] and faulted["metrics_ok"],
        detail=detail,
    )
