"""Invocation workload generators for the adaptation simulation.

The execution engine can be driven at fixed intervals (``engine.run``) or,
more realistically, by an arrival process.  This module provides Poisson
and periodic-with-jitter arrival generators plus a multi-user interleaver,
so simulations can reproduce bursty collaborative observation patterns
(many users reporting QoS at uneven rates — the regime where the shared
prediction service of Fig. 3 earns its keep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True, slots=True)
class Invocation:
    """One scheduled workflow execution for a user."""

    timestamp: float
    user_id: int

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")
        if self.user_id < 0:
            raise ValueError(f"user_id must be non-negative, got {self.user_id}")


def poisson_arrivals(
    rate_per_second: float,
    duration: float,
    user_id: int = 0,
    start: float = 0.0,
    rng: "int | np.random.Generator | None" = None,
) -> list[Invocation]:
    """Poisson process arrivals over ``[start, start + duration)``.

    ``rate_per_second`` is the mean arrival rate; inter-arrival times are
    exponential.  Returns time-ordered invocations for ``user_id``.
    """
    check_positive("rate_per_second", rate_per_second)
    check_positive("duration", duration)
    rng = spawn_rng(rng)
    arrivals: list[Invocation] = []
    t = start
    while True:
        t += float(rng.exponential(1.0 / rate_per_second))
        if t >= start + duration:
            break
        arrivals.append(Invocation(timestamp=t, user_id=user_id))
    return arrivals


def periodic_arrivals(
    period: float,
    duration: float,
    user_id: int = 0,
    start: float = 0.0,
    jitter_fraction: float = 0.0,
    rng: "int | np.random.Generator | None" = None,
) -> list[Invocation]:
    """Fixed-period arrivals with optional uniform jitter.

    ``jitter_fraction = 0.2`` perturbs each arrival by up to ±20% of the
    period (clamped at the window start).
    """
    check_positive("period", period)
    check_positive("duration", duration)
    if not (0 <= jitter_fraction <= 1):
        raise ValueError(f"jitter_fraction must be in [0, 1], got {jitter_fraction}")
    rng = spawn_rng(rng)
    arrivals: list[Invocation] = []
    count = int(duration / period)
    for k in range(count):
        t = start + k * period
        if jitter_fraction > 0:
            t += float(rng.uniform(-1, 1)) * jitter_fraction * period
        t = max(t, start)
        if t < start + duration:
            arrivals.append(Invocation(timestamp=t, user_id=user_id))
    arrivals.sort(key=lambda invocation: invocation.timestamp)
    return arrivals


def merge_workloads(*workloads: list[Invocation]) -> list[Invocation]:
    """Interleave several users' arrival lists into one time-ordered list."""
    merged = [invocation for workload in workloads for invocation in workload]
    merged.sort(key=lambda invocation: invocation.timestamp)
    return merged


def drive_engines(
    engines: "dict[int, object]",
    workload: list[Invocation],
) -> int:
    """Execute a merged workload against per-user execution engines.

    ``engines`` maps user id to an :class:`~repro.adaptation.engine.ExecutionEngine`
    (or anything with ``execute_once(now)``).  Invocations for unknown users
    raise ``KeyError`` — a workload/user-set mismatch is a setup bug, not
    something to skip silently.  Returns the number of executions performed.
    """
    executed = 0
    for invocation in workload:
        if invocation.user_id not in engines:
            raise KeyError(
                f"workload contains user {invocation.user_id} with no engine"
            )
        engines[invocation.user_id].execute_once(invocation.timestamp)
        executed += 1
    return executed
