"""Simulated time, aligned to the dataset's slice structure.

Experiments never consult the wall clock for *logical* time (timestamps on
observations, expiry decisions, churn events); they advance a
:class:`SimClock` explicitly.  This keeps every run exactly reproducible.
"""

from __future__ import annotations

from repro.utils.validation import check_positive


class SimClock:
    """A monotonically advancing simulated clock.

    Args:
        slice_seconds: duration of one time slice (the paper's 15 minutes).
        start:         initial time in seconds.
    """

    def __init__(self, slice_seconds: float = 900.0, start: float = 0.0) -> None:
        check_positive("slice_seconds", slice_seconds)
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self.slice_seconds = slice_seconds
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    @property
    def current_slice(self) -> int:
        return int(self._now // self.slice_seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative seconds ({seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_to_next_slice(self) -> float:
        """Jump to the start of the next slice boundary."""
        next_slice = self.current_slice + 1
        return self.advance_to(next_slice * self.slice_seconds)

    def slice_start(self, slice_id: int | None = None) -> float:
        """Start time of ``slice_id`` (default: the current slice)."""
        if slice_id is None:
            slice_id = self.current_slice
        if slice_id < 0:
            raise ValueError(f"slice_id must be non-negative, got {slice_id}")
        return slice_id * self.slice_seconds
