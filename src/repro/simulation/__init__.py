"""Simulation utilities: a slice-aware clock, churn schedules for the
scalability experiment (users/services joining and leaving mid-run), and
fault injection for hardening the serving stack (hostile streams,
kill-and-restart crash/recovery checks, and primary/standby failover
drills with partitioned replica links)."""

from repro.simulation.clock import SimClock
from repro.simulation.churn import ChurnEvent, ChurnSchedule
from repro.simulation.faults import (
    CORE_METRIC_FAMILIES,
    FailoverReport,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultyReplicaLink,
    LinkFaultConfig,
    MigrationKillReport,
    RecoveryReport,
    ShardKillReport,
    check_metrics_exposition,
    drive_client,
    run_crash_recovery,
    run_failover,
    run_flood,
    run_migration_kill,
    run_shard_kill,
)

__all__ = [
    "SimClock",
    "ChurnEvent",
    "ChurnSchedule",
    "CORE_METRIC_FAMILIES",
    "FailoverReport",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultyReplicaLink",
    "LinkFaultConfig",
    "MigrationKillReport",
    "RecoveryReport",
    "ShardKillReport",
    "check_metrics_exposition",
    "drive_client",
    "run_crash_recovery",
    "run_failover",
    "run_flood",
    "run_migration_kill",
    "run_shard_kill",
]
