"""Simulation utilities: a slice-aware clock and churn schedules for the
scalability experiment (users/services joining and leaving mid-run)."""

from repro.simulation.clock import SimClock
from repro.simulation.churn import ChurnEvent, ChurnSchedule

__all__ = ["SimClock", "ChurnEvent", "ChurnSchedule"]
