"""Simulation utilities: a slice-aware clock, churn schedules for the
scalability experiment (users/services joining and leaving mid-run), and
fault injection for hardening the serving stack (hostile streams plus
kill-and-restart crash/recovery checks)."""

from repro.simulation.clock import SimClock
from repro.simulation.churn import ChurnEvent, ChurnSchedule
from repro.simulation.faults import (
    CORE_METRIC_FAMILIES,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    RecoveryReport,
    check_metrics_exposition,
    drive_client,
    run_crash_recovery,
    run_flood,
)

__all__ = [
    "SimClock",
    "ChurnEvent",
    "ChurnSchedule",
    "CORE_METRIC_FAMILIES",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "RecoveryReport",
    "check_metrics_exposition",
    "drive_client",
    "run_crash_recovery",
    "run_flood",
]
