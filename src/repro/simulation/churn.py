"""Churn schedules: users and services joining/leaving over simulated time.

The paper's scalability experiment (Fig. 14, Section V-G) warms the model up
on 80% of entities and injects the remaining 20% at t = 400 s.  A
:class:`ChurnSchedule` generalizes this: a time-ordered list of join/leave
events that an experiment pops as its clock advances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.sampling import split_entities
from repro.utils.rng import spawn_rng


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One entity joining or leaving at a point in simulated time."""

    timestamp: float
    entity_kind: str  # "user" | "service"
    entity_id: int
    action: str  # "join" | "leave"

    def __post_init__(self) -> None:
        if self.entity_kind not in ("user", "service"):
            raise ValueError(
                f"entity_kind must be 'user' or 'service', got {self.entity_kind!r}"
            )
        if self.action not in ("join", "leave"):
            raise ValueError(f"action must be 'join' or 'leave', got {self.action!r}")
        if self.entity_id < 0:
            raise ValueError(f"entity_id must be non-negative, got {self.entity_id}")
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")


class ChurnSchedule:
    """A time-ordered queue of churn events.

    Build with :meth:`paper_scalability` for the Fig. 14 scenario, or pass an
    arbitrary event list.  ``pop_due(now)`` returns (and consumes) every
    event with ``timestamp <= now``, in order.
    """

    def __init__(self, events: "list[ChurnEvent] | None" = None) -> None:
        self._events = sorted(events or [], key=lambda event: event.timestamp)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._events) - self._cursor

    @property
    def all_events(self) -> list[ChurnEvent]:
        return list(self._events)

    def peek(self) -> "ChurnEvent | None":
        if self._cursor >= len(self._events):
            return None
        return self._events[self._cursor]

    def pop_due(self, now: float) -> list[ChurnEvent]:
        """Consume and return all events with ``timestamp <= now``."""
        due: list[ChurnEvent] = []
        while self._cursor < len(self._events):
            event = self._events[self._cursor]
            if event.timestamp > now:
                break
            due.append(event)
            self._cursor += 1
        return due

    @classmethod
    def paper_scalability(
        cls,
        n_users: int,
        n_services: int,
        join_time: float = 400.0,
        existing_fraction: float = 0.8,
        rng: "int | np.random.Generator | None" = None,
    ) -> tuple["ChurnSchedule", np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The Fig. 14 scenario.

        Returns ``(schedule, existing_users, new_users, existing_services,
        new_services)``: the existing 80% are implicitly present from t = 0
        (the schedule contains no events for them), and every remaining
        entity joins at ``join_time``.
        """
        rng = spawn_rng(rng)
        existing_users, new_users = split_entities(n_users, existing_fraction, rng)
        existing_services, new_services = split_entities(
            n_services, existing_fraction, rng
        )
        events = [
            ChurnEvent(timestamp=join_time, entity_kind="user", entity_id=int(uid), action="join")
            for uid in new_users
        ] + [
            ChurnEvent(timestamp=join_time, entity_kind="service", entity_id=int(sid), action="join")
            for sid in new_services
        ]
        return cls(events), existing_users, new_users, existing_services, new_services
