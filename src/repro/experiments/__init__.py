"""One experiment module per table/figure of the paper's evaluation section.

Every module exposes a ``run_*`` function returning a structured result with
a ``to_text()`` rendering that mirrors the paper's rows/series, plus a
``main()`` entry point (``python -m repro.experiments.<name>``).

| Module            | Paper artifact                              |
|-------------------|---------------------------------------------|
| data_stats        | Fig. 2 (observations) + Fig. 6 (statistics) |
| distributions     | Fig. 7 (raw) + Fig. 8 (transformed)         |
| spectrum          | Fig. 9 (singular values)                    |
| accuracy          | Table I (accuracy comparison)               |
| error_dist        | Fig. 10 (prediction-error distributions)    |
| transform_impact  | Fig. 11 (impact of data transformation)     |
| density_impact    | Fig. 12 (impact of matrix density)          |
| efficiency        | Fig. 13 (convergence time per slice)        |
| scalability       | Fig. 14 (churn robustness)                  |
"""

from repro.experiments.runner import (
    ApproachResult,
    ExperimentScale,
    evaluate_amf,
    evaluate_batch_predictor,
    make_amf_config,
)

__all__ = [
    "ExperimentScale",
    "ApproachResult",
    "evaluate_amf",
    "evaluate_batch_predictor",
    "make_amf_config",
]
