"""Fig. 9: sorted normalized singular values of the QoS matrices.

The paper computes the SVD of the user-service matrices, normalizes so the
largest singular value is 1, and observes that all but the first few are
close to zero — the low-rank evidence behind choosing ``d = 10``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import ExperimentScale
from repro.metrics.lowrank import effective_rank, normalized_singular_values
from repro.utils.tables import render_table


@dataclass
class SpectrumResult:
    """Normalized spectra for both QoS attributes."""

    rt_spectrum: np.ndarray
    tp_spectrum: np.ndarray
    rt_effective_rank: int
    tp_effective_rank: int

    def to_text(self) -> str:
        top = max(len(self.rt_spectrum), len(self.tp_spectrum))
        rows = [
            [
                k + 1,
                float(self.rt_spectrum[k]) if k < len(self.rt_spectrum) else float("nan"),
                float(self.tp_spectrum[k]) if k < len(self.tp_spectrum) else float("nan"),
            ]
            for k in range(top)
        ]
        table = render_table(
            ["ID", "Response Time", "Throughput"],
            rows,
            precision=4,
            title="Fig. 9 — sorted normalized singular values",
        )
        summary = (
            f"effective rank (90% energy): RT={self.rt_effective_rank}, "
            f"TP={self.tp_effective_rank}"
        )
        return f"{table}\n{summary}"


def run_spectrum(
    scale: ExperimentScale | None = None,
    top_k: int = 50,
    slice_id: int = 0,
) -> SpectrumResult:
    """Compute the Fig. 9 spectra on one slice of both attributes."""
    scale = scale if scale is not None else ExperimentScale.quick()
    rt = scale.dataset("response_time").slice(slice_id)
    tp = scale.dataset("throughput").slice(slice_id)
    return SpectrumResult(
        rt_spectrum=normalized_singular_values(rt, top_k=top_k),
        tp_spectrum=normalized_singular_values(tp, top_k=top_k),
        rt_effective_rank=effective_rank(rt),
        tp_effective_rank=effective_rank(tp),
    )


def main() -> None:
    print(run_spectrum().to_text())


if __name__ == "__main__":
    main()
