"""Fig. 14: scalability and robustness under user/service churn.

The paper's protocol (Section V-G): train AMF on a random 80% of users and
services until convergence, then inject the remaining 20% as *new* entities
and keep training online.  Plot MRE over wall-clock time, separately for
(a) entries among existing entities and (b) entries touching new entities.
Expected shape: the new-entity error drops rapidly after the join while the
existing-entity error stays flat — adaptive weights shield converged
factors from unconverged newcomers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import AdaptiveMatrixFactorization
from repro.datasets import train_test_split_matrix
from repro.datasets.schema import QoSMatrix
from repro.datasets.stream import stream_from_matrix
from repro.experiments.runner import ExperimentScale, make_amf_config
from repro.metrics import mre
from repro.simulation.churn import ChurnSchedule
from repro.utils.rng import spawn_rng
from repro.utils.tables import render_table


@dataclass
class ScalabilityCheckpoint:
    """One point on the Fig. 14 curves."""

    wall_seconds: float
    updates: int
    mre_existing: float
    mre_new: float  # NaN before the join


@dataclass
class ScalabilityResult:
    """Checkpoint series plus the join moment."""

    attribute: str
    join_wall_seconds: float
    join_updates: int
    checkpoints: list[ScalabilityCheckpoint] = field(default_factory=list)

    def to_text(self) -> str:
        rows = [
            [
                round(cp.wall_seconds, 3),
                cp.updates,
                cp.mre_existing,
                cp.mre_new if np.isfinite(cp.mre_new) else float("nan"),
            ]
            for cp in self.checkpoints
        ]
        table = render_table(
            ["time (s)", "updates", "MRE existing", "MRE new"],
            rows,
            precision=3,
            title=f"Fig. 14 ({self.attribute}) — MRE under churn "
            f"(20% join at t={self.join_wall_seconds:.2f}s)",
        )
        return f"{table}\n{self.to_chart()}"

    def to_chart(self) -> str:
        """ASCII rendering of the Fig. 14 MRE timelines ('' when too short)."""
        from repro.utils.plots import line_plot

        if len(self.checkpoints) < 2:
            return ""
        return line_plot(
            {
                "existing": [cp.mre_existing for cp in self.checkpoints],
                "new": [cp.mre_new for cp in self.checkpoints],
            },
            height=10,
            width=58,
            y_label="MRE vs checkpoint",
        )

    def existing_drift(self) -> float:
        """Change in existing-entity MRE from just before the join to the end
        (near zero = robust to churn)."""
        before = [cp for cp in self.checkpoints if cp.updates <= self.join_updates]
        after = [cp for cp in self.checkpoints if cp.updates > self.join_updates]
        if not before or not after:
            return float("nan")
        return after[-1].mre_existing - before[-1].mre_existing

    def new_entity_improvement(self) -> float:
        """Drop in new-entity MRE from its first post-join checkpoint to the
        end (large = new entities integrate quickly)."""
        post = [cp for cp in self.checkpoints if np.isfinite(cp.mre_new)]
        if len(post) < 2:
            return float("nan")
        return post[0].mre_new - post[-1].mre_new


def _restrict(matrix: QoSMatrix, users: np.ndarray, services: np.ndarray) -> QoSMatrix:
    """Zero the mask outside the given user/service id sets."""
    keep = np.zeros(matrix.shape, dtype=bool)
    keep[np.ix_(users, services)] = True
    return QoSMatrix(values=matrix.values.copy(), mask=matrix.mask & keep)


def _mre_on(model: AdaptiveMatrixFactorization, test: QoSMatrix) -> float:
    rows, cols = test.observed_indices()
    if rows.size == 0:
        return float("nan")
    predicted = model.predict_matrix()[rows, cols]
    return mre(predicted, test.values[rows, cols])


def run_scalability(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    density: float = 0.30,
    existing_fraction: float = 0.8,
    replays_per_arrival: int = 3,
    checkpoint_updates: int = 2000,
    warmup_epochs: int = 30,
    post_join_epochs: int = 30,
) -> ScalabilityResult:
    """Run the Fig. 14 churn experiment and collect the MRE timelines."""
    scale = scale if scale is not None else ExperimentScale.quick()
    rng = spawn_rng(scale.seed)
    matrix = scale.dataset(attribute).slice(0)
    train, test = train_test_split_matrix(matrix, density, rng=rng)

    schedule, existing_users, new_users, existing_services, new_services = (
        ChurnSchedule.paper_scalability(
            matrix.n_users, matrix.n_services, existing_fraction=existing_fraction, rng=rng
        )
    )
    del schedule  # the split is what this experiment consumes

    train_existing = _restrict(train, existing_users, existing_services)
    # Everything in train that touches a new entity arrives after the join.
    new_mask = train.mask & ~train_existing.mask
    train_new = QoSMatrix(values=train.values.copy(), mask=new_mask)
    test_existing = _restrict(test, existing_users, existing_services)
    test_new = QoSMatrix(values=test.values.copy(), mask=test.mask & ~test_existing.mask)

    model = AdaptiveMatrixFactorization(make_amf_config(attribute), rng=rng)
    result = ScalabilityResult(attribute=attribute, join_wall_seconds=0.0, join_updates=0)
    started = time.perf_counter()
    next_checkpoint = checkpoint_updates

    def checkpoint(include_new: bool) -> None:
        result.checkpoints.append(
            ScalabilityCheckpoint(
                wall_seconds=time.perf_counter() - started,
                updates=model.updates_applied,
                mre_existing=_mre_on(model, test_existing),
                mre_new=_mre_on(model, test_new) if include_new else float("nan"),
            )
        )

    def drive(stream_records, epochs: int, include_new: bool) -> None:
        nonlocal next_checkpoint
        for record in stream_records:
            model.observe(record)
            for __ in range(replays_per_arrival):
                model.replay_step(now=0.0)
            if model.updates_applied >= next_checkpoint:
                checkpoint(include_new)
                next_checkpoint += checkpoint_updates
        for __ in range(epochs):
            for __ in range(max(model.n_stored_samples, 1)):
                model.replay_step(now=0.0)
                if model.updates_applied >= next_checkpoint:
                    checkpoint(include_new)
                    next_checkpoint += checkpoint_updates

    # Phase 1: warm up on existing entities only.
    warmup_stream = stream_from_matrix(train_existing, rng=rng)
    drive(warmup_stream, warmup_epochs, include_new=False)
    checkpoint(include_new=False)
    result.join_wall_seconds = time.perf_counter() - started
    result.join_updates = model.updates_applied

    # Phase 2: the remaining 20% of users and services join.
    join_stream = stream_from_matrix(train_new, rng=rng)
    drive(join_stream, post_join_epochs, include_new=True)
    checkpoint(include_new=True)
    return result


def main() -> None:
    result = run_scalability()
    print(result.to_text())
    print(
        f"existing-entity MRE drift after join: {result.existing_drift():+.4f}; "
        f"new-entity MRE improvement: {result.new_entity_improvement():.4f}"
    )


if __name__ == "__main__":
    main()
