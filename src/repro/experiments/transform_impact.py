"""Fig. 11: impact of the data transformation on MRE.

Compares three models across matrix densities: PMF (absolute-error batch
MF), AMF with ``alpha = 1`` (the Box-Cox effect masked, leaving plain
linear normalization), and full AMF with the tuned alpha.  The paper's
ordering — PMF worst, AMF(alpha=1) in between, AMF best — isolates how much
of AMF's MRE advantage comes from the transformation alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import train_test_split_matrix
from repro.experiments.runner import (
    ExperimentScale,
    evaluate_amf,
    evaluate_batch_predictor,
    make_amf_config,
    make_baselines,
)
from repro.utils.rng import spawn_children
from repro.utils.tables import render_table

DEFAULT_DENSITIES = (0.10, 0.20, 0.30, 0.40, 0.50)


@dataclass
class TransformImpactResult:
    """MRE per density for PMF / AMF(alpha=1) / AMF."""

    attribute: str
    densities: tuple[float, ...]
    mre: dict[str, list[float]]

    def to_text(self) -> str:
        names = list(self.mre)
        rows = [
            [f"{int(density * 100)}%"] + [self.mre[name][k] for name in names]
            for k, density in enumerate(self.densities)
        ]
        return render_table(
            ["Density"] + names,
            rows,
            precision=3,
            title=f"Fig. 11 ({self.attribute}) — impact of data transformation (MRE)",
        )


def run_transform_impact(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    densities: tuple[float, ...] = DEFAULT_DENSITIES,
) -> TransformImpactResult:
    """MRE sweep over densities for the three Fig. 11 approaches."""
    scale = scale if scale is not None else ExperimentScale.quick()
    matrix = scale.dataset(attribute).slice(0)
    tuned_config = make_amf_config(attribute)
    # With alpha = 1 most normalized values sit near 0, so the relative-error
    # gradient (divided by r^2) needs a far smaller step size to stay stable
    # — and the more extreme the skew, the smaller the stable step.  The
    # paper states each variant's parameters are "optimized accordingly":
    # 0.05 is the tuned rate for linear-normalized response time, 0.005 for
    # linear-normalized throughput (whose values sit at ~0.002 of the range;
    # smaller rates cannot pull the sigmoid off its 0.5 start at 10% density,
    # larger ones destabilize the 1/r^2 gradients).
    linear_rate = 0.05 if attribute in ("response_time", "rt") else 0.005
    linear_config = tuned_config.with_updates(alpha=1.0, learning_rate=linear_rate)

    mre: dict[str, list[float]] = {"PMF": [], "AMF(alpha=1)": [], "AMF": []}
    for density in densities:
        rngs = spawn_children(scale.seed + int(density * 1000), scale.reruns)
        per_run: dict[str, list[float]] = {name: [] for name in mre}
        for rng in rngs:
            train, test = train_test_split_matrix(matrix, density, rng=rng)
            pmf = make_baselines(attribute, rng=rng)["PMF"]
            per_run["PMF"].append(
                evaluate_batch_predictor("PMF", pmf, train, test).metrics["MRE"]
            )
            per_run["AMF(alpha=1)"].append(
                evaluate_amf(train, test, linear_config, rng=rng).metrics["MRE"]
            )
            per_run["AMF"].append(
                evaluate_amf(train, test, tuned_config, rng=rng).metrics["MRE"]
            )
        for name in mre:
            mre[name].append(float(np.mean(per_run[name])))
    return TransformImpactResult(attribute=attribute, densities=densities, mre=mre)


def main() -> None:
    for attribute in ("response_time", "throughput"):
        print(run_transform_impact(attribute=attribute).to_text())
        print()


if __name__ == "__main__":
    main()
