"""Table I over *all* time slices (the paper's supplementary report).

The published Table I reports the first time slice; the supplementary
report extends it across all 64 slices.  This experiment reproduces that:
the offline baselines are refit per slice, the AMF model runs *online*
through the slices (absorbing each slice's training stream into the live
model), and per-slice test metrics are averaged.

Running AMF online across slices — rather than resetting it per slice — is
the operationally honest protocol and slightly *helps* AMF at later slices
(it has history), which is exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import AdaptiveMatrixFactorization, StreamTrainer
from repro.datasets import train_test_split_matrix
from repro.datasets.stream import stream_from_matrix
from repro.experiments.runner import (
    ExperimentScale,
    make_amf_config,
    make_baselines,
    test_entries,
)
from repro.metrics import score_all
from repro.utils.rng import spawn_rng
from repro.utils.tables import render_table

METRICS = ["MAE", "MRE", "NPRE"]


@dataclass
class AllSlicesResult:
    """Per-slice metric series and their averages, per approach."""

    attribute: str
    density: float
    per_slice: dict[str, list[dict[str, float]]] = field(default_factory=dict)

    def average(self, approach: str, metric: str) -> float:
        return float(np.mean([s[metric] for s in self.per_slice[approach]]))

    def series(self, approach: str, metric: str) -> list[float]:
        return [s[metric] for s in self.per_slice[approach]]

    def to_text(self) -> str:
        approaches = list(self.per_slice)
        rows = [
            [name] + [self.average(name, metric) for metric in METRICS]
            for name in approaches
        ]
        average_table = render_table(
            ["Approach"] + METRICS,
            rows,
            title=(
                f"Table I over all slices ({self.attribute}, density "
                f"{self.density:.0%}) — averages"
            ),
        )
        n_slices = len(next(iter(self.per_slice.values())))
        series_rows = [
            [t] + [self.per_slice[name][t]["MRE"] for name in approaches]
            for t in range(n_slices)
        ]
        series_table = render_table(
            ["Slice"] + [f"{name} MRE" for name in approaches],
            series_rows,
            title="per-slice MRE",
        )
        return f"{average_table}\n\n{series_table}"


def run_all_slices(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    density: float = 0.10,
    approaches: "list[str] | None" = None,
) -> AllSlicesResult:
    """Evaluate every approach on every slice; AMF runs online throughout."""
    scale = scale if scale is not None else ExperimentScale.quick()
    data = scale.dataset(attribute)
    rng = spawn_rng(scale.seed)
    wanted = approaches if approaches is not None else ["UIPCC", "PMF", "AMF"]

    result = AllSlicesResult(attribute=attribute, density=density)
    for name in wanted:
        result.per_slice[name] = []

    amf_model = AdaptiveMatrixFactorization(make_amf_config(attribute), rng=rng)
    amf_model.ensure_user(data.n_users - 1)
    amf_model.ensure_service(data.n_services - 1)
    trainer = StreamTrainer(amf_model)

    for t in range(data.n_slices):
        matrix = data.slice(t)
        train, test = train_test_split_matrix(matrix, density, rng=rng)
        rows, cols, actual = test_entries(test)

        baselines = make_baselines(attribute, rng=rng)
        for name, predictor in baselines.items():
            if name not in wanted:
                continue
            predictor.fit(train)
            result.per_slice[name].append(
                score_all(predictor.predict_entries(rows, cols), actual)
            )

        if "AMF" in wanted:
            stream = stream_from_matrix(
                train,
                slice_id=t,
                slice_start=t * data.slice_seconds,
                slice_seconds=data.slice_seconds,
                rng=rng,
            )
            trainer.process(stream)
            predicted = amf_model.predict_matrix()[rows, cols]
            result.per_slice["AMF"].append(score_all(predicted, actual))
    return result


def main() -> None:
    print(run_all_slices().to_text())


if __name__ == "__main__":
    main()
