"""Fig. 6 (dataset statistics) and Fig. 2 (motivating QoS observations).

Fig. 2(a): one user-service pair's response time over the 64 slices —
fluctuation around a stable mean motivates *online* tracking.
Fig. 2(b): sorted response times of many users invoking one service —
user-specific QoS motivates *collaborative* prediction.
Fig. 6: the dataset's summary statistics table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import TimeSlicedQoS
from repro.experiments.runner import ExperimentScale
from repro.utils.tables import render_series, render_table


@dataclass
class DataStatsResult:
    """Statistics table plus the two Fig. 2 series."""

    rt_stats: dict[str, float]
    tp_stats: dict[str, float]
    pair_series: np.ndarray        # Fig. 2(a): RT per slice for one pair
    pair_user: int
    pair_service: int
    user_series: np.ndarray        # Fig. 2(b): sorted RT across users
    user_series_service: int

    def to_text(self) -> str:
        stats_rows = [
            ["#Users", int(self.rt_stats["n_users"])],
            ["#Services", int(self.rt_stats["n_services"])],
            ["#Time slices", int(self.rt_stats["n_slices"])],
            ["#Time interval (min)", self.rt_stats["slice_minutes"]],
            ["RT range (s)", f"{self.rt_stats['min']:.2f} ~ {self.rt_stats['max']:.2f}"],
            ["RT average (s)", self.rt_stats["mean"]],
            ["TP range (kbps)", f"{self.tp_stats['min']:.2f} ~ {self.tp_stats['max']:.2f}"],
            ["TP average (kbps)", self.tp_stats["mean"]],
        ]
        parts = [
            render_table(["Statistic", "Value"], stats_rows, precision=2,
                         title="Fig. 6 — data statistics"),
            render_series(
                f"RT of (user {self.pair_user}, service {self.pair_service})",
                list(range(len(self.pair_series))),
                self.pair_series,
            ),
            render_series(
                f"sorted RT across users on service {self.user_series_service}",
                list(range(len(self.user_series))),
                self.user_series,
            ),
        ]
        return "\n\n".join(parts)


def _pick_interesting_pair(data: TimeSlicedQoS) -> tuple[int, int]:
    """A (user, service) pair observed in every slice with visible variance.

    Mirrors the paper's hand-picked example: a pair whose response time
    fluctuates around its mean rather than sitting flat.
    """
    observed_everywhere = data.mask.all(axis=0)
    users, services = np.nonzero(observed_everywhere)
    if users.size == 0:
        raise ValueError("no (user, service) pair is observed in every slice")
    series = data.tensor[:, users, services]  # (slices, pairs)
    variance = series.var(axis=0)
    mean = np.maximum(series.mean(axis=0), 1e-9)
    # Highest coefficient of variation among pairs with a moderate mean and
    # no timeout spikes — a single saturated sample would dominate the
    # variance and hide the fluctuation-around-a-mean story of Fig. 2(a).
    no_timeouts = series.max(axis=0) < data.value_max
    moderate = (mean > 0.2) & (mean < data.value_max / 2) & no_timeouts
    scores = np.where(moderate, variance / mean**2, -np.inf)
    best = int(np.argmax(scores))
    return int(users[best]), int(services[best])


def run_data_stats(
    scale: ExperimentScale | None = None,
    n_sorted_users: int = 100,
) -> DataStatsResult:
    """Compute Fig. 6's table and Fig. 2's two series."""
    scale = scale if scale is not None else ExperimentScale.quick()
    rt = scale.dataset("response_time")
    tp = scale.dataset("throughput")

    pair_user, pair_service = _pick_interesting_pair(rt)
    pair_series = rt.tensor[:, pair_user, pair_service].copy()

    # Fig. 2(b): users' slice-0 response times on the most-observed service.
    observed_per_service = rt.mask[0].sum(axis=0)
    service = int(np.argmax(observed_per_service))
    user_mask = rt.mask[0, :, service]
    user_values = np.sort(rt.tensor[0, user_mask, service])[:n_sorted_users]

    return DataStatsResult(
        rt_stats=rt.statistics(),
        tp_stats=tp.statistics(),
        pair_series=pair_series,
        pair_user=pair_user,
        pair_service=pair_service,
        user_series=user_values,
        user_series_service=service,
    )


def main() -> None:
    print(run_data_stats().to_text())


if __name__ == "__main__":
    main()
