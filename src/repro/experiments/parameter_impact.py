"""Hyper-parameter sensitivity sweeps for AMF (supplementary-style).

The paper's Section V opens with "impact of parameters" among its studied
aspects; the published text details only the transformation (Fig. 11) and
density (Fig. 12), deferring the rest to the supplementary report.  This
module provides the full sweeps: rank ``d``, learning rate ``eta``, EMA
factor ``beta``, and regularization ``lambda``, each against MRE at a fixed
density with every other parameter held at its paper value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import train_test_split_matrix
from repro.experiments.runner import ExperimentScale, evaluate_amf, make_amf_config
from repro.utils.rng import spawn_children
from repro.utils.tables import render_table

DEFAULT_SWEEPS: dict[str, tuple[float, ...]] = {
    "rank": (2, 5, 10, 20, 40),
    "learning_rate": (0.1, 0.4, 0.8, 1.6, 3.2),
    "beta": (0.0, 0.1, 0.3, 0.6, 1.0),
    "lambda": (0.0, 1e-4, 1e-3, 1e-2, 1e-1),
}


@dataclass
class ParameterImpactResult:
    """MRE per swept value, for one parameter."""

    attribute: str
    parameter: str
    values: tuple[float, ...]
    mre: list[float]

    def to_text(self) -> str:
        rows = [[value, self.mre[k]] for k, value in enumerate(self.values)]
        return render_table(
            [self.parameter, "MRE"],
            rows,
            title=f"Parameter impact ({self.attribute}) — {self.parameter}",
        )

    def best_value(self) -> float:
        return self.values[int(np.argmin(self.mre))]


def _config_with(attribute: str, parameter: str, value: float):
    if parameter == "rank":
        return make_amf_config(attribute, rank=int(value))
    if parameter == "learning_rate":
        return make_amf_config(attribute, learning_rate=value)
    if parameter == "beta":
        return make_amf_config(attribute, beta=value)
    if parameter == "lambda":
        return make_amf_config(attribute, lambda_u=value, lambda_s=value)
    raise ValueError(f"unknown parameter {parameter!r}")


def run_parameter_impact(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    parameter: str = "rank",
    values: "tuple[float, ...] | None" = None,
    density: float = 0.30,
) -> ParameterImpactResult:
    """Sweep one hyper-parameter, holding the rest at paper defaults."""
    scale = scale if scale is not None else ExperimentScale.quick()
    if values is None:
        if parameter not in DEFAULT_SWEEPS:
            raise ValueError(
                f"parameter must be one of {sorted(DEFAULT_SWEEPS)}, got {parameter!r}"
            )
        values = DEFAULT_SWEEPS[parameter]
    matrix = scale.dataset(attribute).slice(0)

    mre_series: list[float] = []
    for value in values:
        config = _config_with(attribute, parameter, value)
        rngs = spawn_children(scale.seed, scale.reruns)
        per_run = []
        for rng in rngs:
            train, test = train_test_split_matrix(matrix, density, rng=rng)
            per_run.append(evaluate_amf(train, test, config, rng=rng).metrics["MRE"])
        mre_series.append(float(np.mean(per_run)))
    return ParameterImpactResult(
        attribute=attribute, parameter=parameter, values=tuple(values), mre=mre_series
    )


def run_all_parameters(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    density: float = 0.30,
) -> dict[str, ParameterImpactResult]:
    """Sweep every parameter in DEFAULT_SWEEPS."""
    return {
        parameter: run_parameter_impact(
            scale, attribute=attribute, parameter=parameter, density=density
        )
        for parameter in DEFAULT_SWEEPS
    }


def main() -> None:
    for result in run_all_parameters().values():
        print(result.to_text())
        print()


if __name__ == "__main__":
    main()
