"""Table I: accuracy comparison of UPCC/IPCC/UIPCC/PMF/AMF.

Reproduces the paper's protocol (Section V-C): for each matrix density in
10%..50%, randomly keep that fraction of the first slice's entries as
training data (randomized into a stream for AMF), score the removed entries
with MAE/MRE/NPRE, repeat with different seeds, and report per-approach
averages plus the "Improve." row — how much AMF beats the most competitive
other approach on each metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import (
    ApproachResult,
    ExperimentScale,
    average_results,
    compare_on_slice,
)
from repro.metrics import improvement_percent
from repro.utils.rng import spawn_children
from repro.utils.tables import render_table

APPROACH_ORDER = ["UPCC", "IPCC", "UIPCC", "PMF", "BiasedMF", "AMF"]
METRICS = ["MAE", "MRE", "NPRE"]
DEFAULT_DENSITIES = (0.10, 0.20, 0.30, 0.40, 0.50)


@dataclass
class Table1Result:
    """Structured Table I: results[attribute][density][approach]."""

    densities: tuple[float, ...]
    attributes: tuple[str, ...]
    results: dict[str, dict[float, dict[str, ApproachResult]]] = field(default_factory=dict)

    def improvement(self, attribute: str, density: float, metric: str) -> float:
        """The paper's Improve. row: AMF vs the best other approach."""
        cell = self.results[attribute][density]
        others = [
            cell[name].metrics[metric] for name in cell if name != "AMF"
        ]
        if not others:
            raise ValueError("no baseline approaches to compare against")
        return improvement_percent(min(others), cell["AMF"].metrics[metric])

    def to_text(self) -> str:
        """Render in the paper's layout: one block per attribute, approaches
        as rows, (density x metric) columns."""
        blocks: list[str] = []
        for attribute in self.attributes:
            headers = ["Approach"] + [
                f"{metric}@{int(density * 100)}%"
                for density in self.densities
                for metric in METRICS
            ]
            rows: list[list[object]] = []
            present = [
                name
                for name in APPROACH_ORDER
                if name in self.results[attribute][self.densities[0]]
            ]
            for name in present:
                row: list[object] = [name]
                for density in self.densities:
                    cell = self.results[attribute][density][name]
                    row.extend(cell.metrics[metric] for metric in METRICS)
                rows.append(row)
            if "AMF" in present and len(present) > 1:
                improve_row: list[object] = ["Improve.(%)"]
                for density in self.densities:
                    improve_row.extend(
                        self.improvement(attribute, density, metric)
                        for metric in METRICS
                    )
                rows.append(improve_row)
            blocks.append(
                render_table(
                    headers,
                    rows,
                    precision=3,
                    title=f"Table I ({attribute}) — accuracy comparison",
                )
            )
        return "\n\n".join(blocks)


def run_table1(
    scale: ExperimentScale | None = None,
    densities: tuple[float, ...] = DEFAULT_DENSITIES,
    attributes: tuple[str, ...] = ("response_time", "throughput"),
    approaches: "list[str] | None" = None,
) -> Table1Result:
    """Run the full Table I sweep at the given scale."""
    scale = scale if scale is not None else ExperimentScale.quick()
    result = Table1Result(densities=densities, attributes=attributes)
    for attribute in attributes:
        data = scale.dataset(attribute)
        matrix = data.slice(0)
        result.results[attribute] = {}
        for density in densities:
            rngs = spawn_children(scale.seed + int(density * 1000), scale.reruns)
            runs = [
                compare_on_slice(matrix, attribute, density, rng=rng, approaches=approaches)
                for rng in rngs
            ]
            result.results[attribute][density] = average_results(runs)
    return result


def main() -> None:
    print(run_table1().to_text())


if __name__ == "__main__":
    main()
