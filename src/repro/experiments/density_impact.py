"""Fig. 12: impact of matrix density on AMF's accuracy.

Sweeps the training density from 5% to 50% in 5% steps and reports AMF's
MAE, MRE, and NPRE.  The paper's shape: all errors fall as density rises,
with a steep drop at the sparsest settings (overfitting relieved as data
accumulates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import train_test_split_matrix
from repro.experiments.runner import ExperimentScale, evaluate_amf, make_amf_config
from repro.utils.rng import spawn_children
from repro.utils.tables import render_table

DEFAULT_DENSITIES = tuple(round(0.05 * k, 2) for k in range(1, 11))


@dataclass
class DensityImpactResult:
    """AMF metrics per density."""

    attribute: str
    densities: tuple[float, ...]
    metrics: dict[str, list[float]]  # metric name -> per-density values

    def to_text(self) -> str:
        names = list(self.metrics)
        rows = [
            [f"{int(round(density * 100))}%"] + [self.metrics[name][k] for name in names]
            for k, density in enumerate(self.densities)
        ]
        table = render_table(
            ["Density"] + names,
            rows,
            precision=3,
            title=f"Fig. 12 ({self.attribute}) — impact of matrix density on AMF",
        )
        return f"{table}\n{self.to_chart()}"

    def to_chart(self) -> str:
        """ASCII rendering of the Fig. 12 curves ('' for single points)."""
        from repro.utils.plots import line_plot

        if len(self.densities) < 2:
            return ""
        return line_plot(
            {name: values for name, values in self.metrics.items()},
            height=10,
            width=58,
            y_label="error vs density",
        )


def run_density_impact(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    densities: tuple[float, ...] = DEFAULT_DENSITIES,
) -> DensityImpactResult:
    """AMF accuracy sweep over training densities."""
    scale = scale if scale is not None else ExperimentScale.quick()
    matrix = scale.dataset(attribute).slice(0)
    config = make_amf_config(attribute)

    collected: dict[str, list[float]] = {"MAE": [], "MRE": [], "NPRE": []}
    for density in densities:
        rngs = spawn_children(scale.seed + int(density * 1000), scale.reruns)
        per_run: dict[str, list[float]] = {name: [] for name in collected}
        for rng in rngs:
            train, test = train_test_split_matrix(matrix, density, rng=rng)
            result = evaluate_amf(train, test, config, rng=rng)
            for name in collected:
                per_run[name].append(result.metrics[name])
        for name in collected:
            collected[name].append(float(np.mean(per_run[name])))
    return DensityImpactResult(
        attribute=attribute, densities=densities, metrics=collected
    )


def main() -> None:
    for attribute in ("response_time", "throughput"):
        print(run_density_impact(attribute=attribute).to_text())
        print()


if __name__ == "__main__":
    main()
