"""Fig. 13: convergence time per time slice for UIPCC, PMF, and AMF.

The paper's efficiency claim: offline models (UIPCC, PMF) must retrain from
scratch at every slice, so their cost is flat and high; AMF pays a one-time
cost at slice 0 and then only absorbs each new slice's observations
incrementally, so its per-slice cost collapses after the first slice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import AdaptiveMatrixFactorization, StreamTrainer
from repro.datasets import train_test_split_matrix
from repro.datasets.stream import stream_from_matrix
from repro.experiments.runner import (
    ExperimentScale,
    make_amf_config,
    make_baselines,
)
from repro.utils.rng import spawn_rng
from repro.utils.tables import render_table


@dataclass
class EfficiencyResult:
    """Per-slice wall-clock convergence times, per approach."""

    attribute: str
    seconds: dict[str, list[float]]  # approach -> per-slice seconds

    def to_text(self) -> str:
        names = list(self.seconds)
        n_slices = len(next(iter(self.seconds.values())))
        rows = [
            [t] + [self.seconds[name][t] for name in names] for t in range(n_slices)
        ]
        table = render_table(
            ["Slice"] + names,
            rows,
            precision=3,
            title=f"Fig. 13 ({self.attribute}) — convergence time per slice (s)",
        )
        if n_slices > 1 and "AMF" in self.seconds:
            first = self.seconds["AMF"][0]
            rest = self.seconds["AMF"][1:]
            summary = (
                f"AMF: slice-0 cost {first:.3f}s, later slices mean "
                f"{sum(rest) / len(rest):.3f}s"
            )
            return f"{table}\n{summary}\n{self.to_chart()}"
        return table

    def to_chart(self) -> str:
        """ASCII rendering of the Fig. 13 curves ('' for single slices)."""
        from repro.utils.plots import line_plot

        if len(next(iter(self.seconds.values()))) < 2:
            return ""
        return line_plot(
            dict(self.seconds), height=10, width=58, y_label="seconds vs slice"
        )


def run_efficiency(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    density: float = 0.30,
    n_slices: int | None = None,
    target_headroom: float = 1.15,
) -> EfficiencyResult:
    """Time each approach's per-slice convergence across the slices.

    "Convergence" for the AMF variants uses a time-to-accuracy protocol:
    slice 0 trains to its error plateau and establishes a target training
    error (``target_headroom`` times the plateau level); each later slice's
    cost is the time to absorb the slice's stream and get the model back
    under that target.  A warm model re-enters the target after little or
    no replay; a cold model pays the full climb every slice — the paper's
    online-learning claim, measured with the same implementation on both
    sides.
    """
    scale = scale if scale is not None else ExperimentScale.quick()
    if target_headroom <= 1.0:
        raise ValueError(f"target_headroom must exceed 1, got {target_headroom}")
    data = scale.dataset(attribute)
    n_slices = data.n_slices if n_slices is None else min(n_slices, data.n_slices)
    rng = spawn_rng(scale.seed)

    seconds: dict[str, list[float]] = {
        "UIPCC": [],
        "PMF": [],
        "AMF (retrain)": [],
        "AMF": [],
    }
    amf_model = AdaptiveMatrixFactorization(make_amf_config(attribute), rng=rng)
    trainer = StreamTrainer(amf_model)
    target_error: float | None = None

    for t in range(n_slices):
        matrix = data.slice(t)
        train, __ = train_test_split_matrix(matrix, density, rng=rng)
        slice_start = t * data.slice_seconds
        slice_end = slice_start + data.slice_seconds

        # Offline baselines retrain from scratch on this slice's data.
        baselines = make_baselines(attribute, rng=rng)
        for name in ("UIPCC", "PMF"):
            started = time.perf_counter()
            baselines[name].fit(train)
            seconds[name].append(time.perf_counter() - started)

        stream = stream_from_matrix(
            train,
            slice_id=t,
            slice_start=slice_start,
            slice_seconds=data.slice_seconds,
            rng=rng,
        )

        if t == 0:
            # Establish the target: full training to the error plateau.
            started = time.perf_counter()
            trainer.process(stream)
            seconds["AMF"].append(time.perf_counter() - started)
            target_error = target_headroom * amf_model.training_error()
            seconds["AMF (retrain)"].append(seconds["AMF"][0])
            continue

        # "AMF (retrain)": same implementation, cold model every slice.
        scratch_model = AdaptiveMatrixFactorization(make_amf_config(attribute), rng=rng)
        scratch_trainer = StreamTrainer(scratch_model)
        started = time.perf_counter()
        scratch_trainer.consume(list(stream))
        scratch_trainer.replay_until_error(slice_end, target_error)
        seconds["AMF (retrain)"].append(time.perf_counter() - started)

        # AMF: the live model absorbs the stream and re-enters the target.
        started = time.perf_counter()
        trainer.consume(stream)
        trainer.replay_until_error(slice_end, target_error)
        seconds["AMF"].append(time.perf_counter() - started)
    return EfficiencyResult(attribute=attribute, seconds=seconds)


def main() -> None:
    print(run_efficiency().to_text())


if __name__ == "__main__":
    main()
