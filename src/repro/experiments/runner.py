"""Shared scaffolding for the paper-reproduction experiments.

Centralizes the pieces every experiment repeats: the dataset scale presets,
the paper's hyper-parameters per QoS attribute, and the two evaluation
drivers (online AMF on a randomized stream; batch baselines on a sparse
matrix), all returning the Section V-B metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines import IPCC, PMF, UIPCC, UPCC, PMFConfig
from repro.baselines.base import MatrixPredictor
from repro.core import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.schema import QoSMatrix, TimeSlicedQoS
from repro.datasets.stream import stream_from_matrix
from repro.metrics import score_all
from repro.utils.rng import spawn_rng


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """Dataset size and repetition settings for an experiment run.

    ``paper()`` is the full WS-DREAM scale the paper uses; ``quick()`` (the
    default everywhere) keeps laptop/CI runs in seconds while preserving
    every qualitative shape; ``tiny()`` is for unit tests.
    """

    n_users: int = 142
    n_services: int = 300
    n_slices: int = 8
    reruns: int = 3
    seed: int = 42

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Full paper scale: 142 users x 4,500 services x 64 slices, 20 reruns."""
        return cls(n_users=142, n_services=4500, n_slices=64, reruns=20, seed=42)

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Reduced scale for interactive runs and benches (the default)."""
        return cls()

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Minimal scale for unit tests."""
        return cls(n_users=25, n_services=50, n_slices=2, reruns=1, seed=7)

    def with_updates(self, **overrides: object) -> "ExperimentScale":
        return replace(self, **overrides)

    def dataset(self, attribute: str = "response_time") -> TimeSlicedQoS:
        """Generate the synthetic dataset for this scale."""
        return generate_dataset(
            n_users=self.n_users,
            n_services=self.n_services,
            n_slices=self.n_slices,
            seed=self.seed,
            attribute=attribute,
        )


@dataclass(frozen=True)
class FixedDatasetScale:
    """An :class:`ExperimentScale` backed by pre-loaded tensors.

    Lets every experiment module run unchanged against real data (e.g. the
    WS-DREAM files loaded via :func:`repro.datasets.load_wsdream_directory`)
    instead of the synthetic twin::

        rt = load_wsdream_directory("/data/wsdream", "response_time")
        tp = load_wsdream_directory("/data/wsdream", "throughput")
        scale = FixedDatasetScale.from_tensors(rt, tp, reruns=20)
        run_table1(scale)

    The dataclass mirrors the fields experiments read (`n_users`,
    `n_services`, `n_slices`, `reruns`, `seed`) and serves the stored
    tensors from :meth:`dataset`.
    """

    sources: "dict[str, TimeSlicedQoS]"
    reruns: int = 3
    seed: int = 42

    @classmethod
    def from_tensors(
        cls,
        response_time: "TimeSlicedQoS | None" = None,
        throughput: "TimeSlicedQoS | None" = None,
        reruns: int = 3,
        seed: int = 42,
    ) -> "FixedDatasetScale":
        sources: dict[str, TimeSlicedQoS] = {}
        if response_time is not None:
            sources["response_time"] = response_time
        if throughput is not None:
            sources["throughput"] = throughput
        if not sources:
            raise ValueError("provide at least one attribute tensor")
        shapes = {tensor.tensor.shape for tensor in sources.values()}
        if len(shapes) > 1:
            raise ValueError(f"attribute tensors disagree on shape: {shapes}")
        return cls(sources=sources, reruns=reruns, seed=seed)

    def _any(self) -> TimeSlicedQoS:
        return next(iter(self.sources.values()))

    @property
    def n_users(self) -> int:
        return self._any().n_users

    @property
    def n_services(self) -> int:
        return self._any().n_services

    @property
    def n_slices(self) -> int:
        return self._any().n_slices

    def with_updates(self, **overrides: object) -> "FixedDatasetScale":
        return replace(self, **overrides)

    def dataset(self, attribute: str = "response_time") -> TimeSlicedQoS:
        canonical = "response_time" if attribute in ("response_time", "rt") else (
            "throughput" if attribute in ("throughput", "tp") else attribute
        )
        if canonical not in self.sources:
            raise KeyError(
                f"no {canonical!r} tensor loaded; available: {sorted(self.sources)}"
            )
        return self.sources[canonical]


def make_amf_config(attribute: str, **overrides: object) -> AMFConfig:
    """The paper's tuned AMF hyper-parameters for a QoS attribute."""
    if attribute in ("response_time", "rt"):
        return AMFConfig.for_response_time(**overrides)
    if attribute in ("throughput", "tp"):
        return AMFConfig.for_throughput(**overrides)
    raise ValueError(f"unknown attribute {attribute!r}")


def make_pmf_config(attribute: str, **overrides: object) -> PMFConfig:
    """PMF configured and tuned per QoS attribute.

    The regularization is attribute-specific (the paper optimizes each
    baseline's parameters): response time tolerates a stronger penalty,
    while throughput — whose normalized values sit at ~0.002 of the range —
    needs a near-zero one, because shrinking factors toward 0 drags
    predictions toward ``g(0) = 0.5`` of a 7,000 kbps range.
    """
    if attribute in ("response_time", "rt"):
        base = {"value_min": 0.0, "value_max": 20.0, "regularization": 0.01}
    elif attribute in ("throughput", "tp"):
        base = {"value_min": 0.0, "value_max": 7000.0, "regularization": 1e-5}
    else:
        raise ValueError(f"unknown attribute {attribute!r}")
    base.update(overrides)
    return PMFConfig(**base)


@dataclass
class ApproachResult:
    """One approach's metrics on one evaluation condition."""

    approach: str
    metrics: dict[str, float]
    fit_seconds: float = 0.0

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]


def test_entries(test: QoSMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(rows, cols, actual values) of the test matrix's observed entries."""
    rows, cols = test.observed_indices()
    return rows, cols, test.values[rows, cols]


def evaluate_amf(
    train: QoSMatrix,
    test: QoSMatrix,
    config: AMFConfig,
    rng: "int | np.random.Generator | None" = None,
    slice_start: float = 0.0,
    slice_seconds: float = 900.0,
    return_model: bool = False,
    kernel: "str | None" = None,
):
    """Train AMF on a randomized stream of ``train``, score on ``test``.

    Follows the paper's protocol: retained entries are randomized into a
    stream, consumed online, then replayed to convergence within the slice.
    ``kernel`` overrides the replay kernel ("scalar"/"vectorized") for the
    kernel-parity ablations; ``None`` uses ``config.kernel``.
    """
    rng = spawn_rng(rng)
    model = AdaptiveMatrixFactorization(config, rng=rng)
    # Pre-register the full id range so unseen test users/services still get
    # (random-factor) predictions instead of KeyErrors.
    model.ensure_user(train.n_users - 1)
    model.ensure_service(train.n_services - 1)
    trainer = StreamTrainer(model, kernel=kernel)
    stream = stream_from_matrix(
        train,
        slice_start=slice_start,
        slice_seconds=slice_seconds,
        rng=rng,
    )
    import time as _time

    started = _time.perf_counter()
    # Replay happens at the end of the slice: the current slice's samples are
    # all younger than the expiry window, anything older is discarded.
    trainer.process(stream)
    fit_seconds = _time.perf_counter() - started

    rows, cols, actual = test_entries(test)
    prediction_matrix = model.predict_matrix()
    predicted = prediction_matrix[rows, cols]
    result = ApproachResult(
        approach="AMF", metrics=score_all(predicted, actual), fit_seconds=fit_seconds
    )
    if return_model:
        return result, model
    return result


def evaluate_batch_predictor(
    name: str,
    predictor: MatrixPredictor,
    train: QoSMatrix,
    test: QoSMatrix,
) -> ApproachResult:
    """Fit an offline baseline on ``train`` and score it on ``test``."""
    import time as _time

    started = _time.perf_counter()
    predictor.fit(train)
    fit_seconds = _time.perf_counter() - started
    rows, cols, actual = test_entries(test)
    predicted = predictor.predict_entries(rows, cols)
    return ApproachResult(
        approach=name, metrics=score_all(predicted, actual), fit_seconds=fit_seconds
    )


def make_baselines(
    attribute: str,
    rng: "int | np.random.Generator | None" = None,
    include_extensions: bool = False,
):
    """Fresh instances of the paper's four comparison approaches.

    ``include_extensions=True`` adds BiasedMF — the bias-augmented batch
    comparator this reproduction contributes beyond the paper's line-up.
    """
    rng = spawn_rng(rng)
    baselines = {
        "UPCC": UPCC(top_k=10),
        "IPCC": IPCC(top_k=10),
        "UIPCC": UIPCC(lam=0.5, top_k=10),
        "PMF": PMF(make_pmf_config(attribute), rng=rng),
    }
    if include_extensions:
        from repro.baselines import BiasedMF, BiasedMFConfig

        if attribute in ("response_time", "rt"):
            config = BiasedMFConfig(value_min=0.0, value_max=20.0)
        else:
            config = BiasedMFConfig(
                value_min=0.0, value_max=7000.0, bias_regularization=1e-5,
                regularization=1e-5,
            )
        baselines["BiasedMF"] = BiasedMF(config, rng=rng)
    return baselines


def compare_on_slice(
    matrix: QoSMatrix,
    attribute: str,
    density: float,
    rng: "int | np.random.Generator | None" = None,
    approaches: "list[str] | None" = None,
) -> dict[str, ApproachResult]:
    """One Table I cell: split at ``density``, run every approach.

    ``approaches`` restricts which models run (default: all five).
    """
    rng = spawn_rng(rng)
    train, test = train_test_split_matrix(matrix, density, rng=rng)
    wanted = approaches if approaches is not None else ["UPCC", "IPCC", "UIPCC", "PMF", "AMF"]
    results: dict[str, ApproachResult] = {}
    baselines = make_baselines(
        attribute, rng=rng, include_extensions="BiasedMF" in wanted
    )
    for name, predictor in baselines.items():
        if name in wanted:
            results[name] = evaluate_batch_predictor(name, predictor, train, test)
    if "AMF" in wanted:
        results["AMF"] = evaluate_amf(train, test, make_amf_config(attribute), rng=rng)
    return results


def average_results(
    runs: "list[dict[str, ApproachResult]]",
) -> dict[str, ApproachResult]:
    """Average metrics over reruns, per approach."""
    if not runs:
        raise ValueError("no runs to average")
    approaches = runs[0].keys()
    averaged: dict[str, ApproachResult] = {}
    for name in approaches:
        metric_names = runs[0][name].metrics.keys()
        averaged[name] = ApproachResult(
            approach=name,
            metrics={
                metric: float(np.mean([run[name].metrics[metric] for run in runs]))
                for metric in metric_names
            },
            fit_seconds=float(np.mean([run[name].fit_seconds for run in runs])),
        )
    return averaged
