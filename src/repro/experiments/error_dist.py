"""Fig. 10: distribution of signed prediction errors for UIPCC, PMF, AMF.

The paper plots histograms of ``predicted - actual`` at 10% density: AMF's
mass concentrates around 0 while UIPCC and PMF spread out — the visual
counterpart of the MRE/NPRE advantage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import train_test_split_matrix
from repro.experiments.runner import (
    ExperimentScale,
    evaluate_amf,
    make_amf_config,
    make_baselines,
    test_entries,
)
from repro.metrics import error_histogram
from repro.utils.rng import spawn_rng
from repro.utils.tables import render_table


@dataclass
class ErrorDistResult:
    """Per-approach signed-error histograms over a shared binning."""

    attribute: str
    centers: np.ndarray
    densities: dict[str, np.ndarray]
    central_mass: dict[str, float]  # fraction of |error| < half a bin from 0

    def to_text(self) -> str:
        names = list(self.densities)
        rows = [
            [float(center)] + [float(self.densities[name][k]) for name in names]
            for k, center in enumerate(self.centers)
        ]
        table = render_table(
            ["error"] + names,
            rows,
            precision=4,
            title=f"Fig. 10 ({self.attribute}) — distribution of prediction errors",
        )
        summary = ", ".join(
            f"{name}: {self.central_mass[name]:.3f}" for name in names
        )
        return f"{table}\nmass within central bin — {summary}"


def run_error_dist(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    density: float = 0.10,
    bins: int = 48,
    value_range: tuple[float, float] = (-3.0, 3.0),
) -> ErrorDistResult:
    """Histogram signed prediction errors for UIPCC, PMF, and AMF."""
    scale = scale if scale is not None else ExperimentScale.quick()
    rng = spawn_rng(scale.seed)
    matrix = scale.dataset(attribute).slice(0)
    train, test = train_test_split_matrix(matrix, density, rng=rng)
    rows, cols, actual = test_entries(test)

    predictions: dict[str, np.ndarray] = {}
    baselines = make_baselines(attribute, rng=rng)
    for name in ("UIPCC", "PMF"):
        predictor = baselines[name].fit(train)
        predictions[name] = predictor.predict_entries(rows, cols)
    __, amf_model = evaluate_amf(
        train, test, make_amf_config(attribute), rng=rng, return_model=True
    )
    predictions["AMF"] = amf_model.predict_matrix()[rows, cols]

    centers = None
    densities: dict[str, np.ndarray] = {}
    central_mass: dict[str, float] = {}
    for name, predicted in predictions.items():
        centers, hist = error_histogram(
            predicted, actual, bins=bins, value_range=value_range
        )
        densities[name] = hist
        central = np.abs(centers) <= (value_range[1] - value_range[0]) / bins
        central_mass[name] = float(hist[central].sum())
    return ErrorDistResult(
        attribute=attribute,
        centers=centers,
        densities=densities,
        central_mass=central_mass,
    )


def main() -> None:
    for attribute in ("response_time", "throughput"):
        print(run_error_dist(attribute=attribute).to_text())
        print()


if __name__ == "__main__":
    main()
