"""Adaptation-decision quality (extension beyond the paper's tables).

The paper motivates QoS prediction entirely by its effect on adaptation
decisions — pick the right candidate, avoid wrong SLA calls — but evaluates
only value-level accuracy.  This experiment closes that loop: for each
approach it measures

* **top-1 / top-3 hit rate** — does the predicted-best candidate in a random
  pool fall among the actually best?
* **selection regret** — the actual response-time cost of trusting the
  prediction, in seconds;
* **SLA accuracy** — how often the predicted violation verdict matches the
  actual one.

It also quantifies the paper's framing gap: per-pair time-series predictors
(the prior working-service art, references [6]/[8]) can score only the
pairs they have history for — their *coverage* of candidate decisions is
reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import EWMAPredictor
from repro.datasets import train_test_split_matrix
from repro.experiments.runner import (
    ExperimentScale,
    evaluate_amf,
    make_amf_config,
    make_baselines,
)
from repro.metrics import selection_regret, sla_confusion, top_k_hit_rate
from repro.utils.rng import spawn_rng
from repro.utils.tables import render_table


@dataclass
class SelectionQualityResult:
    """Per-approach decision metrics plus time-series coverage."""

    attribute: str
    pool_size: int
    n_pools: int
    sla_threshold: float
    metrics: dict[str, dict[str, float]]
    timeseries_coverage: float  # fraction of decisions EWMA could even score

    def to_text(self) -> str:
        names = list(self.metrics)
        columns = ["top-1 hit", "top-3 hit", "regret (s)", "SLA accuracy"]
        rows = [
            [name] + [self.metrics[name][column] for column in columns]
            for name in names
        ]
        table = render_table(
            ["Approach"] + columns,
            rows,
            title=(
                f"Candidate-selection quality ({self.attribute}; pools of "
                f"{self.pool_size}, {self.n_pools} decisions, "
                f"SLA {self.sla_threshold:g})"
            ),
        )
        note = (
            f"per-pair time-series (EWMA) coverage of these decisions: "
            f"{self.timeseries_coverage:.1%} — candidate services have no "
            f"invocation history, which is the gap AMF fills"
        )
        return f"{table}\n{note}"


def run_selection_quality(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    density: float = 0.10,
    pool_size: int = 10,
    n_pools: int = 300,
    sla_threshold: float = 2.0,
) -> SelectionQualityResult:
    """Evaluate candidate-selection decisions for every approach."""
    scale = scale if scale is not None else ExperimentScale.quick()
    rng = spawn_rng(scale.seed)
    matrix = scale.dataset(attribute).slice(0)
    train, test = train_test_split_matrix(matrix, density, rng=rng)
    lower_is_better = attribute in ("response_time", "rt")

    # Dense predictions per approach.
    predictions: dict[str, np.ndarray] = {}
    for name, predictor in make_baselines(attribute, rng=rng).items():
        predictions[name] = predictor.fit(train).predict_matrix()
    __, amf_model = evaluate_amf(
        train, test, make_amf_config(attribute), rng=rng, return_model=True
    )
    predictions["AMF"] = amf_model.predict_matrix()

    # The EWMA working-service predictor sees the same training stream.
    ewma = EWMAPredictor()
    for record in train.records():
        ewma.observe(record)

    # Sample candidate pools among *held-out* (candidate) pairs per user.
    pools: list[tuple[int, np.ndarray]] = []
    ewma_scoreable = 0
    for __ in range(n_pools):
        user = int(rng.integers(matrix.n_users))
        candidates = np.nonzero(test.mask[user])[0]
        if candidates.size < pool_size:
            continue
        pool = rng.choice(candidates, size=pool_size, replace=False)
        pools.append((user, pool))
        if all(ewma.can_predict(user, int(s)) for s in pool):
            ewma_scoreable += 1

    metrics: dict[str, dict[str, float]] = {}
    for name, predicted in predictions.items():
        top1, top3, regrets, sla_acc = [], [], [], []
        for user, pool in pools:
            scores = predicted[user, pool]
            actual = matrix.values[user, pool]
            top1.append(top_k_hit_rate(scores, actual, k=1, lower_is_better=lower_is_better))
            top3.append(top_k_hit_rate(scores, actual, k=3, lower_is_better=lower_is_better))
            regrets.append(selection_regret(scores, actual, lower_is_better=lower_is_better))
            sla_acc.append(
                sla_confusion(
                    scores, actual, sla_threshold, lower_is_better=lower_is_better
                )["accuracy"]
            )
        metrics[name] = {
            "top-1 hit": float(np.mean(top1)),
            "top-3 hit": float(np.mean(top3)),
            "regret (s)": float(np.mean(regrets)),
            "SLA accuracy": float(np.mean(sla_acc)),
        }

    return SelectionQualityResult(
        attribute=attribute,
        pool_size=pool_size,
        n_pools=len(pools),
        sla_threshold=sla_threshold,
        metrics=metrics,
        timeseries_coverage=ewma_scoreable / max(len(pools), 1),
    )


def main() -> None:
    print(run_selection_quality().to_text())


if __name__ == "__main__":
    main()
