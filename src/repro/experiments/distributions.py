"""Figs. 7-8: QoS value distributions before and after data transformation.

Fig. 7 shows the raw response-time/throughput densities are highly skewed
(the paper truncates the axes at 10 s / 150 kbps for visibility); Fig. 8
shows the Box-Cox + normalization pipeline flattens them toward a
normal-like shape on [0, 1] — the property that lets the Gaussian-noise MF
model fit QoS data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.transform import QoSNormalizer
from repro.experiments.runner import ExperimentScale, make_amf_config
from repro.utils.tables import render_series


@dataclass
class DistributionResult:
    """Histogram series for one attribute, raw and transformed."""

    attribute: str
    raw_centers: np.ndarray
    raw_density: np.ndarray
    transformed_centers: np.ndarray
    transformed_density: np.ndarray
    skewness_raw: float
    skewness_transformed: float

    def to_text(self) -> str:
        parts = [
            f"Fig. 7 ({self.attribute}) — raw distribution "
            f"(skewness {self.skewness_raw:.2f})",
            render_series("density", np.round(self.raw_centers, 3), self.raw_density, precision=4),
            f"Fig. 8 ({self.attribute}) — transformed distribution "
            f"(skewness {self.skewness_transformed:.2f})",
            render_series(
                "density",
                np.round(self.transformed_centers, 3),
                self.transformed_density,
                precision=4,
            ),
        ]
        return "\n".join(parts)


def _skewness(values: np.ndarray) -> float:
    centered = values - values.mean()
    std = values.std()
    if std == 0:
        return 0.0
    return float(np.mean(centered**3) / std**3)


def _histogram(values: np.ndarray, bins: int, high: float) -> tuple[np.ndarray, np.ndarray]:
    counts, edges = np.histogram(values, bins=bins, range=(0.0, high))
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts / values.size


def run_distributions(
    scale: ExperimentScale | None = None,
    attribute: str = "response_time",
    bins: int = 40,
) -> DistributionResult:
    """Histogram one attribute's values raw (Fig. 7) and transformed (Fig. 8).

    The raw histogram uses the paper's display cut-offs (10 s for response
    time, 150 kbps for throughput); the transformed histogram spans [0, 1].
    """
    scale = scale if scale is not None else ExperimentScale.quick()
    data = scale.dataset(attribute)
    values = data.observed_values()

    display_cut = 10.0 if attribute in ("response_time", "rt") else 150.0
    raw_centers, raw_density = _histogram(values, bins, display_cut)

    config = make_amf_config(attribute)
    normalizer = QoSNormalizer(
        alpha=config.alpha,
        value_min=config.value_min,
        value_max=config.value_max,
        floor=config.value_floor,
    )
    transformed = np.asarray(normalizer.normalize(values))
    transformed_centers, transformed_density = _histogram(transformed, bins, 1.0)

    return DistributionResult(
        attribute=attribute,
        raw_centers=raw_centers,
        raw_density=raw_density,
        transformed_centers=transformed_centers,
        transformed_density=transformed_density,
        skewness_raw=_skewness(values[values <= display_cut]),
        skewness_transformed=_skewness(transformed),
    )


def main() -> None:
    for attribute in ("response_time", "throughput"):
        print(run_distributions(attribute=attribute).to_text())
        print()


if __name__ == "__main__":
    main()
