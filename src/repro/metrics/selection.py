"""Adaptation-oriented metrics (extension beyond the paper's tables).

The paper motivates QoS prediction by its effect on adaptation decisions —
picking the right candidate service and avoiding wrong SLA-violation calls
(its Section IV example) — but evaluates only value-level accuracy.  These
metrics measure decision quality directly and back the ablation benches and
the adaptation examples.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_shape_match


def _as_candidate_pair(
    predicted: np.ndarray, actual: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    check_shape_match("predicted", predicted, "actual", actual)
    if predicted.ndim != 1 or predicted.size == 0:
        raise ValueError(
            f"candidate scores must be a non-empty 1-D array, got shape {predicted.shape}"
        )
    return predicted, actual


def top_k_hit_rate(
    predicted: np.ndarray,
    actual: np.ndarray,
    k: int = 1,
    lower_is_better: bool = True,
) -> float:
    """Is the predicted-best candidate within the *actual* top ``k``?

    ``predicted``/``actual`` are QoS scores over one candidate pool.  Returns
    1.0 on a hit, 0.0 otherwise; callers average over many pools.
    """
    predicted, actual = _as_candidate_pair(predicted, actual)
    if not (1 <= k <= predicted.size):
        raise ValueError(f"k must be in [1, {predicted.size}], got {k}")
    sign = 1.0 if lower_is_better else -1.0
    chosen = int(np.argmin(sign * predicted))
    actual_order = np.argsort(sign * actual, kind="stable")
    return 1.0 if chosen in actual_order[:k] else 0.0


def selection_regret(
    predicted: np.ndarray,
    actual: np.ndarray,
    lower_is_better: bool = True,
) -> float:
    """Actual QoS cost of trusting the prediction.

    The difference between the actual QoS of the predicted-best candidate and
    the actual QoS of the true best.  Zero means the prediction picked
    optimally; always non-negative.
    """
    predicted, actual = _as_candidate_pair(predicted, actual)
    sign = 1.0 if lower_is_better else -1.0
    chosen = int(np.argmin(sign * predicted))
    best = float(np.min(sign * actual))
    return float(sign * actual[chosen] - best)


def sla_confusion(
    predicted: np.ndarray,
    actual: np.ndarray,
    threshold: float,
    lower_is_better: bool = True,
) -> dict[str, float]:
    """Confusion statistics for SLA-violation calls made from predictions.

    A value *violates* the SLA when it exceeds ``threshold`` (for
    lower-is-better attributes like response time) or falls below it (for
    higher-is-better ones like throughput).  Returns counts plus precision,
    recall, and accuracy; precision/recall are NaN when undefined.

    This formalizes the paper's motivating example: an MAE-optimal predictor
    can still trigger wrong adaptations, which this metric exposes.
    """
    predicted = np.asarray(predicted, dtype=float).ravel()
    actual = np.asarray(actual, dtype=float).ravel()
    check_shape_match("predicted", predicted, "actual", actual)
    if predicted.size == 0:
        raise ValueError("cannot score an empty prediction set")
    if lower_is_better:
        predicted_violation = predicted > threshold
        actual_violation = actual > threshold
    else:
        predicted_violation = predicted < threshold
        actual_violation = actual < threshold
    tp = float(np.sum(predicted_violation & actual_violation))
    fp = float(np.sum(predicted_violation & ~actual_violation))
    fn = float(np.sum(~predicted_violation & actual_violation))
    tn = float(np.sum(~predicted_violation & ~actual_violation))
    precision = tp / (tp + fp) if (tp + fp) > 0 else float("nan")
    recall = tp / (tp + fn) if (tp + fn) > 0 else float("nan")
    return {
        "tp": tp,
        "fp": fp,
        "fn": fn,
        "tn": tn,
        "precision": precision,
        "recall": recall,
        "accuracy": (tp + tn) / predicted.size,
    }
