"""Singular-spectrum analysis used to justify the low-rank assumption.

The paper's Fig. 9 plots the singular values of the user-service matrices,
normalized so the largest is 1, showing that all but the first few are close
to zero.  ``normalized_singular_values`` reproduces that series.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import QoSMatrix


def normalized_singular_values(
    matrix: "QoSMatrix | np.ndarray",
    top_k: int = 50,
    fill: str = "mean",
) -> np.ndarray:
    """Top-``top_k`` singular values, scaled so the largest equals 1.

    A sparse :class:`QoSMatrix` is densified first: unobserved entries are
    replaced by the mean of the observed ones (``fill='mean'``) or zero
    (``fill='zero'``).  The paper computes the spectrum on the collected
    (nearly dense) matrices, so the fill choice barely matters there.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if isinstance(matrix, QoSMatrix):
        observed = matrix.observed_values()
        if fill == "mean":
            fill_value = float(observed.mean()) if observed.size else 0.0
        elif fill == "zero":
            fill_value = 0.0
        else:
            raise ValueError(f"fill must be 'mean' or 'zero', got {fill!r}")
        dense = matrix.filled(fill_value)
    else:
        dense = np.asarray(matrix, dtype=float)
        if dense.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {dense.shape}")
    singular_values = np.linalg.svd(dense, compute_uv=False)
    if singular_values.size == 0 or singular_values[0] <= 0:
        raise ValueError("matrix has no positive singular values")
    normalized = singular_values / singular_values[0]
    return normalized[:top_k]


def effective_rank(matrix: "QoSMatrix | np.ndarray", energy: float = 0.9) -> int:
    """Smallest k whose top-k singular values carry ``energy`` of the
    squared spectrum — a scalar summary of Fig. 9."""
    if not (0 < energy <= 1):
        raise ValueError(f"energy must be in (0, 1], got {energy}")
    spectrum = normalized_singular_values(matrix, top_k=10**9)
    squared = spectrum**2
    cumulative = np.cumsum(squared) / squared.sum()
    return int(np.searchsorted(cumulative, energy) + 1)
