"""Prediction-accuracy metrics (Section V-B of the paper).

The paper argues that absolute metrics (MAE) are misleading for QoS values
spanning several orders of magnitude and therefore emphasizes relative
metrics: **MRE** (median relative error) and **NPRE** (90th-percentile
relative error).  All three are implemented here, plus helpers for the
error-distribution figure (Fig. 10) and the improvement rows of Table I.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_shape_match


def _as_pair(predicted: np.ndarray, actual: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=float).ravel()
    actual = np.asarray(actual, dtype=float).ravel()
    check_shape_match("predicted", predicted, "actual", actual)
    if predicted.size == 0:
        raise ValueError("cannot score an empty prediction set")
    return predicted, actual


def mae(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean Absolute Error (Eq. 18)."""
    predicted, actual = _as_pair(predicted, actual)
    return float(np.mean(np.abs(predicted - actual)))


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root Mean Squared Error (not in the paper's tables; common companion)."""
    predicted, actual = _as_pair(predicted, actual)
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def relative_errors(
    predicted: np.ndarray, actual: np.ndarray, floor: float = 1e-9
) -> np.ndarray:
    """Pairwise relative errors ``|pred - actual| / actual``.

    Actual values are clamped away from zero by ``floor`` so a measured 0
    does not produce an infinite ratio (the paper's data has Rmin = 0).
    """
    check_positive("floor", floor)
    predicted, actual = _as_pair(predicted, actual)
    return np.abs(predicted - actual) / np.maximum(np.abs(actual), floor)


def mre(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Median Relative Error (Eq. 19)."""
    return float(np.median(relative_errors(predicted, actual)))


def npre(predicted: np.ndarray, actual: np.ndarray, percentile: float = 90.0) -> float:
    """Ninety-Percentile Relative Error (Section V-B).

    ``percentile`` is exposed for sensitivity studies; the paper uses 90.
    """
    if not (0 < percentile < 100):
        raise ValueError(f"percentile must be in (0, 100), got {percentile}")
    return float(np.percentile(relative_errors(predicted, actual), percentile))


def score_all(predicted: np.ndarray, actual: np.ndarray) -> dict[str, float]:
    """All three paper metrics at once, as a dict keyed MAE/MRE/NPRE."""
    return {
        "MAE": mae(predicted, actual),
        "MRE": mre(predicted, actual),
        "NPRE": npre(predicted, actual),
    }


def error_histogram(
    predicted: np.ndarray,
    actual: np.ndarray,
    bins: int = 60,
    value_range: tuple[float, float] = (-3.0, 3.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Distribution of signed prediction errors ``pred - actual`` (Fig. 10).

    Returns ``(bin_centers, fraction_per_bin)``; fractions are relative to
    *all* samples, so mass outside ``value_range`` is simply not shown —
    matching how the paper truncates its x-axis.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    predicted, actual = _as_pair(predicted, actual)
    errors = predicted - actual
    counts, edges = np.histogram(errors, bins=bins, range=value_range)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts / errors.size


def improvement_percent(best_other: float, ours: float) -> float:
    """Improvement row of Table I: how much ``ours`` beats ``best_other``.

    Positive means improvement.  Computed as the paper does: the percentage
    by which the proposed approach reduces the most competitive baseline.
    """
    if best_other <= 0:
        raise ValueError(f"best_other must be positive, got {best_other}")
    return float(100.0 * (best_other - ours) / best_other)
