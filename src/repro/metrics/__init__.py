"""Evaluation metrics: MAE/MRE/NPRE (Section V-B), error distributions,
low-rank spectra, and adaptation-oriented selection metrics."""

from repro.metrics.errors import (
    error_histogram,
    improvement_percent,
    mae,
    mre,
    npre,
    relative_errors,
    rmse,
    score_all,
)
from repro.metrics.lowrank import normalized_singular_values
from repro.metrics.selection import (
    selection_regret,
    sla_confusion,
    top_k_hit_rate,
)

__all__ = [
    "mae",
    "rmse",
    "mre",
    "npre",
    "relative_errors",
    "error_histogram",
    "improvement_percent",
    "score_all",
    "normalized_singular_values",
    "top_k_hit_rate",
    "selection_regret",
    "sla_confusion",
]
