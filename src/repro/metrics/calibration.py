"""Prediction-confidence estimation from AMF's error trackers (extension).

AMF already maintains per-user and per-service EMA relative errors to drive
its adaptive weights (Eqs. 12-15).  The same quantities yield a *per
prediction* uncertainty estimate for free:

    ``expected_error(i, j) = (e_u(i) + e_s(j)) / 2``

— the anticipated relative error of predicting pair ``(i, j)``.  An
adaptation policy can use it to prefer candidates the model is confident
about, or to trigger exploratory invocations where confidence is low.

This module computes those estimates and evaluates how well-calibrated they
are: bucketing predictions by expected error, the realized median relative
error should increase across buckets (rank correlation), which
:func:`calibration_report` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.metrics.errors import relative_errors
from repro.utils.tables import render_table


def expected_relative_error(
    model: AdaptiveMatrixFactorization,
    user_ids: np.ndarray,
    service_ids: np.ndarray,
) -> np.ndarray:
    """Per-pair anticipated relative error from the EMA trackers."""
    user_ids = np.asarray(user_ids, dtype=int)
    service_ids = np.asarray(service_ids, dtype=int)
    if user_ids.shape != service_ids.shape:
        raise ValueError(
            f"user_ids and service_ids must match, got "
            f"{user_ids.shape} vs {service_ids.shape}"
        )
    user_errors = np.array([model.weights.user_error(int(u)) for u in user_ids])
    service_errors = np.array(
        [model.weights.service_error(int(s)) for s in service_ids]
    )
    return (user_errors + service_errors) / 2.0


@dataclass
class CalibrationReport:
    """Realized error per confidence bucket plus a rank-correlation score."""

    bucket_edges: np.ndarray       # expected-error quantile edges
    expected_mean: np.ndarray      # mean expected error per bucket
    realized_median: np.ndarray    # realized median relative error per bucket
    counts: np.ndarray
    rank_correlation: float        # Spearman rho between expected & realized

    def to_text(self) -> str:
        rows = [
            [
                f"{self.bucket_edges[k]:.3f}-{self.bucket_edges[k + 1]:.3f}",
                float(self.expected_mean[k]),
                float(self.realized_median[k]),
                int(self.counts[k]),
            ]
            for k in range(len(self.counts))
        ]
        table = render_table(
            ["expected-error bucket", "mean expected", "realized median", "n"],
            rows,
            title="Confidence calibration (AMF error trackers)",
        )
        return f"{table}\nSpearman rank correlation: {self.rank_correlation:.3f}"


def calibration_report(
    model: AdaptiveMatrixFactorization,
    user_ids: np.ndarray,
    service_ids: np.ndarray,
    actual: np.ndarray,
    n_buckets: int = 5,
) -> CalibrationReport:
    """Bucket test pairs by expected error; report realized error per bucket.

    ``actual`` holds the measured QoS values of the (user, service) pairs.
    """
    if n_buckets < 2:
        raise ValueError(f"n_buckets must be >= 2, got {n_buckets}")
    user_ids = np.asarray(user_ids, dtype=int)
    service_ids = np.asarray(service_ids, dtype=int)
    actual = np.asarray(actual, dtype=float)
    if not (user_ids.shape == service_ids.shape == actual.shape):
        raise ValueError("user_ids, service_ids, and actual must share a shape")
    if user_ids.size < n_buckets:
        raise ValueError(
            f"need at least {n_buckets} pairs, got {user_ids.size}"
        )

    expected = expected_relative_error(model, user_ids, service_ids)
    predicted = np.array(
        [model.predict(int(u), int(s)) for u, s in zip(user_ids, service_ids)]
    )
    realized = relative_errors(predicted, actual)

    edges = np.quantile(expected, np.linspace(0.0, 1.0, n_buckets + 1))
    # Guard against duplicate quantiles on near-constant expected errors.
    edges = np.maximum.accumulate(edges)
    edges[-1] += 1e-12
    bucket_of = np.clip(
        np.searchsorted(edges, expected, side="right") - 1, 0, n_buckets - 1
    )

    expected_mean = np.full(n_buckets, np.nan)
    realized_median = np.full(n_buckets, np.nan)
    counts = np.zeros(n_buckets, dtype=int)
    for bucket in range(n_buckets):
        members = bucket_of == bucket
        counts[bucket] = int(members.sum())
        if counts[bucket]:
            expected_mean[bucket] = float(expected[members].mean())
            realized_median[bucket] = float(np.median(realized[members]))

    # Spearman rho between expected and realized errors over all pairs.
    from scipy import stats

    rho = float(stats.spearmanr(expected, realized).statistic)
    return CalibrationReport(
        bucket_edges=edges,
        expected_mean=expected_mean,
        realized_median=realized_median,
        counts=counts,
        rank_correlation=rho,
    )
