"""Workflow-level QoS aggregation (Zeng et al., the paper's reference [11]).

A service-based application's end-to-end QoS is a function of its component
services' QoS and the composition structure.  These are the classic
aggregation rules for the two attributes this package models:

==============  =======================  =========================
structure       response time            throughput
==============  =======================  =========================
sequence        sum of parts             min of parts (pipeline)
parallel split  max of parts (join)      sum of parts (fan-out)
branch          probability-weighted     probability-weighted
loop (k iter)   k times the body         body (unchanged rate)
==============  =======================  =========================

Composition nodes form a tree whose leaves are abstract task names; the
tree evaluates against any mapping ``task name -> QoS value``, so it works
with observed values, predictions, or SLA bounds alike.  The execution
engine uses sequences implicitly; this module generalizes it and lets
policies reason about *workflow-level* SLAs.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

from repro.utils.validation import check_probability


class CompositionNode(abc.ABC):
    """A node of the workflow composition tree."""

    @abc.abstractmethod
    def response_time(self, values: Mapping[str, float]) -> float:
        """Aggregate end-to-end response time from per-task values."""

    @abc.abstractmethod
    def throughput(self, values: Mapping[str, float]) -> float:
        """Aggregate end-to-end throughput from per-task values."""

    @abc.abstractmethod
    def task_names(self) -> set[str]:
        """All leaf task names under this node."""


class Task(CompositionNode):
    """Leaf node: one abstract task, resolved from the value mapping."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("task name must be non-empty")
        self.name = name

    def _lookup(self, values: Mapping[str, float]) -> float:
        if self.name not in values:
            raise KeyError(f"no QoS value provided for task {self.name!r}")
        return float(values[self.name])

    def response_time(self, values: Mapping[str, float]) -> float:
        return self._lookup(values)

    def throughput(self, values: Mapping[str, float]) -> float:
        return self._lookup(values)

    def task_names(self) -> set[str]:
        return {self.name}


class _Composite(CompositionNode):
    """Shared plumbing for multi-child nodes."""

    def __init__(self, children: Sequence[CompositionNode]) -> None:
        if not children:
            raise ValueError(f"{type(self).__name__} needs at least one child")
        self.children = list(children)

    def task_names(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            overlap = names & child.task_names()
            if overlap:
                raise ValueError(f"duplicate task names in composition: {overlap}")
            names |= child.task_names()
        return names


class Sequence_(_Composite):
    """Sequential composition: children execute one after another."""

    def response_time(self, values: Mapping[str, float]) -> float:
        return sum(child.response_time(values) for child in self.children)

    def throughput(self, values: Mapping[str, float]) -> float:
        return min(child.throughput(values) for child in self.children)


class Parallel(_Composite):
    """Parallel split/join: children execute concurrently, all must finish."""

    def response_time(self, values: Mapping[str, float]) -> float:
        return max(child.response_time(values) for child in self.children)

    def throughput(self, values: Mapping[str, float]) -> float:
        return sum(child.throughput(values) for child in self.children)


class Branch(CompositionNode):
    """Exclusive choice: child ``k`` executes with probability ``p_k``."""

    def __init__(
        self,
        children: Sequence[CompositionNode],
        probabilities: Sequence[float],
    ) -> None:
        if not children:
            raise ValueError("Branch needs at least one child")
        if len(children) != len(probabilities):
            raise ValueError(
                f"{len(children)} children but {len(probabilities)} probabilities"
            )
        for probability in probabilities:
            check_probability("branch probability", probability)
        total = sum(probabilities)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"branch probabilities must sum to 1, got {total}")
        self.children = list(children)
        self.probabilities = list(probabilities)

    def response_time(self, values: Mapping[str, float]) -> float:
        return sum(
            probability * child.response_time(values)
            for probability, child in zip(self.probabilities, self.children)
        )

    def throughput(self, values: Mapping[str, float]) -> float:
        return sum(
            probability * child.throughput(values)
            for probability, child in zip(self.probabilities, self.children)
        )

    def task_names(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            overlap = names & child.task_names()
            if overlap:
                raise ValueError(f"duplicate task names in composition: {overlap}")
            names |= child.task_names()
        return names


class Loop(CompositionNode):
    """Bounded repetition: the body executes ``iterations`` times."""

    def __init__(self, body: CompositionNode, iterations: int) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.body = body
        self.iterations = iterations

    def response_time(self, values: Mapping[str, float]) -> float:
        return self.iterations * self.body.response_time(values)

    def throughput(self, values: Mapping[str, float]) -> float:
        return self.body.throughput(values)

    def task_names(self) -> set[str]:
        return self.body.task_names()


def aggregate(
    node: CompositionNode,
    values: Mapping[str, float],
    attribute: str = "response_time",
) -> float:
    """Evaluate a composition tree for one QoS attribute.

    ``values`` maps every leaf task name to that task's (observed or
    predicted) QoS value; missing tasks raise ``KeyError``.
    """
    missing = node.task_names() - set(values)
    if missing:
        raise KeyError(f"missing QoS values for tasks: {sorted(missing)}")
    if attribute in ("response_time", "rt"):
        return node.response_time(values)
    if attribute in ("throughput", "tp"):
        return node.throughput(values)
    raise ValueError(
        f"attribute must be 'response_time' or 'throughput', got {attribute!r}"
    )


def predicted_workflow_qos(
    node: CompositionNode,
    bindings: Mapping[str, int],
    predictor,
    user_id: int,
    attribute: str = "response_time",
) -> float:
    """Workflow-level predicted QoS under a concrete set of bindings.

    ``predictor`` is any object with ``predict(user_id, service_id)`` (the
    :class:`~repro.adaptation.service.QoSPredictionService` interface).
    Lets a policy ask "what end-to-end response time do I predict if I bind
    the workflow this way?" before committing an adaptation.
    """
    missing = node.task_names() - set(bindings)
    if missing:
        raise KeyError(f"missing bindings for tasks: {sorted(missing)}")
    values = {
        task: predictor.predict(user_id, service_id)
        for task, service_id in bindings.items()
        if task in node.task_names()
    }
    return aggregate(node, values, attribute=attribute)
