"""Workflows of abstract tasks bound to component services (Fig. 1).

A service-based application's logic is a workflow over *abstract tasks*
(A, B, C ...); each task is implemented by binding it to one concrete
component service out of a pool of functionally equivalent candidates.
Adaptation = changing a binding at runtime without stopping the workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class AbstractTask:
    """One abstract step of the application logic.

    ``task_type`` groups functionally equivalent services: every service
    registered with the same type is a candidate implementation.
    """

    name: str
    task_type: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if not self.task_type:
            raise ValueError("task_type must be non-empty")


@dataclass(frozen=True, slots=True)
class ServiceBinding:
    """A concrete (task -> service) assignment at a point in time."""

    task_name: str
    service_id: int
    bound_at: float = 0.0

    def __post_init__(self) -> None:
        if self.service_id < 0:
            raise ValueError(f"service_id must be non-negative, got {self.service_id}")


@dataclass
class Workflow:
    """An ordered sequence of abstract tasks plus their current bindings.

    The execution model is sequential composition (the common case in the
    paper's examples): the workflow's end-to-end response time is the sum of
    its component invocations.
    """

    name: str
    tasks: list[AbstractTask]
    _bindings: dict[str, ServiceBinding] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("workflow must contain at least one task")
        names = [task.name for task in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in workflow: {names}")

    def task(self, task_name: str) -> AbstractTask:
        for task in self.tasks:
            if task.name == task_name:
                return task
        raise KeyError(f"no task named {task_name!r} in workflow {self.name!r}")

    def bind(self, task_name: str, service_id: int, at: float = 0.0) -> ServiceBinding:
        """Bind (or rebind) a task to a service; returns the new binding."""
        self.task(task_name)  # validates existence
        binding = ServiceBinding(task_name=task_name, service_id=service_id, bound_at=at)
        self._bindings[task_name] = binding
        return binding

    def binding(self, task_name: str) -> ServiceBinding:
        if task_name not in self._bindings:
            raise KeyError(
                f"task {task_name!r} of workflow {self.name!r} is not bound"
            )
        return self._bindings[task_name]

    def bound_service(self, task_name: str) -> int:
        """Service id currently implementing ``task_name``."""
        return self.binding(task_name).service_id

    def is_fully_bound(self) -> bool:
        """Every task has a binding."""
        return all(task.name in self._bindings for task in self.tasks)

    def bindings(self) -> dict[str, ServiceBinding]:
        """Snapshot of the current bindings keyed by task name."""
        return dict(self._bindings)

    def working_services(self) -> list[int]:
        """Service ids currently in use, in task order."""
        return [self.binding(task.name).service_id for task in self.tasks]
