"""Runnable version of the paper's QoS-driven service adaptation framework
(Section III, Fig. 3).

The paper describes — but does not evaluate — an execution middleware
(BPEL-like workflow engine enriched with a QoS manager, service manager, and
pluggable adaptation policies) backed by a QoS prediction service.  This
package implements that architecture as a discrete-event simulation so the
full decision loop (invoke -> observe -> report -> predict -> adapt) can be
exercised end to end against a ground-truth QoS tensor.
"""

from repro.adaptation.sla import SLA, SLAMonitor
from repro.adaptation.workflow import AbstractTask, ServiceBinding, Workflow
from repro.adaptation.registry import ServiceEntry, ServiceRegistry, UserManager
from repro.adaptation.service import QoSPredictionService
from repro.adaptation.policies import (
    AdaptationAction,
    AdaptationPolicy,
    CostAwarePolicy,
    GreedyReoptimizePolicy,
    ThresholdPolicy,
)
from repro.adaptation.engine import EngineStats, ExecutionEngine, TensorQoSOracle
from repro.adaptation.aggregation import (
    Branch,
    CompositionNode,
    Loop,
    Parallel,
    Sequence_,
    Task,
    aggregate,
    predicted_workflow_qos,
)

__all__ = [
    "SLA",
    "SLAMonitor",
    "AbstractTask",
    "ServiceBinding",
    "Workflow",
    "ServiceEntry",
    "ServiceRegistry",
    "UserManager",
    "QoSPredictionService",
    "AdaptationAction",
    "AdaptationPolicy",
    "ThresholdPolicy",
    "GreedyReoptimizePolicy",
    "CostAwarePolicy",
    "EngineStats",
    "ExecutionEngine",
    "TensorQoSOracle",
    "CompositionNode",
    "Task",
    "Sequence_",
    "Parallel",
    "Branch",
    "Loop",
    "aggregate",
    "predicted_workflow_qos",
]
