"""Service-level agreements and violation tracking.

The paper motivates adaptation by SLA violations: a working service whose
observed QoS crosses a threshold should be replaced.  An :class:`SLA` is a
single-attribute threshold; an :class:`SLAMonitor` tracks violations over a
stream of observations (with a configurable tolerance window, since a single
spike rarely justifies an adaptation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class SLA:
    """A threshold agreement on one QoS attribute.

    ``lower_is_better=True`` (e.g. response time): values *above* the
    threshold violate.  ``lower_is_better=False`` (e.g. throughput): values
    *below* the threshold violate.
    """

    attribute: str
    threshold: float
    lower_is_better: bool = True

    def __post_init__(self) -> None:
        if not np.isfinite(self.threshold):
            raise ValueError(f"threshold must be finite, got {self.threshold!r}")

    def violated(self, value: float) -> bool:
        """Does ``value`` violate this SLA?"""
        if self.lower_is_better:
            return value > self.threshold
        return value < self.threshold

    def margin(self, value: float) -> float:
        """Signed slack: positive means compliant, negative means violating.

        Expressed in the attribute's own units, oriented so that larger is
        always better regardless of the attribute's direction.
        """
        if self.lower_is_better:
            return self.threshold - value
        return value - self.threshold


class SLAMonitor:
    """Sliding-window violation detector for one (user, task) binding.

    Declares a *sustained* violation when at least ``min_violations`` of the
    last ``window`` observations violate the SLA — a simple debounce so one
    transient spike does not trigger churn-y adaptations.
    """

    def __init__(self, sla: SLA, window: int = 3, min_violations: int = 2) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not (1 <= min_violations <= window):
            raise ValueError(
                f"min_violations must be in [1, {window}], got {min_violations}"
            )
        self.sla = sla
        self.window = window
        self.min_violations = min_violations
        self._recent: deque[bool] = deque(maxlen=window)
        self._total_observations = 0
        self._total_violations = 0

    def observe(self, value: float) -> bool:
        """Record one observation; returns True on a *sustained* violation."""
        violated = self.sla.violated(value)
        self._recent.append(violated)
        self._total_observations += 1
        if violated:
            self._total_violations += 1
        return sum(self._recent) >= self.min_violations

    def reset(self) -> None:
        """Clear the sliding window (e.g. after an adaptation rebinds)."""
        self._recent.clear()

    @property
    def total_observations(self) -> int:
        return self._total_observations

    @property
    def total_violations(self) -> int:
        return self._total_violations

    @property
    def violation_rate(self) -> float:
        """Lifetime fraction of observations that violated the SLA."""
        if self._total_observations == 0:
            return 0.0
        return self._total_violations / self._total_observations
