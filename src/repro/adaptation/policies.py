"""Pluggable adaptation policies (Fig. 3's "adaptation policies" box).

A policy inspects the workflow's current bindings, the latest observed QoS,
and the prediction service, and decides which tasks (if any) to rebind.
Three concrete policies are provided:

* :class:`ThresholdPolicy` — the paper's motivating behavior: when a working
  service's observed QoS sustains an SLA violation, replace it with the
  candidate whose *predicted* QoS is best (with a hysteresis margin so the
  replacement must be predicted meaningfully better, avoiding flapping).
* :class:`GreedyReoptimizePolicy` — periodically rebinds every task to the
  best-predicted candidate regardless of violations (an upper-bound
  comparator used by the ablation benches).
* :class:`CostAwarePolicy` — the paper notes that "some service invocations
  may be charged"; this policy extends the threshold trigger with per-service
  invocation prices and switches only when the predicted QoS gain justifies
  the price difference.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.adaptation.registry import ServiceRegistry
from repro.adaptation.service import QoSPredictionService
from repro.adaptation.sla import SLA, SLAMonitor
from repro.adaptation.workflow import Workflow
from repro.utils.validation import check_probability


@dataclass(frozen=True, slots=True)
class AdaptationAction:
    """A decided rebinding of one task."""

    task_name: str
    old_service_id: int
    new_service_id: int
    reason: str
    decided_at: float


class AdaptationPolicy(abc.ABC):
    """Decides rebindings for one user's workflow."""

    @abc.abstractmethod
    def on_observation(
        self,
        user_id: int,
        workflow: Workflow,
        task_name: str,
        observed_value: float,
        now: float,
        registry: ServiceRegistry,
        predictor: QoSPredictionService,
    ) -> "AdaptationAction | None":
        """React to one observed invocation of a bound service.

        Returns an action if the task should be rebound, else ``None``.
        The caller (the execution engine) is responsible for applying it.
        """


class ThresholdPolicy(AdaptationPolicy):
    """SLA-violation-triggered replacement with predicted-QoS selection.

    Args:
        sla:                the SLA guarding each task's observed QoS.
        window:             sliding-window size of the per-task monitors.
        min_violations:     sustained-violation debounce threshold.
        improvement_margin: fractional predicted improvement required before
                            switching (hysteresis); 0.1 means the candidate
                            must be predicted >= 10% better than the current
                            service's prediction.
    """

    def __init__(
        self,
        sla: SLA,
        window: int = 3,
        min_violations: int = 2,
        improvement_margin: float = 0.1,
    ) -> None:
        check_probability("improvement_margin", improvement_margin)
        self.sla = sla
        self.window = window
        self.min_violations = min_violations
        self.improvement_margin = improvement_margin
        self._monitors: dict[tuple[int, str], SLAMonitor] = {}
        self.actions_taken = 0

    def _monitor(self, user_id: int, task_name: str) -> SLAMonitor:
        key = (user_id, task_name)
        if key not in self._monitors:
            self._monitors[key] = SLAMonitor(
                self.sla, window=self.window, min_violations=self.min_violations
            )
        return self._monitors[key]

    def on_observation(
        self,
        user_id: int,
        workflow: Workflow,
        task_name: str,
        observed_value: float,
        now: float,
        registry: ServiceRegistry,
        predictor: QoSPredictionService,
    ) -> "AdaptationAction | None":
        monitor = self._monitor(user_id, task_name)
        if not monitor.observe(observed_value):
            return None

        current_service = workflow.bound_service(task_name)
        task = workflow.task(task_name)
        candidates = registry.candidates_for(task.task_type, exclude={current_service})
        if not candidates:
            return None

        best_id, best_predicted = predictor.best_candidate(
            user_id, candidates, lower_is_better=self.sla.lower_is_better
        )
        current_predicted = predictor.predict(user_id, current_service)
        if self.sla.lower_is_better:
            required = current_predicted * (1.0 - self.improvement_margin)
            worthwhile = best_predicted < required
        else:
            required = current_predicted * (1.0 + self.improvement_margin)
            worthwhile = best_predicted > required
        if not worthwhile:
            return None

        monitor.reset()
        self.actions_taken += 1
        return AdaptationAction(
            task_name=task_name,
            old_service_id=current_service,
            new_service_id=best_id,
            reason=(
                f"sustained SLA violation (observed {observed_value:.3f} vs "
                f"threshold {self.sla.threshold:.3f}); predicted "
                f"{best_predicted:.3f} at candidate {best_id}"
            ),
            decided_at=now,
        )


class GreedyReoptimizePolicy(AdaptationPolicy):
    """Rebind to the best-predicted candidate every ``period`` seconds.

    Ignores observations' values; purely prediction-driven.  Useful as an
    aggressive comparator: it measures how good adaptation could be if
    switching were free, isolating prediction quality from trigger logic.
    """

    def __init__(self, period: float = 900.0, lower_is_better: bool = True) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.lower_is_better = lower_is_better
        self._last_rebind: dict[tuple[int, str], float] = {}
        self.actions_taken = 0

    def on_observation(
        self,
        user_id: int,
        workflow: Workflow,
        task_name: str,
        observed_value: float,
        now: float,
        registry: ServiceRegistry,
        predictor: QoSPredictionService,
    ) -> "AdaptationAction | None":
        key = (user_id, task_name)
        last = self._last_rebind.get(key, -float("inf"))
        if now - last < self.period:
            return None

        current_service = workflow.bound_service(task_name)
        task = workflow.task(task_name)
        candidates = registry.candidates_for(task.task_type)
        if not candidates:
            return None
        best_id, __ = predictor.best_candidate(
            user_id, candidates, lower_is_better=self.lower_is_better
        )
        self._last_rebind[key] = now
        if best_id == current_service:
            return None
        self.actions_taken += 1
        return AdaptationAction(
            task_name=task_name,
            old_service_id=current_service,
            new_service_id=best_id,
            reason=f"periodic reoptimization (period {self.period:.0f}s)",
            decided_at=now,
        )


class CostAwarePolicy(AdaptationPolicy):
    """SLA-triggered replacement that also respects invocation prices.

    Candidates are scored by ``predicted QoS + cost_weight * price`` (for
    lower-is-better attributes; the price penalty is subtracted for
    higher-is-better ones), so a marginally faster but much more expensive
    service does not win.  Services without a listed price are treated as
    free.

    Args:
        sla:            the SLA guarding observed QoS.
        prices:         mapping from service id to invocation price.
        cost_weight:    exchange rate between one price unit and one QoS
                        unit (e.g. 0.5 means paying 1 price unit is worth
                        at most 0.5 s of predicted response time).
        window, min_violations, improvement_margin: as in ThresholdPolicy.
    """

    def __init__(
        self,
        sla: SLA,
        prices: "dict[int, float] | None" = None,
        cost_weight: float = 0.5,
        window: int = 3,
        min_violations: int = 2,
        improvement_margin: float = 0.1,
    ) -> None:
        if cost_weight < 0:
            raise ValueError(f"cost_weight must be non-negative, got {cost_weight}")
        check_probability("improvement_margin", improvement_margin)
        self.sla = sla
        self.prices = dict(prices or {})
        self.cost_weight = cost_weight
        self.improvement_margin = improvement_margin
        self._threshold = ThresholdPolicy(
            sla,
            window=window,
            min_violations=min_violations,
            improvement_margin=improvement_margin,
        )
        self.actions_taken = 0
        self.spend_committed = 0.0

    def _score(self, predicted: float, service_id: int) -> float:
        """Effective cost-adjusted score; lower is always better."""
        price_penalty = self.cost_weight * self.prices.get(service_id, 0.0)
        if self.sla.lower_is_better:
            return predicted + price_penalty
        return -predicted + price_penalty

    def on_observation(
        self,
        user_id: int,
        workflow: Workflow,
        task_name: str,
        observed_value: float,
        now: float,
        registry: ServiceRegistry,
        predictor: QoSPredictionService,
    ) -> "AdaptationAction | None":
        monitor = self._threshold._monitor(user_id, task_name)
        if not monitor.observe(observed_value):
            return None

        current_service = workflow.bound_service(task_name)
        task = workflow.task(task_name)
        candidates = registry.candidates_for(task.task_type, exclude={current_service})
        if not candidates:
            return None

        scored = {
            service_id: self._score(predictor.predict(user_id, service_id), service_id)
            for service_id in candidates
        }
        best_id = min(scored, key=scored.get)
        current_score = self._score(
            predictor.predict(user_id, current_service), current_service
        )
        # Hysteresis on the cost-adjusted score: the winner must improve the
        # effective score by the configured margin.
        if scored[best_id] >= current_score * (1.0 - self.improvement_margin):
            return None

        monitor.reset()
        self.actions_taken += 1
        self.spend_committed += self.prices.get(best_id, 0.0)
        return AdaptationAction(
            task_name=task_name,
            old_service_id=current_service,
            new_service_id=best_id,
            reason=(
                f"sustained SLA violation; cost-adjusted score "
                f"{scored[best_id]:.3f} vs current {current_score:.3f} "
                f"(price {self.prices.get(best_id, 0.0):.2f})"
            ),
            decided_at=now,
        )
