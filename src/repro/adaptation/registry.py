"""Service discovery/management and user management (Fig. 3's "service
manager" and "user manager" components).

The registry tracks which concrete services exist, which abstract task type
each implements, and availability over time (services may be discontinued
and users may join or leave — the churn the paper's scalability experiment
exercises).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ServiceEntry:
    """One concrete service known to the registry."""

    service_id: int
    task_type: str
    name: str = ""
    available: bool = True
    registered_at: float = 0.0

    def __post_init__(self) -> None:
        if self.service_id < 0:
            raise ValueError(f"service_id must be non-negative, got {self.service_id}")
        if not self.task_type:
            raise ValueError("task_type must be non-empty")
        if not self.name:
            self.name = f"{self.task_type}-{self.service_id}"


class ServiceRegistry:
    """Registry of candidate services, grouped by abstract task type."""

    def __init__(self) -> None:
        self._services: dict[int, ServiceEntry] = {}

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, service_id: int) -> bool:
        return service_id in self._services

    def register(
        self,
        service_id: int,
        task_type: str,
        name: str = "",
        at: float = 0.0,
    ) -> ServiceEntry:
        """Add a new service.  Re-registering an id raises ``ValueError``."""
        if service_id in self._services:
            raise ValueError(f"service {service_id} is already registered")
        entry = ServiceEntry(
            service_id=service_id, task_type=task_type, name=name, registered_at=at
        )
        self._services[service_id] = entry
        return entry

    def deregister(self, service_id: int) -> None:
        """Mark a service as discontinued (kept for history, not selectable)."""
        self.get(service_id).available = False

    def reinstate(self, service_id: int) -> None:
        """Make a previously discontinued service selectable again."""
        self.get(service_id).available = True

    def get(self, service_id: int) -> ServiceEntry:
        if service_id not in self._services:
            raise KeyError(f"unknown service id {service_id}")
        return self._services[service_id]

    def is_available(self, service_id: int) -> bool:
        return service_id in self._services and self._services[service_id].available

    def candidates_for(self, task_type: str, exclude: "set[int] | None" = None) -> list[int]:
        """Available service ids implementing ``task_type``, sorted by id."""
        exclude = exclude or set()
        return sorted(
            entry.service_id
            for entry in self._services.values()
            if entry.available
            and entry.task_type == task_type
            and entry.service_id not in exclude
        )

    def task_types(self) -> set[str]:
        return {entry.task_type for entry in self._services.values()}

    def all_ids(self, include_unavailable: bool = False) -> list[int]:
        if include_unavailable:
            return sorted(self._services)
        return sorted(sid for sid, entry in self._services.items() if entry.available)


@dataclass
class _UserEntry:
    user_id: int
    joined_at: float = 0.0
    active: bool = True


class UserManager:
    """Tracks which service users (cloud applications) are active."""

    def __init__(self) -> None:
        self._users: dict[int, _UserEntry] = {}

    def __len__(self) -> int:
        return len(self._users)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._users

    def join(self, user_id: int, at: float = 0.0) -> None:
        """Register a user joining (idempotent: a rejoin reactivates)."""
        if user_id < 0:
            raise ValueError(f"user_id must be non-negative, got {user_id}")
        if user_id in self._users:
            self._users[user_id].active = True
        else:
            self._users[user_id] = _UserEntry(user_id=user_id, joined_at=at)

    def leave(self, user_id: int) -> None:
        if user_id not in self._users:
            raise KeyError(f"unknown user id {user_id}")
        self._users[user_id].active = False

    def is_active(self, user_id: int) -> bool:
        return user_id in self._users and self._users[user_id].active

    def active_users(self) -> list[int]:
        return sorted(uid for uid, entry in self._users.items() if entry.active)
