"""Execution middleware simulation (Fig. 3, left-hand module).

The engine plays the role of the BPEL engine + QoS manager: it executes a
user's workflow by "invoking" each bound service against a ground-truth QoS
oracle, reports every observation to the prediction service, consults the
adaptation policy after each invocation, and applies any rebinding the
policy decides — all while collecting statistics (end-to-end response time,
SLA violations, adaptations performed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adaptation.policies import AdaptationAction, AdaptationPolicy
from repro.adaptation.registry import ServiceRegistry, UserManager
from repro.adaptation.service import QoSPredictionService
from repro.adaptation.sla import SLA
from repro.adaptation.workflow import Workflow
from repro.datasets.schema import TimeSlicedQoS
from repro.utils.rng import spawn_rng


class TensorQoSOracle:
    """Ground-truth QoS source backed by a :class:`TimeSlicedQoS` tensor.

    ``value(user, service, now)`` looks up the tensor slice containing
    ``now`` and adds optional multiplicative log-normal measurement noise —
    the "true" QoS an invocation would experience at that moment.  Times
    beyond the tensor wrap around, so long simulations keep running.
    """

    def __init__(
        self,
        data: TimeSlicedQoS,
        noise_sigma: float = 0.05,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        self.data = data
        self.noise_sigma = noise_sigma
        self._rng = spawn_rng(rng)

    def slice_at(self, now: float) -> int:
        """Tensor slice index containing time ``now`` (wrapping)."""
        if now < 0:
            raise ValueError(f"time must be non-negative, got {now}")
        return int(now // self.data.slice_seconds) % self.data.n_slices

    def value(self, user_id: int, service_id: int, now: float) -> float:
        slice_id = self.slice_at(now)
        base = float(self.data.tensor[slice_id, user_id, service_id])
        if self.noise_sigma > 0:
            base *= float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        return float(np.clip(base, self.data.value_min, self.data.value_max))


@dataclass
class EngineStats:
    """Aggregated outcomes of a simulation run."""

    executions: int = 0
    invocations: int = 0
    adaptations: int = 0
    sla_violations: int = 0
    total_response_time: float = 0.0
    per_execution_times: list[float] = field(default_factory=list)
    actions: list[AdaptationAction] = field(default_factory=list)

    @property
    def mean_execution_time(self) -> float:
        if not self.per_execution_times:
            return float("nan")
        return float(np.mean(self.per_execution_times))

    @property
    def violation_rate(self) -> float:
        if self.invocations == 0:
            return 0.0
        return self.sla_violations / self.invocations


class ExecutionEngine:
    """Drives one user's workflow through the observe/predict/adapt loop."""

    def __init__(
        self,
        user_id: int,
        workflow: Workflow,
        registry: ServiceRegistry,
        predictor: QoSPredictionService,
        policy: AdaptationPolicy,
        oracle: TensorQoSOracle,
        sla: "SLA | None" = None,
        users: "UserManager | None" = None,
    ) -> None:
        if not workflow.is_fully_bound():
            raise ValueError(
                f"workflow {workflow.name!r} must be fully bound before execution"
            )
        for task in workflow.tasks:
            service_id = workflow.bound_service(task.name)
            if not registry.is_available(service_id):
                raise ValueError(
                    f"task {task.name!r} is bound to unavailable service {service_id}"
                )
        self.user_id = user_id
        self.workflow = workflow
        self.registry = registry
        self.predictor = predictor
        self.policy = policy
        self.oracle = oracle
        self.sla = sla
        self.stats = EngineStats()
        if users is not None:
            users.join(user_id)

    def execute_once(self, now: float) -> float:
        """Run the workflow once at time ``now``; returns the end-to-end
        response time (sum of component invocations).

        After each invocation the observation is reported to the prediction
        service and the policy is consulted; any decided rebinding takes
        effect immediately for *subsequent* executions (and subsequent tasks
        of this execution, mirroring a live engine).
        """
        execution_time = 0.0
        for task in self.workflow.tasks:
            service_id = self.workflow.bound_service(task.name)
            observed = self.oracle.value(self.user_id, service_id, now)
            execution_time += observed
            self.stats.invocations += 1
            if self.sla is not None and self.sla.violated(observed):
                self.stats.sla_violations += 1

            self.predictor.report_observation(self.user_id, service_id, observed, now)
            action = self.policy.on_observation(
                user_id=self.user_id,
                workflow=self.workflow,
                task_name=task.name,
                observed_value=observed,
                now=now,
                registry=self.registry,
                predictor=self.predictor,
            )
            if action is not None:
                self._apply(action)
        self.stats.executions += 1
        self.stats.total_response_time += execution_time
        self.stats.per_execution_times.append(execution_time)
        return execution_time

    def run(self, start: float, interval: float, count: int) -> EngineStats:
        """Execute the workflow ``count`` times, ``interval`` seconds apart."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for k in range(count):
            self.execute_once(start + k * interval)
        return self.stats

    def _apply(self, action: AdaptationAction) -> None:
        if not self.registry.is_available(action.new_service_id):
            return  # candidate vanished between decision and application
        self.workflow.bind(action.task_name, action.new_service_id, at=action.decided_at)
        self.stats.adaptations += 1
        self.stats.actions.append(action)
