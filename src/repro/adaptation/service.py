"""The QoS prediction service facade (Fig. 3, right-hand module).

Wraps the AMF model behind the three-step pipeline the paper describes:
input handling (observed QoS data arrive as a formatted stream), online
updating (the model absorbs each sample incrementally), and QoS prediction
(results served on demand through a narrow interface).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.config import AMFConfig
from repro.core.fallback import FallbackPredictor, PredictionResult
from repro.core.online import StreamTrainer
from repro.core.transform import sigmoid
from repro.datasets.schema import QoSRecord


class QoSPredictionService:
    """User-facing interface of the prediction module.

    Args:
        config:        AMF hyper-parameters (defaults to the paper's RT
                       configuration).
        rng:           seed or generator for the model's initialization.
        replay_budget: replay SGD steps interleaved per reported observation,
                       approximating Algorithm 1's background replay loop
                       without a separate thread.
    """

    def __init__(
        self,
        config: AMFConfig | None = None,
        rng: "int | np.random.Generator | None" = None,
        replay_budget: int = 5,
    ) -> None:
        if replay_budget < 0:
            raise ValueError(f"replay_budget must be >= 0, got {replay_budget}")
        self.model = AdaptiveMatrixFactorization(config, rng=rng)
        self.trainer = StreamTrainer(self.model)
        self.replay_budget = replay_budget
        self._observations_handled = 0
        self.fallback = FallbackPredictor(
            prior=float(self.model.normalizer.denormalize(sigmoid(0.0)))
        )

    # -- input handling + online updating ---------------------------------
    def report_observation(
        self, user_id: int, service_id: int, value: float, timestamp: float
    ) -> None:
        """Ingest one observed QoS sample from a user's QoS manager."""
        record = QoSRecord(
            timestamp=timestamp, user_id=user_id, service_id=service_id, value=value
        )
        self.model.observe(record)
        self.fallback.observe(user_id, service_id, value)
        self._observations_handled += 1
        for __ in range(self.replay_budget):
            if self.model.n_stored_samples == 0:
                break
            self.model.replay_step(timestamp)

    def synchronize(self, now: float) -> None:
        """Run replay to convergence (e.g. during an idle period)."""
        self.trainer.replay_until_converged(now)

    # -- prediction interface ----------------------------------------------
    def predict(self, user_id: int, service_id: int) -> float:
        """Predicted QoS value for one (user, service) pair."""
        self.model.ensure_user(user_id)
        self.model.ensure_service(service_id)
        return self.model.predict(user_id, service_id)

    def predict_detailed(self, user_id: int, service_id: int) -> PredictionResult:
        """Prediction tagged with its source and calibration confidence.

        Unlike :meth:`predict`, unknown entities do not grow the model:
        they degrade through the fallback chain (running means -> prior),
        as does any non-finite model answer.  Model answers carry the
        ``(e_u + e_s) / 2`` expected relative error of
        :mod:`repro.metrics.calibration`.
        """
        known = user_id < self.model.n_users and service_id < self.model.n_services
        if known:
            value = self.model.predict(user_id, service_id)
            if math.isfinite(value):
                from repro.metrics.calibration import expected_relative_error

                expected = float(
                    expected_relative_error(self.model, [user_id], [service_id])[0]
                )
                return PredictionResult(value, "model", expected)
        return self.fallback.predict(user_id, service_id)

    def healthy(self) -> bool:
        """Readiness probe: every initialized factor entry is finite."""
        return bool(
            np.all(np.isfinite(self.model.user_factors()))
            and np.all(np.isfinite(self.model.service_factors()))
        )

    def predict_candidates(
        self, user_id: int, service_ids: "list[int]"
    ) -> dict[int, float]:
        """Predicted QoS for each candidate service, keyed by service id."""
        return {
            service_id: self.predict(user_id, service_id)
            for service_id in service_ids
        }

    def best_candidate(
        self,
        user_id: int,
        service_ids: "list[int]",
        lower_is_better: bool = True,
    ) -> tuple[int, float]:
        """The candidate with the best predicted QoS, with its prediction."""
        if not service_ids:
            raise ValueError("candidate list must be non-empty")
        predictions = self.predict_candidates(user_id, service_ids)
        key = min if lower_is_better else max
        best_id = key(predictions, key=predictions.get)
        return best_id, predictions[best_id]

    @property
    def observations_handled(self) -> int:
        """Total samples ingested through :meth:`report_observation`."""
        return self._observations_handled
