"""Statistical twin of the WS-DREAM dataset #2 used in the paper.

The paper evaluates on real measurements (142 PlanetLab users x 4,500 public
Web services x 64 slices of 15 minutes; response time 0-20 s with mean
1.33 s, throughput 0-7,000 kbps).  That dataset is public but not available
offline, so this module synthesizes data with the same *structural*
properties the paper's techniques rely on:

* **Skewed marginals** (Fig. 7): QoS values are log-normal with a timeout
  spike at the maximum — this is what makes Box-Cox transformation matter.
* **Approximate low rank** (Fig. 9): the log-space matrix is
  ``user effect + service effect + low-rank interaction``, so the value
  matrix has a rapidly decaying singular spectrum — this is what makes
  matrix factorization work.
* **User-specificity** (Fig. 2(b)): per-user network offsets give different
  users different views of the same service.
* **Temporal fluctuation around a mean** (Fig. 2(a)): an AR(1) process in
  log space makes values drift slice to slice without losing their mean —
  this is what makes *online* learning matter.
* **Anti-correlated throughput**: throughput is generated from the same
  latent structure with a negative coupling to response time, as in reality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import TimeSlicedQoS
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """Knobs of the generator; defaults mirror the paper's dataset scale.

    The full paper-scale tensor (64 x 142 x 4500) costs several hundred MB;
    experiments default to a reduced service count and state so explicitly.
    """

    n_users: int = 142
    n_services: int = 4500
    n_slices: int = 64
    slice_seconds: float = 900.0
    interaction_rank: int = 4

    # Log-space variance components for response time.
    user_sigma: float = 0.4          # per-user network offset
    service_sigma: float = 0.7       # per-service base latency spread
    interaction_sigma: float = 0.35  # low-rank user x service interaction
    temporal_sigma: float = 0.25     # AR(1) fluctuation scale
    temporal_rho: float = 0.8        # AR(1) persistence between slices
    noise_sigma: float = 0.15        # per-observation iid noise

    rt_mean: float = 1.33            # target mean response time (seconds)
    rt_max: float = 20.0
    timeout_prob: float = 0.005      # invocations that hit the 20 s ceiling

    tp_mean: float = 11.35           # target mean throughput (kbps)
    tp_max: float = 7000.0
    tp_coupling: float = 0.8         # strength of anti-correlation with RT
    tp_user_sigma: float = 0.5       # per-user access-link bandwidth spread
    tp_service_sigma: float = 0.6    # per-service uplink bandwidth spread
    tp_interaction_sigma: float = 0.3  # low-rank route interaction
    tp_extra_sigma: float = 0.3      # per-observation measurement noise

    missing_rate: float = 0.02       # failed measurements, even when "dense"

    def __post_init__(self) -> None:
        for name in ("n_users", "n_services", "n_slices", "interaction_rank"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        check_positive("slice_seconds", self.slice_seconds)
        for name in (
            "user_sigma",
            "service_sigma",
            "interaction_sigma",
            "temporal_sigma",
            "noise_sigma",
            "tp_user_sigma",
            "tp_service_sigma",
            "tp_interaction_sigma",
            "tp_extra_sigma",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        check_probability("temporal_rho", self.temporal_rho)
        check_probability("timeout_prob", self.timeout_prob)
        check_probability("missing_rate", self.missing_rate)
        check_positive("rt_mean", self.rt_mean)
        check_positive("rt_max", self.rt_max)
        check_positive("tp_mean", self.tp_mean)
        check_positive("tp_max", self.tp_max)

    def scaled(self, n_users: int, n_services: int, n_slices: int | None = None) -> "SyntheticConfig":
        """A copy at a different scale (used by tests and quick benches)."""
        from dataclasses import replace

        return replace(
            self,
            n_users=n_users,
            n_services=n_services,
            n_slices=self.n_slices if n_slices is None else n_slices,
        )


class WSDreamGenerator:
    """Generates correlated response-time and throughput tensors.

    All randomness flows from one seed, so a generator instance produces the
    same dataset every time ``generate_pair`` is called with the same seed.
    """

    def __init__(self, config: SyntheticConfig | None = None, seed: int | None = 0) -> None:
        self.config = config if config is not None else SyntheticConfig()
        self._seed = seed

    # -- latent structure ------------------------------------------------
    def _log_base_matrix(self, rng: np.random.Generator) -> np.ndarray:
        """Static log-space structure: user + service + low-rank interaction."""
        config = self.config
        user_effect = rng.normal(0.0, config.user_sigma, size=config.n_users)
        service_effect = rng.normal(0.0, config.service_sigma, size=config.n_services)
        user_latent = rng.normal(
            0.0, 1.0, size=(config.n_users, config.interaction_rank)
        )
        service_latent = rng.normal(
            0.0, 1.0, size=(config.n_services, config.interaction_rank)
        )
        interaction = (
            user_latent @ service_latent.T
        ) * (config.interaction_sigma / np.sqrt(config.interaction_rank))
        return user_effect[:, None] + service_effect[None, :] + interaction

    def _temporal_deviations(self, rng: np.random.Generator) -> np.ndarray:
        """AR(1) log-space deviation per (slice, user, service)."""
        config = self.config
        shape = (config.n_users, config.n_services)
        deviations = np.empty((config.n_slices, *shape), dtype=float)
        current = rng.normal(0.0, config.temporal_sigma, size=shape)
        deviations[0] = current
        innovation_scale = config.temporal_sigma * np.sqrt(
            max(1.0 - config.temporal_rho**2, 0.0)
        )
        for t in range(1, config.n_slices):
            current = config.temporal_rho * current + rng.normal(
                0.0, innovation_scale, size=shape
            )
            deviations[t] = current
        return deviations

    def _log_variance(self) -> float:
        """Total log-space variance of the RT model (for mean calibration)."""
        config = self.config
        return (
            config.user_sigma**2
            + config.service_sigma**2
            + config.interaction_sigma**2
            + config.temporal_sigma**2
            + config.noise_sigma**2
        )

    # -- public API -------------------------------------------------------
    def generate_pair(self) -> tuple[TimeSlicedQoS, TimeSlicedQoS]:
        """Generate the (response_time, throughput) tensors, correlated."""
        config = self.config
        rng = spawn_rng(self._seed)

        log_base = self._log_base_matrix(rng)
        deviations = self._temporal_deviations(rng)

        # Calibrate the log-normal location so E[RT] matches rt_mean.
        rt_mu = np.log(config.rt_mean) - self._log_variance() / 2.0
        log_rt = (
            rt_mu
            + log_base[None, :, :]
            + deviations
            + rng.normal(0.0, config.noise_sigma, size=deviations.shape)
        )
        rt = np.exp(log_rt)

        # Timeouts saturate at the ceiling, creating the real data's spike.
        timeouts = rng.random(rt.shape) < config.timeout_prob
        rt[timeouts] = config.rt_max
        np.clip(rt, 0.0, config.rt_max, out=rt)

        # Throughput: anti-correlated with the static RT structure, plus its
        # own heavy tail.  The tail lives in *low-rank* structure — per-user
        # access-link capacity, per-service uplink capacity, and a low-rank
        # route interaction — so a factorization model can learn it, just as
        # it can on the real data; only a small iid term models measurement
        # noise.  Timeout invocations transfer ~nothing.
        tp_user = rng.normal(0.0, config.tp_user_sigma, size=config.n_users)
        tp_service = rng.normal(0.0, config.tp_service_sigma, size=config.n_services)
        tp_user_latent = rng.normal(
            0.0, 1.0, size=(config.n_users, config.interaction_rank)
        )
        tp_service_latent = rng.normal(
            0.0, 1.0, size=(config.n_services, config.interaction_rank)
        )
        tp_structure = (
            tp_user[:, None]
            + tp_service[None, :]
            + (tp_user_latent @ tp_service_latent.T)
            * (config.tp_interaction_sigma / np.sqrt(config.interaction_rank))
        )
        tp_variance = (config.tp_coupling**2) * float(np.var(log_base)) + (
            config.tp_user_sigma**2
            + config.tp_service_sigma**2
            + config.tp_interaction_sigma**2
            + config.tp_extra_sigma**2
            + config.temporal_sigma**2
        )
        tp_mu = np.log(config.tp_mean) - tp_variance / 2.0
        log_tp = (
            tp_mu
            - config.tp_coupling * (log_base - log_base.mean())[None, :, :]
            + tp_structure[None, :, :]
            - deviations
            + rng.normal(0.0, config.tp_extra_sigma, size=deviations.shape)
        )
        tp = np.exp(log_tp)
        tp[timeouts] = 0.1
        np.clip(tp, 0.0, config.tp_max, out=tp)

        mask = rng.random(rt.shape) >= config.missing_rate

        rt_data = TimeSlicedQoS(
            tensor=rt,
            mask=mask,
            attribute="response_time",
            unit="s",
            slice_seconds=config.slice_seconds,
            value_min=0.0,
            value_max=config.rt_max,
        )
        tp_data = TimeSlicedQoS(
            tensor=tp,
            mask=mask.copy(),
            attribute="throughput",
            unit="kbps",
            slice_seconds=config.slice_seconds,
            value_min=0.0,
            value_max=config.tp_max,
        )
        return rt_data, tp_data

    def generate_response_time(self) -> TimeSlicedQoS:
        """Generate only the response-time tensor."""
        return self.generate_pair()[0]

    def generate_throughput(self) -> TimeSlicedQoS:
        """Generate only the throughput tensor."""
        return self.generate_pair()[1]


def generate_dataset(
    n_users: int = 142,
    n_services: int = 300,
    n_slices: int = 64,
    seed: int | None = 0,
    attribute: str = "response_time",
) -> TimeSlicedQoS:
    """Convenience wrapper used by examples, tests, and benches.

    Defaults to the paper's user count and slice count with a reduced
    service count (300 instead of 4,500) to keep laptop runs fast; pass
    ``n_services=4500`` for the paper-scale tensor.
    """
    config = SyntheticConfig().scaled(n_users, n_services, n_slices)
    generator = WSDreamGenerator(config, seed=seed)
    if attribute in ("response_time", "rt"):
        return generator.generate_response_time()
    if attribute in ("throughput", "tp"):
        return generator.generate_throughput()
    raise ValueError(
        f"attribute must be 'response_time' or 'throughput', got {attribute!r}"
    )
