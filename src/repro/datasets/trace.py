"""Persistence of QoS observation streams as CSV traces.

The prediction service of Fig. 3 logs every observation into a QoS
database; these helpers provide the file-level equivalent — write a stream
out as a human-auditable CSV and replay it later — so recorded runs can be
re-fed to any model bit-for-bit.

Format: a header line then ``timestamp,user_id,service_id,value,slice_id``
rows.  ``slice_id`` is optional on read (defaults to -1).
"""

from __future__ import annotations

import csv
import os

from repro.datasets.schema import QoSRecord
from repro.datasets.stream import QoSStream

_HEADER = ["timestamp", "user_id", "service_id", "value", "slice_id"]


def save_stream(stream: "QoSStream | list[QoSRecord]", path: str) -> int:
    """Write a stream to ``path`` as CSV; returns the record count."""
    records = list(stream)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for record in records:
            writer.writerow(
                [
                    repr(record.timestamp),
                    record.user_id,
                    record.service_id,
                    repr(record.value),
                    record.slice_id,
                ]
            )
    return len(records)


def load_stream(path: str) -> QoSStream:
    """Read a CSV trace written by :func:`save_stream`.

    Validates the header and raises ``ValueError`` with the row number on
    malformed rows.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    records: list[QoSRecord] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise ValueError(f"{path}: empty trace file") from exc
        if [column.strip() for column in header[:4]] != _HEADER[:4]:
            raise ValueError(
                f"{path}: unexpected header {header!r}; expected {_HEADER}"
            )
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) < 4:
                raise ValueError(f"{path}:{row_number}: expected >=4 fields, got {row!r}")
            try:
                records.append(
                    QoSRecord(
                        timestamp=float(row[0]),
                        user_id=int(row[1]),
                        service_id=int(row[2]),
                        value=float(row[3]),
                        slice_id=int(row[4]) if len(row) > 4 and row[4] != "" else -1,
                    )
                )
            except ValueError as exc:
                raise ValueError(f"{path}:{row_number}: cannot parse {row!r}") from exc
    return QoSStream(records)
