"""Containers for QoS observations.

The paper works with a user-service QoS matrix per time slice (Section IV-A):
rows are service users (cloud applications), columns are candidate services,
entries are observed QoS values, and most entries are missing.  We model a
missing entry with an explicit boolean mask rather than a sentinel value,
because legitimate QoS values can be arbitrarily close to zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_shape_match


@dataclass(frozen=True, slots=True)
class QoSRecord:
    """One observed QoS sample ``(t, u, s, value)`` as used by Algorithm 1.

    Attributes:
        timestamp: observation time in seconds since the start of collection.
        user_id:   integer user index.
        service_id: integer service index.
        value:     the raw QoS value (e.g. response time in seconds).
        slice_id:  the time-slice index the sample belongs to (-1 if unknown).
    """

    timestamp: float
    user_id: int
    service_id: int
    value: float
    slice_id: int = -1

    def __post_init__(self) -> None:
        if self.user_id < 0 or self.service_id < 0:
            raise ValueError(
                f"user_id/service_id must be non-negative, got "
                f"({self.user_id}, {self.service_id})"
            )
        if not np.isfinite(self.value):
            raise ValueError(f"QoS value must be finite, got {self.value!r}")


@dataclass
class QoSMatrix:
    """A (possibly sparse) user-service QoS matrix for a single time slice.

    ``values`` holds the QoS numbers; ``mask`` is True where the entry is
    observed.  Values at unobserved positions are unspecified and must not be
    read — use :meth:`observed_values` / :meth:`observed_indices`.
    """

    values: np.ndarray
    mask: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        self.mask = np.asarray(self.mask, dtype=bool)
        if self.values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {self.values.shape}")
        check_shape_match("values", self.values, "mask", self.mask)

    @classmethod
    def dense(cls, values: np.ndarray) -> "QoSMatrix":
        """Wrap a fully observed matrix."""
        values = np.asarray(values, dtype=float)
        return cls(values=values, mask=np.ones(values.shape, dtype=bool))

    @property
    def n_users(self) -> int:
        return self.values.shape[0]

    @property
    def n_services(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    @property
    def density(self) -> float:
        """Fraction of observed entries."""
        return float(self.mask.mean()) if self.mask.size else 0.0

    def observed_values(self) -> np.ndarray:
        """Return the observed entries as a 1-D array."""
        return self.values[self.mask]

    def observed_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (row_indices, col_indices) of observed entries."""
        return np.nonzero(self.mask)

    def records(self, timestamp: float = 0.0, slice_id: int = -1) -> list[QoSRecord]:
        """Materialize observed entries as :class:`QoSRecord` objects."""
        rows, cols = self.observed_indices()
        return [
            QoSRecord(
                timestamp=timestamp,
                user_id=int(u),
                service_id=int(s),
                value=float(self.values[u, s]),
                slice_id=slice_id,
            )
            for u, s in zip(rows, cols)
        ]

    def copy(self) -> "QoSMatrix":
        return QoSMatrix(values=self.values.copy(), mask=self.mask.copy())

    def filled(self, fill_value: float = np.nan) -> np.ndarray:
        """Return a dense array with unobserved entries set to ``fill_value``."""
        out = np.full(self.values.shape, fill_value, dtype=float)
        out[self.mask] = self.values[self.mask]
        return out


@dataclass
class TimeSlicedQoS:
    """A stack of per-slice QoS matrices for one QoS attribute.

    Mirrors the WS-DREAM dataset #2 layout: ``tensor[t, u, s]`` is the value
    observed by user ``u`` on service ``s`` during slice ``t``.  ``mask``
    marks which (t, u, s) triples were actually measured — even the "full"
    real dataset has gaps where invocations failed.
    """

    tensor: np.ndarray
    mask: np.ndarray
    attribute: str = "response_time"
    unit: str = "s"
    slice_seconds: float = 900.0  # the paper's 15-minute interval
    value_min: float = 0.0
    value_max: float = 20.0

    def __post_init__(self) -> None:
        self.tensor = np.asarray(self.tensor, dtype=float)
        self.mask = np.asarray(self.mask, dtype=bool)
        if self.tensor.ndim != 3:
            raise ValueError(f"tensor must be 3-D, got shape {self.tensor.shape}")
        check_shape_match("tensor", self.tensor, "mask", self.mask)
        if self.slice_seconds <= 0:
            raise ValueError(f"slice_seconds must be positive, got {self.slice_seconds}")
        if self.value_max <= self.value_min:
            raise ValueError(
                f"value_max must exceed value_min, got "
                f"[{self.value_min}, {self.value_max}]"
            )

    @property
    def n_slices(self) -> int:
        return self.tensor.shape[0]

    @property
    def n_users(self) -> int:
        return self.tensor.shape[1]

    @property
    def n_services(self) -> int:
        return self.tensor.shape[2]

    def slice(self, t: int) -> QoSMatrix:
        """Return the QoS matrix of time slice ``t``."""
        if not (0 <= t < self.n_slices):
            raise IndexError(f"slice {t} out of range [0, {self.n_slices})")
        return QoSMatrix(values=self.tensor[t].copy(), mask=self.mask[t].copy())

    def observed_values(self) -> np.ndarray:
        """All observed values across every slice, flattened."""
        return self.tensor[self.mask]

    def statistics(self) -> dict[str, float]:
        """Summary statistics in the style of the paper's Fig. 6."""
        observed = self.observed_values()
        return {
            "n_users": float(self.n_users),
            "n_services": float(self.n_services),
            "n_slices": float(self.n_slices),
            "slice_minutes": self.slice_seconds / 60.0,
            "observed_entries": float(observed.size),
            "min": float(observed.min()) if observed.size else float("nan"),
            "max": float(observed.max()) if observed.size else float("nan"),
            "mean": float(observed.mean()) if observed.size else float("nan"),
        }
