"""Loader for the real WS-DREAM dataset #2 text layout.

The public dataset the paper uses ships as sparse triplet/quadruplet text
files (``rtdata.txt`` / ``tpdata.txt`` with lines
``user_id service_id time_slice value``).  This environment has no network
access, so the experiments default to the synthetic twin
(:mod:`repro.datasets.synthetic`); this loader exists so the entire harness
runs unchanged against the genuine data when a copy is placed on disk.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

import numpy as np

from repro.datasets.schema import TimeSlicedQoS

#: Conventional file names inside a WS-DREAM dataset#2 directory.
ATTRIBUTE_FILES = {
    "response_time": "rtdata.txt",
    "rt": "rtdata.txt",
    "throughput": "tpdata.txt",
    "tp": "tpdata.txt",
}

#: Value ranges documented for dataset#2 (and used by the paper's Fig. 6).
ATTRIBUTE_RANGES = {
    "rtdata.txt": (0.0, 20.0, "response_time", "s"),
    "tpdata.txt": (0.0, 7000.0, "throughput", "kbps"),
}


def parse_quadruplet_lines(
    lines: Iterable[str],
) -> list[tuple[int, int, int, float]]:
    """Parse ``user service slice value`` lines, skipping blanks/comments.

    Raises ``ValueError`` with the line number on malformed input.
    """
    parsed: list[tuple[int, int, int, float]] = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 4:
            raise ValueError(
                f"line {line_number}: expected 4 fields "
                f"'user service slice value', got {len(parts)}: {stripped!r}"
            )
        try:
            user_id, service_id, slice_id = int(parts[0]), int(parts[1]), int(parts[2])
            value = float(parts[3])
        except ValueError as exc:
            raise ValueError(f"line {line_number}: cannot parse {stripped!r}") from exc
        if min(user_id, service_id, slice_id) < 0:
            raise ValueError(f"line {line_number}: negative index in {stripped!r}")
        parsed.append((user_id, service_id, slice_id, value))
    return parsed


def parse_triplet_lines(lines: Iterable[str]) -> list[tuple[int, int, float]]:
    """Parse single-slice ``user service value`` lines."""
    parsed: list[tuple[int, int, float]] = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 3:
            raise ValueError(
                f"line {line_number}: expected 3 fields 'user service value', "
                f"got {len(parts)}: {stripped!r}"
            )
        try:
            user_id, service_id = int(parts[0]), int(parts[1])
            value = float(parts[2])
        except ValueError as exc:
            raise ValueError(f"line {line_number}: cannot parse {stripped!r}") from exc
        if min(user_id, service_id) < 0:
            raise ValueError(f"line {line_number}: negative index in {stripped!r}")
        parsed.append((user_id, service_id, value))
    return parsed


def tensor_from_quadruplets(
    quadruplets: list[tuple[int, int, int, float]],
    n_users: int | None = None,
    n_services: int | None = None,
    n_slices: int | None = None,
    invalid_value: float = -1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Build (tensor, mask) from sparse quadruplets.

    Dataset#2 marks failed measurements with ``-1``; those entries (and any
    value equal to ``invalid_value``) are left unobserved in the mask.
    """
    if not quadruplets:
        raise ValueError("no QoS quadruplets to build a tensor from")
    max_user = max(q[0] for q in quadruplets)
    max_service = max(q[1] for q in quadruplets)
    max_slice = max(q[2] for q in quadruplets)
    n_users = (max_user + 1) if n_users is None else n_users
    n_services = (max_service + 1) if n_services is None else n_services
    n_slices = (max_slice + 1) if n_slices is None else n_slices
    if max_user >= n_users or max_service >= n_services or max_slice >= n_slices:
        raise ValueError(
            f"indices exceed declared shape ({n_slices}, {n_users}, {n_services}): "
            f"saw user {max_user}, service {max_service}, slice {max_slice}"
        )
    tensor = np.zeros((n_slices, n_users, n_services), dtype=float)
    mask = np.zeros((n_slices, n_users, n_services), dtype=bool)
    for user_id, service_id, slice_id, value in quadruplets:
        if value == invalid_value or value < 0:
            continue
        tensor[slice_id, user_id, service_id] = value
        mask[slice_id, user_id, service_id] = True
    return tensor, mask


def load_wsdream_directory(
    path: str,
    attribute: str = "response_time",
    slice_seconds: float = 900.0,
) -> TimeSlicedQoS:
    """Load one QoS attribute from a WS-DREAM dataset#2 directory.

    Expects ``rtdata.txt`` / ``tpdata.txt`` inside ``path``.  Returns a
    :class:`TimeSlicedQoS` with the documented value ranges attached.
    """
    if attribute not in ATTRIBUTE_FILES:
        raise ValueError(
            f"attribute must be one of {sorted(ATTRIBUTE_FILES)}, got {attribute!r}"
        )
    filename = ATTRIBUTE_FILES[attribute]
    file_path = os.path.join(path, filename)
    if not os.path.exists(file_path):
        raise FileNotFoundError(
            f"{file_path} not found — place the WS-DREAM dataset#2 files there, "
            f"or use repro.datasets.synthetic for the statistical twin"
        )
    with open(file_path) as handle:
        quadruplets = parse_quadruplet_lines(handle)
    tensor, mask = tensor_from_quadruplets(quadruplets)
    value_min, value_max, canonical_name, unit = ATTRIBUTE_RANGES[filename]
    return TimeSlicedQoS(
        tensor=tensor,
        mask=mask,
        attribute=canonical_name,
        unit=unit,
        slice_seconds=slice_seconds,
        value_min=value_min,
        value_max=value_max,
    )
