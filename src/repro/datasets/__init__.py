"""Datasets: containers, the WS-DREAM statistical twin generator, the real
WS-DREAM text-format loader, density sampling, and stream conversion."""

from repro.datasets.schema import QoSMatrix, QoSRecord, TimeSlicedQoS
from repro.datasets.synthetic import SyntheticConfig, WSDreamGenerator, generate_dataset
from repro.datasets.sampling import (
    mask_matrix_to_density,
    split_observed,
    train_test_split_matrix,
)
from repro.datasets.stream import QoSStream, stream_from_matrix, stream_from_slices
from repro.datasets.wsdream import load_wsdream_directory, parse_triplet_lines

__all__ = [
    "QoSMatrix",
    "QoSRecord",
    "TimeSlicedQoS",
    "SyntheticConfig",
    "WSDreamGenerator",
    "generate_dataset",
    "mask_matrix_to_density",
    "split_observed",
    "train_test_split_matrix",
    "QoSStream",
    "stream_from_matrix",
    "stream_from_slices",
    "load_wsdream_directory",
    "parse_triplet_lines",
]
