"""Conversion of QoS matrices into observation streams.

AMF consumes data as a time-ordered stream of ``(t, u, s, R)`` samples
(Algorithm 1).  The paper randomizes each slice's retained training entries
into a stream; these helpers reproduce that, assigning each sample a uniform
random timestamp inside its slice window.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.datasets.schema import QoSMatrix, QoSRecord, TimeSlicedQoS
from repro.utils.rng import spawn_rng


class QoSStream:
    """A time-ordered sequence of :class:`QoSRecord` observations.

    Thin immutable wrapper around a sorted list with convenience accessors
    used by the trainer and the experiments.
    """

    def __init__(self, records: Iterable[QoSRecord], presorted: bool = False) -> None:
        records = list(records)
        if not presorted:
            records.sort(key=lambda record: record.timestamp)
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QoSRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> QoSRecord:
        return self._records[index]

    @property
    def records(self) -> list[QoSRecord]:
        return list(self._records)

    def duration(self) -> float:
        """Time span covered by the stream (0 for empty/single-sample)."""
        if len(self._records) < 2:
            return 0.0
        return self._records[-1].timestamp - self._records[0].timestamp

    def users(self) -> set[int]:
        return {record.user_id for record in self._records}

    def services(self) -> set[int]:
        return {record.service_id for record in self._records}

    def filter(self, predicate) -> "QoSStream":
        """New stream with only records satisfying ``predicate(record)``."""
        return QoSStream(
            [record for record in self._records if predicate(record)], presorted=True
        )

    def merge(self, other: "QoSStream") -> "QoSStream":
        """Merge two streams into one time-ordered stream."""
        return QoSStream([*self._records, *other.records])

    def by_slice(self) -> dict[int, "QoSStream"]:
        """Group records by their slice id (preserving time order)."""
        groups: dict[int, list[QoSRecord]] = {}
        for record in self._records:
            groups.setdefault(record.slice_id, []).append(record)
        return {
            slice_id: QoSStream(records, presorted=True)
            for slice_id, records in groups.items()
        }


def stream_from_matrix(
    matrix: QoSMatrix,
    slice_id: int = 0,
    slice_start: float = 0.0,
    slice_seconds: float = 900.0,
    rng: "int | np.random.Generator | None" = None,
) -> QoSStream:
    """Randomize one slice's observed entries into a stream.

    Each observed entry gets a uniform random timestamp inside
    ``[slice_start, slice_start + slice_seconds)``; the stream is returned in
    timestamp order.  This matches the paper's protocol of feeding AMF "the
    preserved data entries ... randomized as a QoS data stream".
    """
    rng = spawn_rng(rng)
    rows, cols = matrix.observed_indices()
    timestamps = slice_start + rng.random(rows.size) * slice_seconds
    records = [
        QoSRecord(
            timestamp=float(timestamp),
            user_id=int(u),
            service_id=int(s),
            value=float(matrix.values[u, s]),
            slice_id=slice_id,
        )
        for timestamp, u, s in zip(timestamps, rows, cols)
    ]
    return QoSStream(records)


def stream_from_slices(
    data: TimeSlicedQoS,
    slice_masks: "list[np.ndarray] | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> QoSStream:
    """Concatenate every slice of a tensor into one continuous stream.

    ``slice_masks`` optionally restricts which entries of each slice are
    emitted (e.g. the training masks produced by density sampling); when
    omitted, all observed entries are streamed.
    """
    rng = spawn_rng(rng)
    if slice_masks is not None and len(slice_masks) != data.n_slices:
        raise ValueError(
            f"expected {data.n_slices} slice masks, got {len(slice_masks)}"
        )
    all_records: list[QoSRecord] = []
    for t in range(data.n_slices):
        matrix = data.slice(t)
        if slice_masks is not None:
            matrix = QoSMatrix(values=matrix.values, mask=matrix.mask & slice_masks[t])
        slice_stream = stream_from_matrix(
            matrix,
            slice_id=t,
            slice_start=t * data.slice_seconds,
            slice_seconds=data.slice_seconds,
            rng=rng,
        )
        all_records.extend(slice_stream)
    return QoSStream(all_records, presorted=True)
