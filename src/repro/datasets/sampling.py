"""Density masking and train/test splitting (Section V-C protocol).

The paper simulates sparsity by randomly removing entries from each slice's
matrix until only ``density`` of them remain; the retained entries become
training data (randomized into a stream for AMF) and the removed entries are
the test set.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.schema import QoSMatrix
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_fraction


def mask_matrix_to_density(
    matrix: QoSMatrix,
    density: float,
    rng: "int | np.random.Generator | None" = None,
) -> QoSMatrix:
    """Return a copy of ``matrix`` keeping a uniform ``density`` of entries.

    Density is measured against the *full* matrix size (the paper's
    "matrix density = 10%" means each user keeps about 10% of all services),
    but only originally observed entries can be kept.
    """
    check_fraction("density", density)
    rng = spawn_rng(rng)
    rows, cols = matrix.observed_indices()
    n_keep = int(round(density * matrix.values.size))
    n_keep = min(n_keep, rows.size)
    chosen = rng.choice(rows.size, size=n_keep, replace=False)
    mask = np.zeros(matrix.shape, dtype=bool)
    mask[rows[chosen], cols[chosen]] = True
    return QoSMatrix(values=matrix.values.copy(), mask=mask)


def train_test_split_matrix(
    matrix: QoSMatrix,
    train_density: float,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[QoSMatrix, QoSMatrix]:
    """Split observed entries into a train mask of ``train_density`` and a
    test mask holding every other observed entry.

    This is the paper's evaluation protocol: train on the kept fraction,
    score predictions on the removed one.
    """
    train = mask_matrix_to_density(matrix, train_density, rng)
    test_mask = matrix.mask & ~train.mask
    test = QoSMatrix(values=matrix.values.copy(), mask=test_mask)
    return train, test


def split_observed(
    matrix: QoSMatrix,
    fraction: float,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[QoSMatrix, QoSMatrix]:
    """Split observed entries by a fraction *of the observed entries*
    (rather than of the full matrix size).  Useful for generic holdout."""
    check_fraction("fraction", fraction)
    rng = spawn_rng(rng)
    rows, cols = matrix.observed_indices()
    n_first = int(round(fraction * rows.size))
    order = rng.permutation(rows.size)
    first_mask = np.zeros(matrix.shape, dtype=bool)
    second_mask = np.zeros(matrix.shape, dtype=bool)
    first_idx = order[:n_first]
    second_idx = order[n_first:]
    first_mask[rows[first_idx], cols[first_idx]] = True
    second_mask[rows[second_idx], cols[second_idx]] = True
    return (
        QoSMatrix(values=matrix.values.copy(), mask=first_mask),
        QoSMatrix(values=matrix.values.copy(), mask=second_mask),
    )


def split_entities(
    n_entities: int,
    existing_fraction: float,
    rng: "int | np.random.Generator | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly split entity ids into (existing, new) groups.

    Used by the scalability experiment (Fig. 14): 80% of users/services are
    "existing" during warm-up and the remaining 20% join mid-run.
    """
    check_fraction("existing_fraction", existing_fraction)
    rng = spawn_rng(rng)
    order = rng.permutation(n_entities)
    n_existing = int(round(existing_fraction * n_entities))
    existing = np.sort(order[:n_existing])
    new = np.sort(order[n_existing:])
    return existing, new
