"""Horizontal scale-out: shard the model across N servers behind a router.

The single-process :class:`~repro.server.app.PredictionServer` caps out at
one core's kernel throughput and one heap's worth of entities.  This
package shards *users* across a fleet of full prediction servers — each
shard keeps its own WAL, checkpoints, sanitizer gate, lifecycle tiering,
and metrics, entirely unchanged — and puts a router in front that:

* routes observation and prediction traffic to the owning shard
  (rendezvous-hash placement, version-stamped table);
* merges ranked-candidate results, attaching authoritative per-service
  credence fetched from each service's *home* shard;
* aggregates ``/metrics`` (one exposition, samples labeled by shard) and
  ``/health`` across the fleet.

Placement is pure data (:class:`PlacementTable`): clients can fetch it
from ``GET /cluster/placement`` and talk to shards directly, and an
operator drains or rebalances by POSTing a table with a higher version.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.migration import MigrationCoordinator
from repro.cluster.placement import (
    PlacementTable,
    ShardSpec,
    rendezvous_score,
)
from repro.cluster.router import ClusterRouter, MigrationConflict

__all__ = [
    "ClusterClient",
    "ClusterRouter",
    "MigrationConflict",
    "MigrationCoordinator",
    "PlacementTable",
    "ShardSpec",
    "rendezvous_score",
]
