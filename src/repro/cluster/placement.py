"""Rendezvous-hash placement of entities onto shards.

Rendezvous (highest-random-weight) hashing gives every ``(kind, id)`` key
an independent pseudo-random score against every shard; the key lives on
the shard with the highest score.  Two properties make it the right tool
for a stateful fleet:

* **Minimal disruption.**  Adding or removing one shard moves only the
  keys whose top score involved that shard — an expected ``1/N`` of the
  keyspace — because every other key's ranking among the survivors is
  unchanged.  (A naive ``hash(key) % N`` reshuffles almost everything.)
* **No coordination.**  Ownership is a pure function of the key and the
  shard list, so routers and clients compute it locally from a small
  version-stamped table instead of asking a directory service.

Users are placed for the data plane (their observations and predictions
go to their home shard); services are *additionally* given a home shard
that owns the authoritative per-service credence (EMA error) the router
merges into ranked candidates.

This module doubles as the operator CLI for rebalancing::

    python -m repro.cluster.placement --router HOST:PORT show
    python -m repro.cluster.placement --router HOST:PORT drain s0 --migrate

``show`` prints the installed table (and any running migration);
``drain`` / ``undrain`` / ``add`` / ``remove`` each build a version-bumped
table and either POST it to ``/cluster/placement`` (bare ownership swap)
or, with ``--migrate``, hand it to ``/migration/start`` so entity state
moves with ownership.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field, replace

_KINDS = ("user", "service")


def rendezvous_score(kind: str, ext_id: int, shard_name: str) -> int:
    """Deterministic 64-bit score of one key against one shard.

    Stable across processes and Python versions (``hashlib``, not
    ``hash()``, which is salted per process).
    """
    key = f"{kind}:{int(ext_id)}|{shard_name}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity and how to reach it.

    ``addresses`` lists the shard's replica endpoints in preference order
    (a shard may itself be an HA pair from :mod:`repro.server.replication`
    — the router's per-shard client fails over inside the shard exactly
    like a direct client would).  ``draining`` removes the shard from
    placement without removing it from the table: no *new* ownership,
    but the router can still reach it to drain reads during a rebalance.
    """

    name: str
    addresses: tuple = field(default_factory=tuple)
    draining: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValueError("shard name must be non-empty")
        object.__setattr__(
            self,
            "addresses",
            tuple((str(host), int(port)) for host, port in self.addresses),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "addresses": [list(addr) for addr in self.addresses],
            "draining": self.draining,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(
            name=str(data["name"]),
            addresses=tuple(
                (str(host), int(port)) for host, port in data.get("addresses", [])
            ),
            draining=bool(data.get("draining", False)),
        )


class PlacementTable:
    """Version-stamped shard list with pure-function ownership lookup.

    The version is the fleet's coordination primitive: the router serves
    its current table at ``GET /cluster/placement`` and accepts a
    replacement at ``POST /cluster/placement`` only when the incoming
    version is *strictly greater* — so a lagging operator script can
    never roll the fleet back, and clients can cheaply detect staleness
    by comparing versions.
    """

    def __init__(self, shards, version: int = 1) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("placement table needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names}")
        if version < 1:
            raise ValueError(f"version must be >= 1, got {version}")
        self.version = int(version)
        self.shards = sorted(shards, key=lambda shard: shard.name)
        self._by_name = {shard.name: shard for shard in self.shards}
        self._active = [shard for shard in self.shards if not shard.draining]
        if not self._active:
            raise ValueError("placement table needs at least one active shard")

    # -- lookup ---------------------------------------------------------------
    def owner_of(self, kind: str, ext_id: int) -> ShardSpec:
        """The single shard owning ``(kind, ext_id)`` at this version.

        Draining shards never own keys; ties (astronomically unlikely
        with 64-bit scores) break lexicographically on shard name so
        every participant agrees.
        """
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        return max(
            self._active,
            key=lambda shard: (rendezvous_score(kind, ext_id, shard.name), shard.name),
        )

    def shard(self, name: str) -> ShardSpec:
        return self._by_name[name]

    @property
    def names(self) -> list[str]:
        return [shard.name for shard in self.shards]

    @property
    def active(self) -> list[ShardSpec]:
        return list(self._active)

    # -- evolution (each returns a NEW table with version + 1) ----------------
    def with_shard(self, spec: ShardSpec) -> "PlacementTable":
        """Add a shard (scale-out rebalance step)."""
        if spec.name in self._by_name:
            raise ValueError(f"shard {spec.name!r} already present")
        return PlacementTable(self.shards + [spec], version=self.version + 1)

    def without_shard(self, name: str) -> "PlacementTable":
        """Remove a shard entirely (after its keys have moved)."""
        if name not in self._by_name:
            raise KeyError(name)
        return PlacementTable(
            [shard for shard in self.shards if shard.name != name],
            version=self.version + 1,
        )

    def draining_shard(self, name: str, draining: bool = True) -> "PlacementTable":
        """Mark a shard draining (or undo it) — ownership moves off it
        immediately, reachability is kept."""
        if name not in self._by_name:
            raise KeyError(name)
        return PlacementTable(
            [
                replace(shard, draining=draining)
                if shard.name == name
                else shard
                for shard in self.shards
            ],
            version=self.version + 1,
        )

    # -- wire format ----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlacementTable":
        try:
            version = int(data["version"])
            shards = [ShardSpec.from_dict(entry) for entry in data["shards"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed placement table: {exc}") from exc
        return cls(shards, version=version)


# -- operator CLI --------------------------------------------------------------
def _parse_hostport(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return (host or "127.0.0.1", int(port))


def _parse_addresses(text: str) -> tuple:
    return tuple(_parse_hostport(part) for part in text.split(",") if part)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.placement",
        description="Inspect and rebalance a sharded fleet via its router.",
    )
    parser.add_argument(
        "--router", required=True, metavar="HOST:PORT",
        help="cluster router address",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-request timeout in seconds (default 10)",
    )
    parser.add_argument(
        "--migrate", action="store_true",
        help="apply the change as a live entity migration "
        "(POST /migration/start) instead of a bare ownership swap — "
        "factor rows, samples, and gate state move with ownership",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("show", help="print the installed table and migration status")
    for name, extra in (
        ("drain", "stop placing new keys on SHARD (it stays reachable)"),
        ("undrain", "return SHARD to the placement rotation"),
        ("remove", "drop SHARD from the table entirely"),
    ):
        command = sub.add_parser(name, help=extra)
        command.add_argument("shard", metavar="SHARD")
    command = sub.add_parser("add", help="add a new shard to the table")
    command.add_argument("shard", metavar="SHARD")
    command.add_argument(
        "addresses", metavar="HOST:PORT[,HOST:PORT...]",
        help="the shard's replica endpoints in preference order",
    )
    args = parser.parse_args(argv)

    from repro.cluster.client import ClusterClient
    from repro.server.client import PredictionServiceError

    try:
        router_address = _parse_hostport(args.router)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        with ClusterClient(
            router_address, timeout=args.timeout, retries=0
        ) as client:
            table = client.placement(refresh=True)
            if args.command == "show":
                print(
                    json.dumps(
                        {
                            "placement": table.to_dict(),
                            "migration": client.migration_status(),
                        },
                        indent=2,
                        sort_keys=True,
                    )
                )
                return 0
            try:
                if args.command == "drain":
                    new = table.draining_shard(args.shard, True)
                elif args.command == "undrain":
                    new = table.draining_shard(args.shard, False)
                elif args.command == "remove":
                    new = table.without_shard(args.shard)
                else:  # add
                    addresses = _parse_addresses(args.addresses)
                    if not addresses:
                        parser.error("add requires at least one HOST:PORT")
                    new = table.with_shard(ShardSpec(args.shard, addresses))
            except KeyError:
                print(
                    f"error: no shard named {args.shard!r} in "
                    f"{table.names}", file=sys.stderr,
                )
                return 1
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            if args.migrate:
                body = client.start_migration(new)
                print(json.dumps({"migration": body}, indent=2, sort_keys=True))
            else:
                body = client.update_placement(new)
                print(json.dumps({"placement": body}, indent=2, sort_keys=True))
            return 0
    except PredictionServiceError as exc:
        detail = getattr(exc, "body", None)
        print(f"error: {detail if isinstance(detail, dict) else exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
