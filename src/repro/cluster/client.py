"""Client for a sharded fleet, speaking to the cluster router.

A thin wrapper over :class:`~repro.server.client.PredictionClient` bound
to the router's address — the router's structured error bodies (including
``shard_unavailable`` 503s and passed-through fencing 409s) carry HTTP
statuses, so the inherited breaker/retry machinery treats a dead *shard*
as a server answer, never as a router transport failure.

The client also caches the fleet's placement table
(``GET /cluster/placement``) so callers can learn ownership — e.g. to
partition a load generator by home shard, or to talk to a shard directly
during a drain.  The cache refreshes on demand and whenever a response's
``placement_version`` is newer than the cached table.
"""

from __future__ import annotations

import random
import threading
import time

from repro.cluster.placement import PlacementTable
from repro.server.client import PredictionClient, PredictionServiceError


class ClusterClient:
    """Fleet client bound to one cluster-router address.

    Keyword arguments are forwarded to the underlying
    :class:`PredictionClient` (timeouts, retries, breaker tuning...).

    ``refresh_backoff`` / ``refresh_backoff_max`` bound the jittered
    exponential backoff applied when placement refreshes keep failing
    during a rebalance: a fleet of clients that all notice a newer
    ``placement_version`` at once must not thundering-herd the router —
    each client keeps serving its cached table and retries the refresh
    at its own randomized cadence.
    """

    def __init__(
        self,
        router_address: tuple,
        refresh_backoff: float = 0.25,
        refresh_backoff_max: float = 5.0,
        **client_kwargs,
    ) -> None:
        client_kwargs.setdefault("transport", "json")
        self._router = PredictionClient(router_address, **client_kwargs)
        self._lock = threading.Lock()
        self._placement: "PlacementTable | None" = None
        self._refresh_backoff = float(refresh_backoff)
        self._refresh_backoff_max = float(refresh_backoff_max)
        self._refresh_failures = 0
        self._refresh_not_before = 0.0
        self._refresh_rng = random.Random()

    # -- placement ------------------------------------------------------------
    def placement(self, refresh: bool = False) -> PlacementTable:
        """The fleet's placement table (cached until a newer version is
        seen in a response, or ``refresh=True``)."""
        with self._lock:
            cached = self._placement
        if cached is not None and not refresh:
            return cached
        table = PlacementTable.from_dict(
            self._router._request("GET", "/cluster/placement")
        )
        with self._lock:
            if self._placement is None or table.version >= self._placement.version:
                self._placement = table
            return self._placement

    def _note_version(self, version) -> None:
        """Opportunistic refresh when a response advertises a newer
        table.  Refresh failures back off with jitter (the cached table
        keeps serving — at worst a request is routed by the router's
        newer table anyway); a success resets the backoff."""
        if not isinstance(version, int):
            return
        now = time.monotonic()
        with self._lock:
            stale = self._placement is not None and version > self._placement.version
            if not stale or now < self._refresh_not_before:
                return
        try:
            self.placement(refresh=True)
        except (PredictionServiceError, ValueError):
            with self._lock:
                self._refresh_failures += 1
                delay = min(
                    self._refresh_backoff * (2.0 ** (self._refresh_failures - 1)),
                    self._refresh_backoff_max,
                )
                self._refresh_not_before = now + delay * (
                    0.5 + self._refresh_rng.random()
                )
        else:
            with self._lock:
                self._refresh_failures = 0
                self._refresh_not_before = 0.0

    def owner_of(self, kind: str, ext_id: int):
        """Home shard of a key under the cached placement."""
        return self.placement().owner_of(kind, ext_id)

    def update_placement(self, table: PlacementTable) -> dict:
        """Install a new table on the router (drain / rebalance); the
        version must be strictly newer or the router answers 409."""
        body = self._router._request(
            "POST", "/cluster/placement", table.to_dict(), idempotent=False
        )
        with self._lock:
            self._placement = PlacementTable.from_dict(body)
        return body

    def start_migration(
        self, target: PlacementTable, batch_entities: "int | None" = None
    ) -> dict:
        """Kick off a live entity migration to ``target`` on the router
        (state moves with ownership; see :mod:`repro.cluster.migration`)."""
        payload: dict = {"target": target.to_dict()}
        if batch_entities is not None:
            payload["batch_entities"] = int(batch_entities)
        return self._router._request(
            "POST", "/migration/start", payload, idempotent=False
        )

    def migration_status(self) -> dict:
        return self._router._request("GET", "/migration/status")

    # -- data plane -----------------------------------------------------------
    def report_observation(
        self,
        user_id: int,
        service_id: int,
        value: float,
        timestamp: float,
        idempotency_key: "str | None" = None,
        deadline: "float | None" = None,
    ) -> float:
        return self._router.report_observation(
            user_id,
            service_id,
            value,
            timestamp,
            idempotency_key=idempotency_key,
            deadline=deadline,
        )

    def report_observations_detailed(self, observations: "list[dict]") -> dict:
        body = self._router.report_observations_detailed(observations)
        self._note_version(body.get("placement_version"))
        return body

    def predict(self, user_id: int, service_id: int) -> float:
        return self._router.predict(user_id, service_id)

    def predict_candidates(self, user_id, service_ids) -> dict:
        return self.predict_candidates_detailed(user_id, service_ids)[
            "predictions"
        ]

    def predict_candidates_detailed(self, user_id, service_ids) -> dict:
        """Batch predictions plus merged per-service credence from each
        service's home shard (``credence`` map; ``credence_partial``
        lists home shards that could not be reached)."""
        unique_ids = list(dict.fromkeys(int(s) for s in service_ids))
        body = self._router._request(
            "POST",
            "/predictions/batch",
            {"user_id": int(user_id), "service_ids": unique_ids},
            idempotent=True,
        )
        self._note_version(body.get("placement_version"))
        return {
            "user_id": int(user_id),
            "predictions": {
                int(k): float(v) for k, v in body["predictions"].items()
            },
            "sources": {int(k): v for k, v in body.get("sources", {}).items()},
            "credence": {
                int(k): float(v) for k, v in body.get("credence", {}).items()
            },
            "credence_partial": body.get("credence_partial", []),
            "shard": body.get("shard"),
            "placement_version": body.get("placement_version"),
        }

    def rank_candidates(
        self,
        user_id: int,
        service_ids,
        k: "int | None" = None,
        prefer: str = "min",
    ) -> dict:
        """Router-merged ranked candidates (see ``POST /rank/candidates``)."""
        payload = {
            "user_id": int(user_id),
            "service_ids": [int(s) for s in service_ids],
            "prefer": prefer,
        }
        if k is not None:
            payload["k"] = int(k)
        body = self._router._request(
            "POST", "/rank/candidates", payload, idempotent=True
        )
        self._note_version(body.get("placement_version"))
        return body

    def credence(self, service_ids) -> dict[int, float]:
        body = self._router._request(
            "GET",
            "/credence?service_ids="
            + ",".join(str(int(s)) for s in dict.fromkeys(service_ids)),
        )
        self._note_version(body.get("placement_version"))
        return {int(k): float(v) for k, v in body["credence"].items()}

    # -- fleet views ----------------------------------------------------------
    def health(self) -> dict:
        return self._router.health()

    def status(self) -> dict:
        return self._router.status()

    def metrics(self) -> str:
        return self._router.metrics()

    def close(self) -> None:
        self._router.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
