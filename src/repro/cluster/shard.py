"""Shard process entrypoint: one full PredictionServer per OS process.

``python -m repro.cluster.shard --name s0 --port 8301 --data-dir /data/s0``
runs a complete single-node server — WAL, checkpoints, gate, admission,
lifecycle, metrics, binary transport — as one shard of a fleet.  The
router does not care how a shard is hosted; this module is the stock way
to get real process isolation (its own GIL, its own heap, its own disk
queue), which is what the scaling benchmark measures.

On startup the process prints one JSON line::

    {"ready": true, "name": "s0", "address": ["127.0.0.1", 8301], ...}

so a parent (bench harness, process supervisor) can wait for readiness
and learn the bound ports.  SIGTERM (or SIGINT) triggers a graceful stop:
final checkpoint, WAL close, exit 0.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.server.app import PredictionServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.shard",
        description="Run one prediction-server shard in this process.",
    )
    parser.add_argument("--name", required=True, help="shard name (placement key)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="HTTP port (0=ephemeral)")
    parser.add_argument(
        "--binary-port",
        type=int,
        default=None,
        help="binary transport port (default: ephemeral; negative disables)",
    )
    parser.add_argument("--data-dir", default=None, help="durable WAL/checkpoint dir")
    parser.add_argument("--rng", type=int, default=0)
    parser.add_argument("--checkpoint-interval", type=int, default=1000)
    parser.add_argument(
        "--no-fsync", action="store_true", help="disable WAL fsync (benchmarks only)"
    )
    parser.add_argument(
        "--fsync-delay",
        type=float,
        default=0.0,
        help="seconds of simulated disk commit latency added per WAL fsync "
        "(scaling benchmarks on hardware whose fsync is near-free); 0 disables",
    )
    parser.add_argument(
        "--background-replay",
        action="store_true",
        help="enable the background replay trainer (off by default in shards "
        "so ingest determinism is driven by the stream alone)",
    )
    parser.add_argument(
        "--lifecycle",
        action="store_true",
        help="enable hot/cold lifecycle tiering — required for the shard to "
        "take part in live entity migration (/migration/* endpoints)",
    )
    parser.add_argument(
        "--hot-users",
        type=int,
        default=None,
        help="hot-tier user capacity (implies --lifecycle)",
    )
    parser.add_argument(
        "--hot-services",
        type=int,
        default=None,
        help="hot-tier service capacity (implies --lifecycle)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    binary_port = args.binary_port
    if binary_port is not None and binary_port < 0:
        binary_port = None  # disabled
    elif binary_port is None:
        binary_port = 0
    lifecycle = None
    if args.lifecycle or args.hot_users is not None or args.hot_services is not None:
        from repro.lifecycle import LifecycleConfig

        overrides = {}
        if args.hot_users is not None:
            overrides["hot_users"] = args.hot_users
        if args.hot_services is not None:
            overrides["hot_services"] = args.hot_services
        lifecycle = LifecycleConfig(**overrides)
    server = PredictionServer(
        rng=args.rng,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        checkpoint_interval=args.checkpoint_interval,
        wal_fsync=not args.no_fsync,
        wal_fsync_delay=args.fsync_delay,
        background_replay=args.background_replay,
        binary_port=binary_port,
        lifecycle=lifecycle,
    )
    server.start()
    stop = threading.Event()

    def _terminate(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    print(
        json.dumps(
            {
                "ready": True,
                "name": args.name,
                "address": list(server.address),
                "binary_address": (
                    list(server.binary_address)
                    if server.binary_address is not None
                    else None
                ),
                "durable": server.durable,
                "fsync_delay": args.fsync_delay,
                "lifecycle": lifecycle is not None,
            }
        ),
        flush=True,
    )
    stop.wait()
    server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
