"""The cluster router: one HTTP front door for a sharded fleet.

Data plane: observations and predictions are routed to the owning shard
(rendezvous placement over the version-stamped :class:`PlacementTable`)
through ordinary :class:`~repro.server.client.PredictionClient` instances
— one per shard, carrying the shard's full replica set, so fenced 409
replies from a shard's standby redirect *inside* the shard client exactly
as they do for a direct caller, without tripping any breaker.

Control plane: ``GET /cluster/placement`` serves the current table so
clients can learn ownership and talk to shards directly; ``POST`` with a
strictly greater version installs a new table (drain, add, remove),
atomically swapping the routing state.

Fleet views: ``/metrics`` scrapes every shard and re-renders one
exposition with a ``shard`` label on every sample; ``/health`` rolls the
per-shard reports into ok / degraded / unavailable.

Error containment: a shard that cannot be reached surfaces as a
structured ``503 {"code": "shard_unavailable", "shard": ...}`` — a
*response*, not a transport failure, so callers' circuit breakers never
indict the router for a dead shard (the blast radius stays on the keys
the dead shard owns).

Live migration: ``POST /migration/start`` hands a target table to a
:class:`~repro.cluster.migration.MigrationCoordinator` that moves entity
state between shards batch by batch.  While a batch is in flight the
router write-blocks (and, inside the brief commit window, read-blocks)
exactly those entities — answered as a structured ``503
entity_migrating`` with ``Retry-After`` — and routes committed entities
through per-entity overrides until the target table is installed.  With
a ``data_dir``, the installed table and in-flight migration journal are
persisted via atomic temp-rename, so a restarted router keeps its drains
and resumes an interrupted migration.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.cluster.placement import PlacementTable
from repro.observability import get_registry, parse_prometheus_text
from repro.server.client import (
    PredictionClient,
    PredictionServiceError,
)

_METRICS = get_registry()
_ROUTER_REQUESTS = _METRICS.counter(
    "qos_router_requests_total",
    "requests handled by the cluster router",
    labelnames=("route",),
)
_ROUTER_SHARD_ERRORS = _METRICS.counter(
    "qos_router_shard_errors_total",
    "shard requests that failed at the transport level",
    labelnames=("shard",),
)
_PLACEMENT_VERSION = _METRICS.gauge(
    "qos_cluster_placement_version", "current placement table version"
)
_MIGRATION_ACTIVE = _METRICS.gauge(
    "qos_cluster_migration_active", "1 while an entity migration is running"
)
_MIGRATION_ENTITIES = _METRICS.counter(
    "qos_cluster_migration_entities_total",
    "entities re-homed by committed migration batches",
)
_MIGRATION_BLOCKED = _METRICS.counter(
    "qos_cluster_migration_blocked_total",
    "requests answered 503 entity_migrating during a migration window",
)


class _BadRequest(ValueError):
    pass


class _ShardUnavailable(RuntimeError):
    def __init__(self, shard: str, cause: Exception) -> None:
        super().__init__(f"shard {shard!r} unavailable: {cause}")
        self.shard = shard


class _EntityMigrating(RuntimeError):
    """The entity is inside a migration window; the caller should retry
    shortly — the commit window per batch is a handful of shard calls."""

    def __init__(self, kind: str, ext_id: int, retry_after: float = 0.25) -> None:
        super().__init__(f"{kind} {ext_id} is migrating; retry shortly")
        self.kind = kind
        self.ext_id = ext_id
        self.retry_after = retry_after


class MigrationConflict(RuntimeError):
    """A migration cannot start (one is already active, or the target
    table is not strictly newer than the installed one)."""

    def __init__(self, message: str, code: str) -> None:
        super().__init__(message)
        self.code = code


class ClusterRouter:
    """Routes a fleet of prediction-server shards behind one address.

    Args:
        placement:    initial :class:`PlacementTable`.
        host, port:   bind address (port 0 picks an ephemeral port).
        timeout:      per-attempt timeout of each shard client.
        shard_retries: idempotent-retry budget of each shard client
                      (writes are never retried without a key, same
                      contract as a direct client).
        client_kwargs: extra :class:`PredictionClient` keyword arguments
                      applied to every shard client (breaker tuning,
                      transport selection, ...).
        data_dir:     directory for the persisted placement table and the
                      migration journal (atomic temp-rename).  When set,
                      a restart reloads whichever of the persisted and
                      boot tables has the higher version — drains and
                      committed rebalances survive the process — and an
                      interrupted migration resumes on :meth:`start`.
        handler_timeout: socket timeout of the router's own HTTP handler
                      (how long it will wait on a slow *caller*).
                      Defaults to the worst-case downstream budget —
                      ``2 * timeout * (shard_retries + 1)``, floored at
                      30 s — so drain-path reads that legitimately take a
                      full shard-retry cycle are not cut off mid-answer.
    """

    def __init__(
        self,
        placement: PlacementTable,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 5.0,
        shard_retries: int = 0,
        max_body_bytes: int = 1 << 20,
        client_kwargs: "dict | None" = None,
        data_dir: "str | None" = None,
        handler_timeout: "float | None" = None,
    ) -> None:
        self._host = host
        self._port = port
        self.timeout = timeout
        self.shard_retries = shard_retries
        self.max_body_bytes = max_body_bytes
        if handler_timeout is None:
            handler_timeout = max(30.0, 2.0 * timeout * (shard_retries + 1))
        self.handler_timeout = float(handler_timeout)
        self._client_kwargs = dict(client_kwargs or {})
        self._client_kwargs.setdefault("transport", "json")
        self._lock = threading.Lock()  # placement + client-map swaps
        self._clients: dict[str, PredictionClient] = {}
        self._placement: "PlacementTable | None" = None
        # Migration routing state, all guarded by self._lock:
        self._blocked: dict[tuple[str, int], str] = {}  # key -> "w" | "rw"
        self._overrides: dict[tuple[str, int], str] = {}  # key -> dest shard
        self._write_freeze: "PlacementTable | None" = None
        self._extra_shards: dict[str, object] = {}  # target-only shards
        self._migration_lock = threading.Lock()
        self._migration = None  # active MigrationCoordinator
        self._last_migration: "dict | None" = None
        self.data_dir = data_dir
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            persisted = self._load_json(self._placement_path)
            if persisted is not None:
                table = PlacementTable.from_dict(persisted)
                if table.version >= placement.version:
                    placement = table
        self._install(placement)
        self._resume_state = (
            self._load_json(self._migration_path) if data_dir is not None else None
        )
        if self._resume_state is not None:
            # Committed overrides must route correctly before any
            # traffic is served; the coordinator itself restarts in
            # start().
            for kind, ext_id, dest in self._resume_state.get("overrides", ()):
                self._overrides[(str(kind), int(ext_id))] = str(dest)
        self._httpd = None
        self._thread = None

    # -- persistence ----------------------------------------------------------
    @property
    def _placement_path(self) -> str:
        return os.path.join(self.data_dir, "placement.json")

    @property
    def _migration_path(self) -> str:
        return os.path.join(self.data_dir, "migration.json")

    @staticmethod
    def _load_json(path: str):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    @staticmethod
    def _persist_json(path: str, obj) -> None:
        """Atomic write: a crash leaves either the old file or the new
        one, never a torn mix."""
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- placement ------------------------------------------------------------
    @property
    def placement(self) -> PlacementTable:
        with self._lock:
            return self._placement

    def _install(self, table: PlacementTable) -> None:
        clients = {}
        with self._lock:
            old_clients = dict(self._clients)
            for shard in table.shards:
                if not shard.addresses:
                    raise ValueError(
                        f"shard {shard.name!r} has no addresses to route to"
                    )
                existing = old_clients.get(shard.name)
                if (
                    existing is not None
                    and tuple(existing.endpoints)
                    == tuple(
                        f"http://{h}:{p}" for h, p in shard.addresses
                    )
                ):
                    # Same endpoints: keep the client and its learned
                    # primary/breaker state across the version bump.
                    clients[shard.name] = existing
                else:
                    clients[shard.name] = PredictionClient(
                        list(shard.addresses),
                        timeout=self.timeout,
                        retries=self.shard_retries,
                        **self._client_kwargs,
                    )
            dropped = set(old_clients) - set(clients)
            self._placement = table
            self._clients = clients
            self._extra_shards = {}
            _PLACEMENT_VERSION.set(table.version)
        for name in dropped:
            old_clients[name].close()
        if self.data_dir is not None:
            self._persist_json(self._placement_path, table.to_dict())

    def update_placement(self, table: PlacementTable) -> None:
        """Install a new table; the version must strictly increase."""
        if table.version <= self._placement.version:
            raise _BadRequest(
                f"placement version {table.version} is not newer than "
                f"{self._placement.version}"
            )
        self._install(table)

    def _route(self, kind: str, ext_id: int, write: bool = False):
        key = (kind, int(ext_id))
        with self._lock:
            mode = self._blocked.get(key)
            if mode is not None and (write or mode == "rw"):
                _MIGRATION_BLOCKED.inc()
                raise _EntityMigrating(kind, ext_id)
            if write and self._write_freeze is not None:
                # Pre-commit freeze: a write whose owner differs between
                # the installed and target tables would land on a shard
                # about to lose the entity — refuse it for the short
                # convergence window instead.
                if (
                    self._write_freeze.owner_of(kind, ext_id).name
                    != self._placement.owner_of(kind, ext_id).name
                ):
                    _MIGRATION_BLOCKED.inc()
                    raise _EntityMigrating(kind, ext_id)
            dest = self._overrides.get(key)
            if dest is not None:
                shard = self._extra_shards.get(dest)
                if shard is None:
                    shard = self._placement.shard(dest)
                return shard, self._clients[dest]
            shard = self._placement.owner_of(kind, ext_id)
            return shard, self._clients[shard.name]

    def shard_client(self, name: str) -> PredictionClient:
        """The router's client for one shard (drain reads, migration,
        tests)."""
        with self._lock:
            return self._clients[name]

    # -- migration ------------------------------------------------------------
    def start_migration(
        self,
        target: PlacementTable,
        mid: "str | None" = None,
        on_phase=None,
        batch_entities: int = 64,
        state: "dict | None" = None,
    ):
        """Start (or resume, when ``state`` is a persisted journal) a
        live migration to ``target``.  Returns the running
        :class:`~repro.cluster.migration.MigrationCoordinator`."""
        from repro.cluster.migration import MigrationCoordinator

        with self._migration_lock:
            if self._migration is not None and self._migration.active:
                raise MigrationConflict(
                    f"migration {self._migration.mid!r} is already active",
                    code="migration_active",
                )
            if target.version <= self.placement.version:
                raise MigrationConflict(
                    f"target version {target.version} is not newer than "
                    f"installed version {self.placement.version}",
                    code="stale_placement",
                )
            self._ensure_shards(target)
            coordinator = MigrationCoordinator(
                self,
                target,
                mid=mid,
                on_phase=on_phase,
                batch_entities=batch_entities,
                state=state,
            )
            self._migration = coordinator
            if self.data_dir is not None and state is None:
                # Journal before the first action so a kill immediately
                # after start is resumable.
                self._persist_migration(coordinator.state_dict())
            _MIGRATION_ACTIVE.set(1)
            coordinator.start()
            return coordinator

    @property
    def migration(self):
        """The active (or most recently started) coordinator, if any."""
        with self._migration_lock:
            return self._migration

    def migration_status(self) -> dict:
        with self._migration_lock:
            coordinator = self._migration
            last = self._last_migration
        if coordinator is None:
            return {"active": False, "last": last}
        body = {
            "active": coordinator.active,
            "mid": coordinator.mid,
            "target_version": coordinator.target.version,
            "progress": coordinator.progress_snapshot(),
            "last": last,
        }
        if coordinator.error is not None:
            body["error"] = str(coordinator.error)
        return body

    def _ensure_shards(self, table: PlacementTable) -> None:
        """Make every shard of ``table`` reachable *now*: migration
        destinations may be new shards that are not in the installed
        table yet (scale-out), but overrides must route to them before
        the target table is committed."""
        with self._lock:
            for shard in table.shards:
                if shard.name in self._clients:
                    continue
                if not shard.addresses:
                    raise ValueError(
                        f"shard {shard.name!r} has no addresses to route to"
                    )
                self._clients[shard.name] = PredictionClient(
                    list(shard.addresses),
                    timeout=self.timeout,
                    retries=self.shard_retries,
                    **self._client_kwargs,
                )
                self._extra_shards[shard.name] = shard

    def _block_entities(self, entities, reads: bool) -> None:
        mode = "rw" if reads else "w"
        with self._lock:
            for kind, ext_id in entities:
                self._blocked[(kind, int(ext_id))] = mode

    def _unblock_entities(self, entities) -> None:
        with self._lock:
            for kind, ext_id in entities:
                self._blocked.pop((kind, int(ext_id)), None)

    def _add_overrides(self, entities, dest: str) -> None:
        with self._lock:
            for kind, ext_id in entities:
                self._overrides[(kind, int(ext_id))] = dest
        _MIGRATION_ENTITIES.inc(len(entities))

    def overrides_state(self) -> list:
        with self._lock:
            return [
                [kind, ext_id, dest]
                for (kind, ext_id), dest in sorted(self._overrides.items())
            ]

    def _set_write_freeze(self, target: "PlacementTable | None") -> None:
        with self._lock:
            self._write_freeze = target

    def _persist_migration(self, state: dict) -> None:
        if self.data_dir is not None:
            self._persist_json(self._migration_path, state)

    def _commit_migration(self, target: PlacementTable) -> None:
        """The final flip: install the target table, drop the overrides
        and freeze (the table now routes everything correctly), and
        retire the journal."""
        self._install(target)
        with self._lock:
            self._overrides.clear()
            self._write_freeze = None
        if self.data_dir is not None:
            try:
                os.remove(self._migration_path)
            except FileNotFoundError:
                pass

    def _migration_finished(self, coordinator) -> None:
        """Coordinator thread's exit hook (success, abort, or error)."""
        _MIGRATION_ACTIVE.set(0)
        with self._migration_lock:
            if coordinator.result is not None:
                self._last_migration = coordinator.result

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("router is not running")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def start(self) -> None:
        if self._httpd is not None:
            return
        self._httpd = ThreadingHTTPServer(
            (self._host, self._port), self._make_handler()
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="qos-cluster-router", daemon=True
        )
        self._thread.start()
        if self._resume_state is not None:
            state, self._resume_state = self._resume_state, None
            self.start_migration(
                PlacementTable.from_dict(state["target"]),
                mid=state.get("mid"),
                batch_entities=int(state.get("batch_entities", 64)),
                state=state,
            )

    def stop(self) -> None:
        """Graceful stop: abort any running migration (its journal stays
        on disk, so a restarted router resumes it) and shut down."""
        with self._migration_lock:
            coordinator = self._migration
        if coordinator is not None:
            coordinator.abort()
            if threading.current_thread() is not coordinator._thread:
                coordinator.join(timeout=5.0)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            clients = list(self._clients.values())
        for client in clients:
            client.close()

    def kill(self) -> None:
        """Crash simulation for the chaos drill: abort the coordinator
        mid-action and drop the HTTP front end without any graceful
        persistence — identical to SIGKILL as far as the journal is
        concerned (whatever was last atomically persisted is what a
        successor router sees)."""
        self.stop()

    def __enter__(self) -> "ClusterRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- shard call boundary --------------------------------------------------
    @staticmethod
    def _call(shard, fn):
        """Run one shard request, converting transport-level failures
        (no HTTP status: refused / reset / timed out) into
        :class:`_ShardUnavailable`.  Shard *answers* — including fenced
        409s that the shard client could not redirect away — pass
        through unchanged so the caller sees exactly what a direct
        client would."""
        try:
            return fn()
        except PredictionServiceError as exc:
            if getattr(exc, "status", None) is None:
                _ROUTER_SHARD_ERRORS.labels(shard=shard.name).inc()
                raise _ShardUnavailable(shard.name, exc) from exc
            raise

    # -- data plane -----------------------------------------------------------
    def _handle_observation(self, payload: dict) -> dict:
        user_id = payload.get("user_id")
        if not isinstance(user_id, int) or user_id < 0:
            raise _BadRequest("field 'user_id' must be a non-negative integer")
        shard, client = self._route("user", user_id, write=True)
        body = self._call(
            shard,
            lambda: client._request("POST", "/observations", payload, write=True),
        )
        body["shard"] = shard.name
        return body

    def _handle_observation_batch(self, payload: dict) -> dict:
        observations = payload.get("observations")
        if not isinstance(observations, list):
            raise _BadRequest("field 'observations' must be a list")
        # Split by owner, preserving each record's original index so the
        # merged reply reads exactly like a single shard's.
        groups: dict[str, tuple[object, list[tuple[int, dict]]]] = {}
        bad: list[dict] = []
        for index, record in enumerate(observations):
            user_id = record.get("user_id") if isinstance(record, dict) else None
            if not isinstance(user_id, int) or user_id < 0:
                bad.append(
                    {
                        "index": index,
                        "error": "record must carry a non-negative user_id",
                    }
                )
                continue
            try:
                shard, _ = self._route("user", user_id, write=True)
            except _EntityMigrating as exc:
                bad.append(
                    {
                        "index": index,
                        "error": str(exc),
                        "code": "entity_migrating",
                        "retry_after": exc.retry_after,
                    }
                )
                continue
            groups.setdefault(shard.name, (shard, []))[1].append((index, record))
        accepted = 0
        rejected = list(bad)
        # Per-record order is preserved within a shard; across shards the
        # errors are grouped by (sorted) shard name — a shard also omits
        # entries for deduplicated/quarantined records, so a global
        # index-aligned list is not reconstructible here.
        sample_errors: list[float] = []
        shards_used = []
        for name, (shard, members) in sorted(groups.items()):
            client = self.shard_client(name)
            sub = [record for _, record in members]
            try:
                body = self._call(
                    shard,
                    lambda c=client, s=sub: c._request(
                        "POST", "/observations/batch", {"observations": s},
                        write=True,
                    ),
                )
            except _ShardUnavailable as exc:
                rejected.extend(
                    {
                        "index": index,
                        "error": str(exc),
                        "code": "shard_unavailable",
                        "shard": name,
                    }
                    for index, _ in members
                )
                continue
            shards_used.append(name)
            accepted += int(body.get("accepted", 0))
            for item in body.get("rejected", []):
                rejected.append(
                    {**item, "index": members[item["index"]][0], "shard": name}
                )
            errors = body.get("sample_errors")
            if isinstance(errors, list):
                sample_errors.extend(errors)
        rejected.sort(key=lambda item: item["index"])
        return {
            "accepted": accepted,
            "rejected": rejected,
            "sample_errors": sample_errors,
            "shards": shards_used,
            "placement_version": self.placement.version,
        }

    def _handle_prediction(self, query: dict) -> dict:
        try:
            user_id = int(query["user_id"][0])
            service_id = int(query["service_id"][0])
        except (KeyError, ValueError, IndexError) as exc:
            raise _BadRequest(
                "query must include integer user_id and service_id"
            ) from exc
        shard, client = self._route("user", user_id)
        body = self._call(
            shard, lambda: client.predict_detailed(user_id, service_id)
        )
        body["shard"] = shard.name
        return body

    def _credence_for(self, service_ids: list[int]) -> tuple[dict, list[str]]:
        """Authoritative credence per service from its home shard.

        Returns ``(credence, unreachable_shards)`` — a dead home shard
        degrades the rank response (those services miss their credence)
        instead of failing it; the prediction itself came from the live
        user shard.
        """
        homes: dict[str, tuple[object, list[int]]] = {}
        for service_id in service_ids:
            shard, _ = self._route("service", service_id)
            homes.setdefault(shard.name, (shard, []))[1].append(service_id)
        credence: dict[str, float] = {}
        unreachable: list[str] = []
        for name, (shard, ids) in sorted(homes.items()):
            client = self.shard_client(name)
            try:
                values = self._call(shard, lambda c=client, i=ids: c.credence(i))
            except _ShardUnavailable:
                unreachable.append(name)
                continue
            credence.update({str(sid): value for sid, value in values.items()})
        return credence, unreachable

    def _handle_prediction_batch(self, payload: dict) -> dict:
        user_id = payload.get("user_id")
        if not isinstance(user_id, int) or user_id < 0:
            raise _BadRequest("field 'user_id' must be a non-negative integer")
        raw_ids = payload.get("service_ids")
        if not isinstance(raw_ids, list) or not raw_ids:
            raise _BadRequest("field 'service_ids' must be a non-empty list")
        try:
            service_ids = [int(raw) for raw in raw_ids]
        except (TypeError, ValueError) as exc:
            raise _BadRequest("service_ids must be integers") from exc
        shard, client = self._route("user", user_id)
        body = self._call(
            shard,
            lambda: client._request(
                "POST",
                "/predictions/batch",
                {"user_id": user_id, "service_ids": service_ids},
                idempotent=True,
            ),
        )
        credence, unreachable = self._credence_for(
            list(dict.fromkeys(service_ids))
        )
        body["shard"] = shard.name
        body["credence"] = credence
        if unreachable:
            body["credence_partial"] = unreachable
        body["placement_version"] = self.placement.version
        return body

    def _handle_rank(self, payload: dict) -> dict:
        """Merged ranked candidates: predictions from the user's shard,
        credence from each service's home shard, ranked here."""
        body = self._handle_prediction_batch(payload)
        prefer = payload.get("prefer", "min")
        if prefer not in ("min", "max"):
            raise _BadRequest("field 'prefer' must be 'min' or 'max'")
        k = payload.get("k")
        if k is not None and (not isinstance(k, int) or k < 1):
            raise _BadRequest("field 'k' must be a positive integer")
        entries = [
            {
                "service_id": int(service_id),
                "prediction": value,
                "source": body.get("sources", {}).get(service_id),
                "credence": body["credence"].get(service_id),
            }
            for service_id, value in body["predictions"].items()
        ]
        entries.sort(
            key=lambda e: (e["prediction"], e["service_id"]),
            reverse=(prefer == "max"),
        )
        if k is not None:
            entries = entries[:k]
        return {
            "user_id": body["user_id"],
            "ranked": entries,
            "shard": body["shard"],
            "credence_partial": body.get("credence_partial", []),
            "placement_version": body["placement_version"],
        }

    def _handle_credence(self, query: dict) -> dict:
        try:
            raw = query["service_ids"][0]
            service_ids = [int(part) for part in raw.split(",") if part != ""]
        except (KeyError, IndexError, ValueError) as exc:
            raise _BadRequest(
                "query must include service_ids as comma-separated integers"
            ) from exc
        if not service_ids:
            raise _BadRequest("service_ids must be non-empty")
        credence, unreachable = self._credence_for(
            list(dict.fromkeys(service_ids))
        )
        body = {"credence": credence, "placement_version": self.placement.version}
        if unreachable:
            body["credence_partial"] = unreachable
        return body

    # -- fleet views ----------------------------------------------------------
    def _fanout(self, fn) -> dict:
        """Run ``fn(shard, client)`` against every shard; unreachable
        shards are reported, not raised."""
        with self._lock:
            pairs = [
                (shard, self._clients[shard.name])
                for shard in self._placement.shards
            ]
        results: dict[str, object] = {}
        for shard, client in pairs:
            try:
                results[shard.name] = self._call(
                    shard, lambda s=shard, c=client: fn(s, c)
                )
            except _ShardUnavailable as exc:
                results[shard.name] = exc
            except PredictionServiceError as exc:
                results[shard.name] = exc
        return results

    def _handle_health(self) -> tuple[int, dict]:
        results = self._fanout(
            lambda shard, client: client.health()
        )
        shards = {}
        ready = 0
        for name, result in sorted(results.items()):
            if isinstance(result, Exception):
                shards[name] = {"status": "unreachable", "error": str(result)}
            else:
                shards[name] = result
                if result.get("status") == "ok":
                    ready += 1
        total = len(shards)
        if ready == total:
            status, code = "ok", 200
        elif ready > 0:
            status, code = "degraded", 200
        else:
            status, code = "unavailable", 503
        return code, {
            "status": status,
            "shards_ready": ready,
            "shards_total": total,
            "placement_version": self.placement.version,
            "shards": shards,
        }

    def _handle_status(self) -> dict:
        results = self._fanout(lambda shard, client: client.status())
        shards = {}
        for name, result in sorted(results.items()):
            if isinstance(result, Exception):
                shards[name] = {"reachable": False, "error": str(result)}
            else:
                result["reachable"] = True
                shards[name] = result
        return {
            "placement": self.placement.to_dict(),
            "shards": shards,
        }

    def _handle_metrics(self) -> str:
        """One fleet-wide Prometheus exposition.

        Every shard's exposition is strictly parsed and re-rendered with
        a ``shard`` label injected into each sample, so per-shard series
        stay distinguishable while the family set (TYPE declarations)
        merges cleanly.  The router's own families ride along unlabeled.
        """
        results = self._fanout(lambda shard, client: client.metrics())
        families: dict[str, dict] = {}
        for name in sorted(results):
            result = results[name]
            if isinstance(result, Exception):
                continue  # dead shard: its series go stale, scrape survives
            for family_name, family in parse_prometheus_text(result).items():
                merged = families.setdefault(
                    family_name, {"type": family["type"], "samples": {}}
                )
                for (sample_name, labels), value in family["samples"].items():
                    labeled = tuple(sorted(labels + (("shard", name),)))
                    merged["samples"][(sample_name, labeled)] = value
        lines = []
        for family_name in sorted(families):
            family = families[family_name]
            lines.append(f"# TYPE {family_name} {family['type']}")
            for (sample_name, labels), value in sorted(
                family["samples"].items()
            ):
                if labels:
                    rendered = ",".join(
                        f'{label}="{text}"' for label, text in labels
                    )
                    lines.append(f"{sample_name}{{{rendered}}} {value}")
                else:
                    lines.append(f"{sample_name} {value}")
        return "\n".join(lines) + "\n"

    # -- HTTP plumbing --------------------------------------------------------
    def _make_handler(self):
        router = self

        class Handler(BaseHTTPRequestHandler):
            # Socket timeout for slow callers, derived from the router's
            # configured shard deadlines instead of a hardcoded constant
            # so drain-path reads honor the operator's budget.
            timeout = router.handler_timeout

            def log_message(self, format, *args):  # noqa: A002 (stdlib API)
                pass

            def _send(
                self, status, body, content_type="application/json", headers=None
            ):
                data = (
                    body.encode("utf-8")
                    if isinstance(body, str)
                    else json.dumps(body).encode()
                )
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                if headers:
                    for name, value in headers.items():
                        self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)

            def _read_json(self) -> dict:
                try:
                    length = int(self.headers.get("Content-Length", 0))
                except ValueError as exc:
                    raise _BadRequest("invalid Content-Length header") from exc
                if length > router.max_body_bytes:
                    raise _BadRequest(
                        f"body of {length} bytes exceeds limit of "
                        f"{router.max_body_bytes}"
                    )
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise _BadRequest(f"invalid JSON body: {exc}") from exc
                if not isinstance(payload, dict):
                    raise _BadRequest("JSON body must be an object")
                return payload

            def _dispatch(self, route_name, route):
                _ROUTER_REQUESTS.labels(route=route_name).inc()
                try:
                    try:
                        status, body = route()
                        self._send(status, body)
                    except _BadRequest as exc:
                        self._send(400, {"error": str(exc)})
                    except _EntityMigrating as exc:
                        # The entity is inside a migration commit window;
                        # this clears in a handful of shard calls, so the
                        # structured 503 invites an immediate short retry.
                        self._send(
                            503,
                            {
                                "error": str(exc),
                                "code": "entity_migrating",
                                "entity": [exc.kind, exc.ext_id],
                                "retry_after": exc.retry_after,
                            },
                            headers={"Retry-After": "1"},
                        )
                    except _ShardUnavailable as exc:
                        # A structured answer, not a transport failure:
                        # the router is healthy, one shard is not.  The
                        # Retry-After invites the caller back after the
                        # shard's supervisor has had a chance to act.
                        self._send(
                            503,
                            {
                                "error": str(exc),
                                "code": "shard_unavailable",
                                "shard": exc.shard,
                                "retry_after": 1.0,
                            },
                        )
                    except PredictionServiceError as exc:
                        # A shard *answered* with an error the shard
                        # client could not absorb (fenced 409 on a
                        # single-endpoint shard, 4xx validation, shed
                        # 429/503...): pass it through verbatim.
                        status = getattr(exc, "status", None) or 502
                        body = getattr(exc, "body", None)
                        if not isinstance(body, dict):
                            body = {"error": str(exc)}
                        self._send(status, body)
                    except Exception as exc:  # noqa: BLE001 — error boundary
                        self._send(
                            500,
                            {
                                "error": "internal error: "
                                f"{type(exc).__name__}: {exc}"
                            },
                        )
                except OSError:
                    pass  # client hung up; nothing left to tell it

            def do_GET(self):
                parsed = urlparse(self.path)
                if parsed.path == "/metrics":
                    _ROUTER_REQUESTS.labels(route="metrics").inc()
                    try:
                        try:
                            text = router._handle_metrics()
                        except Exception as exc:  # noqa: BLE001
                            self._send(
                                500,
                                {
                                    "error": "internal error: "
                                    f"{type(exc).__name__}: {exc}"
                                },
                            )
                            return
                        self._send(
                            200,
                            text,
                            content_type=(
                                "text/plain; version=0.0.4; charset=utf-8"
                            ),
                        )
                    except OSError:
                        pass
                    return

                def route():
                    if parsed.path == "/cluster/placement":
                        return 200, router.placement.to_dict()
                    if parsed.path == "/migration/status":
                        return 200, router.migration_status()
                    if parsed.path == "/predictions":
                        return 200, router._handle_prediction(
                            parse_qs(parsed.query)
                        )
                    if parsed.path == "/credence":
                        return 200, router._handle_credence(
                            parse_qs(parsed.query)
                        )
                    if parsed.path == "/health":
                        return router._handle_health()
                    if parsed.path == "/status":
                        return 200, router._handle_status()
                    return 404, {"error": f"unknown path {parsed.path}"}

                self._dispatch(parsed.path.lstrip("/"), route)

            def do_POST(self):
                parsed = urlparse(self.path)

                def route():
                    payload = self._read_json()
                    if parsed.path == "/observations":
                        return 200, router._handle_observation(payload)
                    if parsed.path == "/observations/batch":
                        return 200, router._handle_observation_batch(payload)
                    if parsed.path == "/predictions/batch":
                        return 200, router._handle_prediction_batch(payload)
                    if parsed.path == "/rank/candidates":
                        return 200, router._handle_rank(payload)
                    if parsed.path == "/cluster/placement":
                        try:
                            table = PlacementTable.from_dict(payload)
                        except ValueError as exc:
                            raise _BadRequest(str(exc)) from exc
                        active = router.migration
                        if active is not None and active.active:
                            # A bare table swap would race the
                            # coordinator's overrides — rebalance through
                            # /migration/start while one is running.
                            return 409, {
                                "error": "a live migration is active; "
                                "placement changes must go through it",
                                "code": "migration_active",
                                "mid": active.mid,
                            }
                        try:
                            router.update_placement(table)
                        except _BadRequest as exc:
                            return 409, {
                                "error": str(exc),
                                "code": "stale_placement",
                                "version": router.placement.version,
                            }
                        return 200, router.placement.to_dict()
                    if parsed.path == "/migration/start":
                        raw_target = payload.get("target")
                        if not isinstance(raw_target, dict):
                            raise _BadRequest(
                                "field 'target' must be a placement table object"
                            )
                        try:
                            table = PlacementTable.from_dict(raw_target)
                        except ValueError as exc:
                            raise _BadRequest(str(exc)) from exc
                        batch_entities = payload.get("batch_entities", 64)
                        if not isinstance(batch_entities, int) or batch_entities < 1:
                            raise _BadRequest(
                                "field 'batch_entities' must be a positive integer"
                            )
                        try:
                            coordinator = router.start_migration(
                                table, batch_entities=batch_entities
                            )
                        except MigrationConflict as exc:
                            return 409, {
                                "error": str(exc),
                                "code": exc.code,
                                "version": router.placement.version,
                            }
                        return 200, {
                            "mid": coordinator.mid,
                            "target_version": table.version,
                        }
                    return 404, {"error": f"unknown path {parsed.path}"}

                self._dispatch(parsed.path.lstrip("/"), route)

        return Handler
