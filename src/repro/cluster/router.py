"""The cluster router: one HTTP front door for a sharded fleet.

Data plane: observations and predictions are routed to the owning shard
(rendezvous placement over the version-stamped :class:`PlacementTable`)
through ordinary :class:`~repro.server.client.PredictionClient` instances
— one per shard, carrying the shard's full replica set, so fenced 409
replies from a shard's standby redirect *inside* the shard client exactly
as they do for a direct caller, without tripping any breaker.

Control plane: ``GET /cluster/placement`` serves the current table so
clients can learn ownership and talk to shards directly; ``POST`` with a
strictly greater version installs a new table (drain, add, remove),
atomically swapping the routing state.

Fleet views: ``/metrics`` scrapes every shard and re-renders one
exposition with a ``shard`` label on every sample; ``/health`` rolls the
per-shard reports into ok / degraded / unavailable.

Error containment: a shard that cannot be reached surfaces as a
structured ``503 {"code": "shard_unavailable", "shard": ...}`` — a
*response*, not a transport failure, so callers' circuit breakers never
indict the router for a dead shard (the blast radius stays on the keys
the dead shard owns).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.cluster.placement import PlacementTable
from repro.observability import get_registry, parse_prometheus_text
from repro.server.client import (
    PredictionClient,
    PredictionServiceError,
)

_METRICS = get_registry()
_ROUTER_REQUESTS = _METRICS.counter(
    "qos_router_requests_total",
    "requests handled by the cluster router",
    labelnames=("route",),
)
_ROUTER_SHARD_ERRORS = _METRICS.counter(
    "qos_router_shard_errors_total",
    "shard requests that failed at the transport level",
    labelnames=("shard",),
)
_PLACEMENT_VERSION = _METRICS.gauge(
    "qos_cluster_placement_version", "current placement table version"
)


class _BadRequest(ValueError):
    pass


class _ShardUnavailable(RuntimeError):
    def __init__(self, shard: str, cause: Exception) -> None:
        super().__init__(f"shard {shard!r} unavailable: {cause}")
        self.shard = shard


class ClusterRouter:
    """Routes a fleet of prediction-server shards behind one address.

    Args:
        placement:    initial :class:`PlacementTable`.
        host, port:   bind address (port 0 picks an ephemeral port).
        timeout:      per-attempt timeout of each shard client.
        shard_retries: idempotent-retry budget of each shard client
                      (writes are never retried without a key, same
                      contract as a direct client).
        client_kwargs: extra :class:`PredictionClient` keyword arguments
                      applied to every shard client (breaker tuning,
                      transport selection, ...).
    """

    def __init__(
        self,
        placement: PlacementTable,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 5.0,
        shard_retries: int = 0,
        max_body_bytes: int = 1 << 20,
        client_kwargs: "dict | None" = None,
    ) -> None:
        self._host = host
        self._port = port
        self.timeout = timeout
        self.shard_retries = shard_retries
        self.max_body_bytes = max_body_bytes
        self._client_kwargs = dict(client_kwargs or {})
        self._client_kwargs.setdefault("transport", "json")
        self._lock = threading.Lock()  # placement + client-map swaps
        self._clients: dict[str, PredictionClient] = {}
        self._placement: "PlacementTable | None" = None
        self._install(placement)
        self._httpd = None
        self._thread = None

    # -- placement ------------------------------------------------------------
    @property
    def placement(self) -> PlacementTable:
        with self._lock:
            return self._placement

    def _install(self, table: PlacementTable) -> None:
        clients = {}
        with self._lock:
            old_clients = dict(self._clients)
            for shard in table.shards:
                if not shard.addresses:
                    raise ValueError(
                        f"shard {shard.name!r} has no addresses to route to"
                    )
                existing = old_clients.get(shard.name)
                if (
                    existing is not None
                    and tuple(existing.endpoints)
                    == tuple(
                        f"http://{h}:{p}" for h, p in shard.addresses
                    )
                ):
                    # Same endpoints: keep the client and its learned
                    # primary/breaker state across the version bump.
                    clients[shard.name] = existing
                else:
                    clients[shard.name] = PredictionClient(
                        list(shard.addresses),
                        timeout=self.timeout,
                        retries=self.shard_retries,
                        **self._client_kwargs,
                    )
            dropped = set(old_clients) - set(clients)
            self._placement = table
            self._clients = clients
            _PLACEMENT_VERSION.set(table.version)
        for name in dropped:
            old_clients[name].close()

    def update_placement(self, table: PlacementTable) -> None:
        """Install a new table; the version must strictly increase."""
        if table.version <= self._placement.version:
            raise _BadRequest(
                f"placement version {table.version} is not newer than "
                f"{self._placement.version}"
            )
        self._install(table)

    def _route(self, kind: str, ext_id: int):
        with self._lock:
            shard = self._placement.owner_of(kind, ext_id)
            return shard, self._clients[shard.name]

    def shard_client(self, name: str) -> PredictionClient:
        """The router's client for one shard (drain reads, tests)."""
        with self._lock:
            return self._clients[name]

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("router is not running")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def start(self) -> None:
        if self._httpd is not None:
            return
        self._httpd = ThreadingHTTPServer(
            (self._host, self._port), self._make_handler()
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="qos-cluster-router", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            clients = list(self._clients.values())
        for client in clients:
            client.close()

    def __enter__(self) -> "ClusterRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- shard call boundary --------------------------------------------------
    @staticmethod
    def _call(shard, fn):
        """Run one shard request, converting transport-level failures
        (no HTTP status: refused / reset / timed out) into
        :class:`_ShardUnavailable`.  Shard *answers* — including fenced
        409s that the shard client could not redirect away — pass
        through unchanged so the caller sees exactly what a direct
        client would."""
        try:
            return fn()
        except PredictionServiceError as exc:
            if getattr(exc, "status", None) is None:
                _ROUTER_SHARD_ERRORS.labels(shard=shard.name).inc()
                raise _ShardUnavailable(shard.name, exc) from exc
            raise

    # -- data plane -----------------------------------------------------------
    def _handle_observation(self, payload: dict) -> dict:
        user_id = payload.get("user_id")
        if not isinstance(user_id, int) or user_id < 0:
            raise _BadRequest("field 'user_id' must be a non-negative integer")
        shard, client = self._route("user", user_id)
        body = self._call(
            shard,
            lambda: client._request("POST", "/observations", payload, write=True),
        )
        body["shard"] = shard.name
        return body

    def _handle_observation_batch(self, payload: dict) -> dict:
        observations = payload.get("observations")
        if not isinstance(observations, list):
            raise _BadRequest("field 'observations' must be a list")
        # Split by owner, preserving each record's original index so the
        # merged reply reads exactly like a single shard's.
        groups: dict[str, list[tuple[int, dict]]] = {}
        bad: list[tuple[int, str]] = []
        for index, record in enumerate(observations):
            user_id = record.get("user_id") if isinstance(record, dict) else None
            if not isinstance(user_id, int) or user_id < 0:
                bad.append((index, "record must carry a non-negative user_id"))
                continue
            shard, _ = self._route("user", user_id)
            groups.setdefault(shard.name, []).append((index, record))
        accepted = 0
        rejected = [{"index": i, "error": err} for i, err in bad]
        # Per-record order is preserved within a shard; across shards the
        # errors are grouped by (sorted) shard name — a shard also omits
        # entries for deduplicated/quarantined records, so a global
        # index-aligned list is not reconstructible here.
        sample_errors: list[float] = []
        shards_used = []
        for name, members in sorted(groups.items()):
            shard, client = self._placement.shard(name), self._clients[name]
            sub = [record for _, record in members]
            try:
                body = self._call(
                    shard,
                    lambda c=client, s=sub: c._request(
                        "POST", "/observations/batch", {"observations": s},
                        write=True,
                    ),
                )
            except _ShardUnavailable as exc:
                rejected.extend(
                    {
                        "index": index,
                        "error": str(exc),
                        "code": "shard_unavailable",
                        "shard": name,
                    }
                    for index, _ in members
                )
                continue
            shards_used.append(name)
            accepted += int(body.get("accepted", 0))
            for item in body.get("rejected", []):
                rejected.append(
                    {**item, "index": members[item["index"]][0], "shard": name}
                )
            errors = body.get("sample_errors")
            if isinstance(errors, list):
                sample_errors.extend(errors)
        rejected.sort(key=lambda item: item["index"])
        return {
            "accepted": accepted,
            "rejected": rejected,
            "sample_errors": sample_errors,
            "shards": shards_used,
            "placement_version": self.placement.version,
        }

    def _handle_prediction(self, query: dict) -> dict:
        try:
            user_id = int(query["user_id"][0])
            service_id = int(query["service_id"][0])
        except (KeyError, ValueError, IndexError) as exc:
            raise _BadRequest(
                "query must include integer user_id and service_id"
            ) from exc
        shard, client = self._route("user", user_id)
        body = self._call(
            shard, lambda: client.predict_detailed(user_id, service_id)
        )
        body["shard"] = shard.name
        return body

    def _credence_for(self, service_ids: list[int]) -> tuple[dict, list[str]]:
        """Authoritative credence per service from its home shard.

        Returns ``(credence, unreachable_shards)`` — a dead home shard
        degrades the rank response (those services miss their credence)
        instead of failing it; the prediction itself came from the live
        user shard.
        """
        homes: dict[str, list[int]] = {}
        for service_id in service_ids:
            shard, _ = self._route("service", service_id)
            homes.setdefault(shard.name, []).append(service_id)
        credence: dict[str, float] = {}
        unreachable: list[str] = []
        for name, ids in sorted(homes.items()):
            shard, client = self._placement.shard(name), self._clients[name]
            try:
                values = self._call(shard, lambda c=client, i=ids: c.credence(i))
            except _ShardUnavailable:
                unreachable.append(name)
                continue
            credence.update({str(sid): value for sid, value in values.items()})
        return credence, unreachable

    def _handle_prediction_batch(self, payload: dict) -> dict:
        user_id = payload.get("user_id")
        if not isinstance(user_id, int) or user_id < 0:
            raise _BadRequest("field 'user_id' must be a non-negative integer")
        raw_ids = payload.get("service_ids")
        if not isinstance(raw_ids, list) or not raw_ids:
            raise _BadRequest("field 'service_ids' must be a non-empty list")
        try:
            service_ids = [int(raw) for raw in raw_ids]
        except (TypeError, ValueError) as exc:
            raise _BadRequest("service_ids must be integers") from exc
        shard, client = self._route("user", user_id)
        body = self._call(
            shard,
            lambda: client._request(
                "POST",
                "/predictions/batch",
                {"user_id": user_id, "service_ids": service_ids},
                idempotent=True,
            ),
        )
        credence, unreachable = self._credence_for(
            list(dict.fromkeys(service_ids))
        )
        body["shard"] = shard.name
        body["credence"] = credence
        if unreachable:
            body["credence_partial"] = unreachable
        body["placement_version"] = self.placement.version
        return body

    def _handle_rank(self, payload: dict) -> dict:
        """Merged ranked candidates: predictions from the user's shard,
        credence from each service's home shard, ranked here."""
        body = self._handle_prediction_batch(payload)
        prefer = payload.get("prefer", "min")
        if prefer not in ("min", "max"):
            raise _BadRequest("field 'prefer' must be 'min' or 'max'")
        k = payload.get("k")
        if k is not None and (not isinstance(k, int) or k < 1):
            raise _BadRequest("field 'k' must be a positive integer")
        entries = [
            {
                "service_id": int(service_id),
                "prediction": value,
                "source": body.get("sources", {}).get(service_id),
                "credence": body["credence"].get(service_id),
            }
            for service_id, value in body["predictions"].items()
        ]
        entries.sort(
            key=lambda e: (e["prediction"], e["service_id"]),
            reverse=(prefer == "max"),
        )
        if k is not None:
            entries = entries[:k]
        return {
            "user_id": body["user_id"],
            "ranked": entries,
            "shard": body["shard"],
            "credence_partial": body.get("credence_partial", []),
            "placement_version": body["placement_version"],
        }

    def _handle_credence(self, query: dict) -> dict:
        try:
            raw = query["service_ids"][0]
            service_ids = [int(part) for part in raw.split(",") if part != ""]
        except (KeyError, IndexError, ValueError) as exc:
            raise _BadRequest(
                "query must include service_ids as comma-separated integers"
            ) from exc
        if not service_ids:
            raise _BadRequest("service_ids must be non-empty")
        credence, unreachable = self._credence_for(
            list(dict.fromkeys(service_ids))
        )
        body = {"credence": credence, "placement_version": self.placement.version}
        if unreachable:
            body["credence_partial"] = unreachable
        return body

    # -- fleet views ----------------------------------------------------------
    def _fanout(self, fn) -> dict:
        """Run ``fn(shard, client)`` against every shard; unreachable
        shards are reported, not raised."""
        with self._lock:
            pairs = [
                (shard, self._clients[shard.name])
                for shard in self._placement.shards
            ]
        results: dict[str, object] = {}
        for shard, client in pairs:
            try:
                results[shard.name] = self._call(
                    shard, lambda s=shard, c=client: fn(s, c)
                )
            except _ShardUnavailable as exc:
                results[shard.name] = exc
            except PredictionServiceError as exc:
                results[shard.name] = exc
        return results

    def _handle_health(self) -> tuple[int, dict]:
        results = self._fanout(
            lambda shard, client: client.health()
        )
        shards = {}
        ready = 0
        for name, result in sorted(results.items()):
            if isinstance(result, Exception):
                shards[name] = {"status": "unreachable", "error": str(result)}
            else:
                shards[name] = result
                if result.get("status") == "ok":
                    ready += 1
        total = len(shards)
        if ready == total:
            status, code = "ok", 200
        elif ready > 0:
            status, code = "degraded", 200
        else:
            status, code = "unavailable", 503
        return code, {
            "status": status,
            "shards_ready": ready,
            "shards_total": total,
            "placement_version": self.placement.version,
            "shards": shards,
        }

    def _handle_status(self) -> dict:
        results = self._fanout(lambda shard, client: client.status())
        shards = {}
        for name, result in sorted(results.items()):
            if isinstance(result, Exception):
                shards[name] = {"reachable": False, "error": str(result)}
            else:
                result["reachable"] = True
                shards[name] = result
        return {
            "placement": self.placement.to_dict(),
            "shards": shards,
        }

    def _handle_metrics(self) -> str:
        """One fleet-wide Prometheus exposition.

        Every shard's exposition is strictly parsed and re-rendered with
        a ``shard`` label injected into each sample, so per-shard series
        stay distinguishable while the family set (TYPE declarations)
        merges cleanly.  The router's own families ride along unlabeled.
        """
        results = self._fanout(lambda shard, client: client.metrics())
        families: dict[str, dict] = {}
        for name in sorted(results):
            result = results[name]
            if isinstance(result, Exception):
                continue  # dead shard: its series go stale, scrape survives
            for family_name, family in parse_prometheus_text(result).items():
                merged = families.setdefault(
                    family_name, {"type": family["type"], "samples": {}}
                )
                for (sample_name, labels), value in family["samples"].items():
                    labeled = tuple(sorted(labels + (("shard", name),)))
                    merged["samples"][(sample_name, labeled)] = value
        lines = []
        for family_name in sorted(families):
            family = families[family_name]
            lines.append(f"# TYPE {family_name} {family['type']}")
            for (sample_name, labels), value in sorted(
                family["samples"].items()
            ):
                if labels:
                    rendered = ",".join(
                        f'{label}="{text}"' for label, text in labels
                    )
                    lines.append(f"{sample_name}{{{rendered}}} {value}")
                else:
                    lines.append(f"{sample_name} {value}")
        return "\n".join(lines) + "\n"

    # -- HTTP plumbing --------------------------------------------------------
    def _make_handler(self):
        router = self

        class Handler(BaseHTTPRequestHandler):
            timeout = 30.0

            def log_message(self, format, *args):  # noqa: A002 (stdlib API)
                pass

            def _send(self, status, body, content_type="application/json"):
                data = (
                    body.encode("utf-8")
                    if isinstance(body, str)
                    else json.dumps(body).encode()
                )
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def _read_json(self) -> dict:
                try:
                    length = int(self.headers.get("Content-Length", 0))
                except ValueError as exc:
                    raise _BadRequest("invalid Content-Length header") from exc
                if length > router.max_body_bytes:
                    raise _BadRequest(
                        f"body of {length} bytes exceeds limit of "
                        f"{router.max_body_bytes}"
                    )
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise _BadRequest(f"invalid JSON body: {exc}") from exc
                if not isinstance(payload, dict):
                    raise _BadRequest("JSON body must be an object")
                return payload

            def _dispatch(self, route_name, route):
                _ROUTER_REQUESTS.labels(route=route_name).inc()
                try:
                    try:
                        status, body = route()
                        self._send(status, body)
                    except _BadRequest as exc:
                        self._send(400, {"error": str(exc)})
                    except _ShardUnavailable as exc:
                        # A structured answer, not a transport failure:
                        # the router is healthy, one shard is not.  The
                        # Retry-After invites the caller back after the
                        # shard's supervisor has had a chance to act.
                        self._send(
                            503,
                            {
                                "error": str(exc),
                                "code": "shard_unavailable",
                                "shard": exc.shard,
                                "retry_after": 1.0,
                            },
                        )
                    except PredictionServiceError as exc:
                        # A shard *answered* with an error the shard
                        # client could not absorb (fenced 409 on a
                        # single-endpoint shard, 4xx validation, shed
                        # 429/503...): pass it through verbatim.
                        status = getattr(exc, "status", None) or 502
                        body = getattr(exc, "body", None)
                        if not isinstance(body, dict):
                            body = {"error": str(exc)}
                        self._send(status, body)
                    except Exception as exc:  # noqa: BLE001 — error boundary
                        self._send(
                            500,
                            {
                                "error": "internal error: "
                                f"{type(exc).__name__}: {exc}"
                            },
                        )
                except OSError:
                    pass  # client hung up; nothing left to tell it

            def do_GET(self):
                parsed = urlparse(self.path)
                if parsed.path == "/metrics":
                    _ROUTER_REQUESTS.labels(route="metrics").inc()
                    try:
                        try:
                            text = router._handle_metrics()
                        except Exception as exc:  # noqa: BLE001
                            self._send(
                                500,
                                {
                                    "error": "internal error: "
                                    f"{type(exc).__name__}: {exc}"
                                },
                            )
                            return
                        self._send(
                            200,
                            text,
                            content_type=(
                                "text/plain; version=0.0.4; charset=utf-8"
                            ),
                        )
                    except OSError:
                        pass
                    return

                def route():
                    if parsed.path == "/cluster/placement":
                        return 200, router.placement.to_dict()
                    if parsed.path == "/predictions":
                        return 200, router._handle_prediction(
                            parse_qs(parsed.query)
                        )
                    if parsed.path == "/credence":
                        return 200, router._handle_credence(
                            parse_qs(parsed.query)
                        )
                    if parsed.path == "/health":
                        return router._handle_health()
                    if parsed.path == "/status":
                        return 200, router._handle_status()
                    return 404, {"error": f"unknown path {parsed.path}"}

                self._dispatch(parsed.path.lstrip("/"), route)

            def do_POST(self):
                parsed = urlparse(self.path)

                def route():
                    payload = self._read_json()
                    if parsed.path == "/observations":
                        return 200, router._handle_observation(payload)
                    if parsed.path == "/observations/batch":
                        return 200, router._handle_observation_batch(payload)
                    if parsed.path == "/predictions/batch":
                        return 200, router._handle_prediction_batch(payload)
                    if parsed.path == "/rank/candidates":
                        return 200, router._handle_rank(payload)
                    if parsed.path == "/cluster/placement":
                        try:
                            table = PlacementTable.from_dict(payload)
                        except ValueError as exc:
                            raise _BadRequest(str(exc)) from exc
                        try:
                            router.update_placement(table)
                        except _BadRequest as exc:
                            return 409, {
                                "error": str(exc),
                                "code": "stale_placement",
                                "version": router.placement.version,
                            }
                        return 200, router.placement.to_dict()
                    return 404, {"error": f"unknown path {parsed.path}"}

                self._dispatch(parsed.path.lstrip("/"), route)

        return Handler
