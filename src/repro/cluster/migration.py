"""Crash-safe live entity migration between shards.

Rebalancing a stateful fleet means *state* must follow ownership: when a
placement change re-homes a user, its factor row, EMA error, retained
samples, and sanitizer-gate statistics have to arrive on the new owner
byte-for-byte, and disappear from the old one — with any process (source
shard, destination shard, or the router itself) allowed to die at any
point.  The :class:`MigrationCoordinator` drives that as a resumable,
idempotent pipeline over the shard migration endpoints
(:mod:`repro.server.app`):

1. **Plan.**  Every current shard reports its resident entities and the
   user↔service sample edges (``GET /migration/entities``).  Users move
   to their target-table owner; a service row follows its users (rows
   live with the users that observed them, not with the service's
   credence home) when *all* of its local users are leaving — to the
   destination holding the plurality of them.  Entities that share
   sample edges and a destination are packed into the same batch, so no
   shared sample is ever split across batches (pass two of
   ``TieredAMF.import_entities`` would drop it).
2. **Per batch: block → export → import → delete → commit.**  The router
   write-blocks the batch, the source exports canonical spill-format
   payloads (read-only — the source keeps serving reads), the
   coordinator durably records the batch sequence *before* sending
   ``POST /migration/import`` (a crashed-and-resumed coordinator can
   never reuse a sequence), the destination probe
   (``POST /migration/probe``) skips payload-identical re-imports so a
   resumed run leaves the destination's WAL and counters exactly as an
   uninterrupted run would, and only after the import is durable does
   the source delete its copies.  Reads are refused (structured 503
   ``entity_migrating`` + ``Retry-After``) only inside the brief
   delete-to-reroute commit window; then a routing override points the
   batch at the destination and is persisted.
3. **Freeze and converge.**  After the main sweep, writes whose
   ownership differs between the current and target tables are frozen
   and discovery sweeps run until a sweep moves nothing (entities
   created by traffic racing the main sweep are caught here).  The
   target table is installed (persisted atomically), overrides and the
   freeze drop away, and the migration journal is deleted.

Every shard call retries with capped backoff until it succeeds or the
coordinator is aborted, so a killed shard just stalls the migration
until it is restarted.  All coordinator state needed to resume —
migration id, target table, next batch sequence, committed overrides —
is persisted by the router via atomic temp-rename *before* the action it
protects, which is what makes SIGKILL at any phase recoverable.

Known narrow race (documented, healed by design): a write that passed
routing before its batch was blocked and lands on the source after the
delete re-creates the entity fresh on the source; the next discovery
sweep migrates it again, converging to a consistent (if
freshly-re-learned) state rather than leaving a split owner.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time

from repro.cluster.placement import PlacementTable
from repro.server.client import PredictionServiceError

# Phases reported to ``on_phase`` (the chaos drill's kill-injection hook),
# in the order a batch passes through them.
PHASES = ("plan", "export", "transfer", "commit", "pre-commit", "done")


class MigrationAborted(RuntimeError):
    """The coordinator was told to stop (router kill / operator abort)."""


def entity_fingerprint(payload: dict) -> str:
    """Content address of one canonical spill-format payload.

    Must match what ``POST /migration/probe`` computes on a shard: the
    blake2b digest of the canonically serialized payload.  Equal
    fingerprints on source and destination mean the import already
    happened — the resume path's no-op detector.
    """
    return hashlib.blake2b(
        json.dumps(payload, sort_keys=True).encode(), digest_size=16
    ).hexdigest()


def plan_moves(
    inventory: dict, current: PlacementTable, target: PlacementTable
) -> dict:
    """Compute which entities leave each shard, grouped into atomic units.

    ``inventory`` maps shard name to its ``GET /migration/entities`` body.
    Returns ``{(source, dest): [unit, ...]}`` where each unit is a list of
    ``(kind, ext_id)`` tuples that must travel in one batch (they share
    sample edges and a destination).  Deterministic for a given inventory
    and table pair.
    """
    moves: dict = {}
    for source in sorted(inventory):
        inv = inventory[source]
        users = [int(u) for u in inv.get("users", ())]
        services = [int(s) for s in inv.get("services", ())]
        edges = [(int(u), int(s)) for u, s in inv.get("edges", ())]
        in_target = (
            source in target.names and not target.shard(source).draining
        )

        user_dest = {}
        for user_id in users:
            owner = target.owner_of("user", user_id).name
            if owner != source:
                user_dest[user_id] = owner

        connected: dict = {}
        for user_id, service_id in edges:
            connected.setdefault(service_id, set()).add(user_id)

        service_dest = {}
        local_users = set(users)
        for service_id in services:
            cu = sorted(connected.get(service_id, ()) & local_users)
            moving_cu = [u for u in cu if u in user_dest]
            if in_target and (not cu or len(moving_cu) < len(cu)):
                # The source stays active and a local user still needs
                # this row (or nobody moving does): the row stays put.
                continue
            votes: dict = {}
            for user_id in moving_cu:
                dest = user_dest[user_id]
                votes[dest] = votes.get(dest, 0) + 1
            if votes:
                dest = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]
            elif not in_target:
                # Isolated row on a departing shard: its credence home.
                dest = target.owner_of("service", service_id).name
            else:
                continue
            if dest != source:
                service_dest[service_id] = dest

        # Union-find over moving entities; edges unite only same-dest
        # endpoints, so every component is destination-homogeneous.
        nodes = [("user", u) for u in sorted(user_dest)]
        nodes += [("service", s) for s in sorted(service_dest)]
        parent = {node: node for node in nodes}

        def find(node):
            while parent[node] is not node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for user_id, service_id in edges:
            u_key, s_key = ("user", user_id), ("service", service_id)
            if (
                u_key in parent
                and s_key in parent
                and user_dest[user_id] == service_dest[service_id]
            ):
                root_u, root_s = find(u_key), find(s_key)
                if root_u is not root_s:
                    parent[root_s] = root_u

        components: dict = {}
        for node in nodes:
            components.setdefault(find(node), []).append(node)
        dest_of = {"user": user_dest, "service": service_dest}
        for members in components.values():
            members.sort()
            kind, ext_id = members[0]
            dest = dest_of[kind][ext_id]
            moves.setdefault((source, dest), []).append(members)

    for units in moves.values():
        units.sort()
    return moves


def pack_batches(units: list, batch_entities: int) -> list:
    """Pack atomic units into batches of at most ``batch_entities``
    entities without ever splitting a unit (an oversized unit becomes
    its own oversized batch)."""
    batches: list = []
    current: list = []
    for unit in units:
        if current and len(current) + len(unit) > batch_entities:
            batches.append(current)
            current = []
        current.extend(unit)
    if current:
        batches.append(current)
    return batches


class MigrationCoordinator:
    """Drives one live migration to ``target`` on behalf of a router.

    Created (and resumed) by :meth:`ClusterRouter.start_migration`; runs
    in a daemon thread.  ``on_phase`` is called synchronously with a
    progress dict at every phase transition — the chaos drill's
    kill-injection point.  ``abort()`` (or the router's ``kill()``)
    stops the run at the next shard call, leaving the persisted journal
    in place so a fresh router over the same ``data_dir`` resumes it.
    """

    def __init__(
        self,
        router,
        target: PlacementTable,
        mid: "str | None" = None,
        batch_entities: int = 64,
        on_phase=None,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 1.0,
        state: "dict | None" = None,
    ) -> None:
        if batch_entities < 1:
            raise ValueError(
                f"batch_entities must be >= 1, got {batch_entities}"
            )
        self.router = router
        self.target = target
        self.mid = mid or f"v{router.placement.version}-to-v{target.version}"
        self.batch_entities = int(batch_entities)
        self.on_phase = on_phase
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.next_seq = int(state.get("next_seq", 1)) if state else 1
        self.resumed = state is not None
        self.progress = {
            "phase": "plan",
            "sweeps": 0,
            "batches_done": 0,
            "entities_moved": 0,
            "resumed": self.resumed,
        }
        self.result: "dict | None" = None
        self.error: "Exception | None" = None
        self._abort = threading.Event()
        self._thread: "threading.Thread | None" = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run_safely, name="qos-migration", daemon=True
        )
        self._thread.start()

    def join(self, timeout: "float | None" = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def abort(self) -> None:
        self._abort.set()

    @property
    def active(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    def progress_snapshot(self) -> dict:
        return dict(self.progress)

    def state_dict(self) -> dict:
        """What the router journals (atomically) for crash resume."""
        return {
            "mid": self.mid,
            "target": self.target.to_dict(),
            "next_seq": self.next_seq,
            "batch_entities": self.batch_entities,
            "overrides": self.router.overrides_state(),
        }

    # -- plumbing -----------------------------------------------------------
    def _phase(self, phase: str, **info) -> None:
        self.progress["phase"] = phase
        if self.on_phase is not None:
            self.on_phase(dict(self.progress, **info))

    def _shard_request(self, shard_name: str, method: str, path: str, payload=None):
        """One shard call, retried with capped backoff until it succeeds,
        the coordinator is aborted, or the shard answers a terminal 4xx
        (a protocol bug, e.g. lifecycle tiering disabled — not something
        a retry can fix)."""
        backoff = self.retry_backoff
        while True:
            if self._abort.is_set():
                raise MigrationAborted(self.mid)
            client = self.router.shard_client(shard_name)
            try:
                return client._request(method, path, payload, idempotent=True)
            except PredictionServiceError as exc:
                status = getattr(exc, "status", None)
                if status is not None and 400 <= status < 500 and status != 409:
                    raise
            if self._abort.wait(backoff):
                raise MigrationAborted(self.mid)
            backoff = min(backoff * 2.0, self.retry_backoff_max)

    # -- the run ------------------------------------------------------------
    def _run_safely(self) -> None:
        try:
            self.result = self._run()
        except MigrationAborted:
            pass  # journal stays on disk; a restarted router resumes
        except Exception as exc:  # noqa: BLE001 — surfaced via /migration/status
            self.error = exc
        finally:
            self.router._migration_finished(self)

    def _run(self) -> dict:
        self._phase("plan")
        started = time.perf_counter()
        moved = self._sweep()
        # Freeze cross-shard writes and sweep until nothing is left —
        # traffic that raced the main sweep created entities on old
        # owners; each pass is strictly smaller.
        self._phase("pre-commit")
        self.router._set_write_freeze(self.target)
        while self._sweep():
            pass
        self.router._commit_migration(self.target)
        self._phase("done")
        return {
            "mid": self.mid,
            "entities_moved": self.progress["entities_moved"],
            "batches": self.progress["batches_done"],
            "sweeps": self.progress["sweeps"],
            "seconds": round(time.perf_counter() - started, 4),
            "target_version": self.target.version,
            "resumed": self.resumed,
            "initial_sweep_moved": moved,
        }

    def _sweep(self) -> int:
        current = self.router.placement
        inventory = {}
        for shard in current.shards:
            inventory[shard.name] = self._shard_request(
                shard.name, "GET", "/migration/entities"
            )
        moves = plan_moves(inventory, current, self.target)
        moved = 0
        for source, dest in sorted(moves):
            for batch in pack_batches(moves[(source, dest)], self.batch_entities):
                moved += self._process_batch(source, dest, batch)
        self.progress["sweeps"] += 1
        return moved

    def _process_batch(self, source: str, dest: str, entities: list) -> int:
        """Move one batch; returns how many entities changed owner.

        Crash-safe by construction: the batch sequence is journaled
        before the import POST (no reuse), the import is deduplicated by
        ``(mid, seq)`` on the destination, the probe turns an
        already-landed import into a no-op, and the delete only removes
        entities the source still has — so replaying any prefix of this
        function converges to the same two-shard state.
        """
        pairs = [[kind, ext_id] for kind, ext_id in entities]
        self._phase("export", source=source, dest=dest, entities=len(pairs))
        self.router._block_entities(entities, reads=False)
        try:
            exported = self._shard_request(
                source, "POST", "/migration/export", {"entities": pairs}
            )["entities"]
            local = {(kind, int(ext)): p for kind, ext, p in exported}
            probe = self._shard_request(
                dest, "POST", "/migration/probe", {"entities": pairs}
            )["entities"]

            to_import = []
            committed = []
            for kind, ext_id in entities:
                payload = local.get((kind, ext_id))
                remote = probe.get(f"{kind}:{ext_id}")
                # Presence on the destination wins: either a resumed run
                # already landed this import durably (WAL-replayed,
                # byte-equal), or the destination's copy has seen writes
                # the source's never will (overridden routing, or a
                # service row the destination's own users built) —
                # overwriting it would disturb non-migrating entities.
                if payload is not None and remote is None:
                    to_import.append([kind, ext_id, payload])
                if payload is not None or remote is not None:
                    committed.append((kind, ext_id))

            if to_import:
                seq = self.next_seq
                self.next_seq = seq + 1
                # Journal the sequence BEFORE the POST: if we die after
                # the destination applied it, the resumed run can never
                # reuse the number and be silently no-op'd by the ledger.
                self.router._persist_migration(self.state_dict())
                self._phase(
                    "transfer",
                    source=source,
                    dest=dest,
                    seq=seq,
                    entities=len(to_import),
                )
                self._shard_request(
                    dest,
                    "POST",
                    "/migration/import",
                    {"mid": self.mid, "seq": seq, "entities": to_import},
                )

            # The commit window: reads for the batch get the brief 503
            # while the source copies disappear and routing flips.
            self._phase("commit", source=source, dest=dest)
            self.router._block_entities(entities, reads=True)
            if committed:
                self._shard_request(
                    source, "POST", "/migration/delete", {"entities": pairs}
                )
                self.router._add_overrides(committed, dest)
                self.router._persist_migration(self.state_dict())
        finally:
            self.router._unblock_entities(entities)
        self.progress["batches_done"] += 1
        self.progress["entities_moved"] += len(committed)
        return len(committed)
