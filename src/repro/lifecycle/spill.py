"""Compact on-disk spill store for demoted (cold) entity state.

The hot tier (:class:`repro.lifecycle.TieredAMF`) keeps a bounded number of
entities dense in RAM; everything else lives here as one row per entity:
``(kind, external_id) -> payload``, where the payload is the canonical JSON
demote record (factor row, EMA error, retained samples, gate statistics).
SQLite is the storage engine — a single ordinary file under the server's
data directory, zero extra dependencies, transactional enough that a
``kill -9`` between demote batches can never tear a row.

Consistency contract with the tiering layer:

* a demote batch writes its rows and then calls :meth:`commit` once, so
  either the whole batch is durable or none of it is;
* a revive deletes the entity's row (idempotently), keeping *"row present
  iff entity is spilled"* as the steady-state invariant;
* crash recovery does **not** read payloads from here — replayed demotes
  rewrite rows from the bit-exact replayed model state and replayed revive
  events carry their payload in the WAL — so a spill file that is "ahead"
  of the checkpoint (rows written after the checkpointed sequence) is
  harmless and converges back to the invariant during replay.

Not a cache: losing the file loses the cold entities' learned state (they
would rejoin as new entities).  It belongs next to the WAL and checkpoint
in the durable data directory.
"""

from __future__ import annotations

import sqlite3
import threading

_KINDS = ("user", "service")


class SpillStore:
    """One-row-per-cold-entity SQLite table with batch commits.

    Args:
        path: database file path, or ``":memory:"`` for an ephemeral store
              (non-durable servers and model-level tests).
        compact_threshold_pages:
              free-page count above which :meth:`maybe_compact` actually
              runs ``PRAGMA incremental_vacuum``.  Deleted rows (revives,
              mass forget, demotion churn) leave free pages behind;
              without compaction a long churn run's spill file grows
              without bound even when the live row count is stable.

    Thread-safe: the server touches it from the ingest path, the predict
    path (revive-on-read), and the ``/status`` handler concurrently.
    """

    def __init__(self, path: str, compact_threshold_pages: int = 64) -> None:
        self.path = path
        self.compact_threshold_pages = int(compact_threshold_pages)
        self.compactions = 0
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        # Incremental auto-vacuum lets us return free pages to the OS with
        # a cheap ``PRAGMA incremental_vacuum`` instead of a full VACUUM
        # (which rewrites the whole file and takes an exclusive lock).  The
        # mode only takes effect on a database that was *created* with it;
        # flipping it on an existing file requires one full VACUUM, so we
        # pay that once when opening a legacy spill file.
        mode = int(self._conn.execute("PRAGMA auto_vacuum").fetchone()[0])
        if mode != 2:
            self._conn.execute("PRAGMA auto_vacuum=INCREMENTAL")
            self._conn.commit()
            self._conn.execute("VACUUM")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS entities ("
            " kind TEXT NOT NULL,"
            " ext_id INTEGER NOT NULL,"
            " payload BLOB NOT NULL,"
            " PRIMARY KEY (kind, ext_id)"
            ") WITHOUT ROWID"
        )
        self._conn.commit()

    def freelist_pages(self) -> int:
        """Pages currently on the database free list (reclaimable space)."""
        with self._lock:
            row = self._conn.execute("PRAGMA freelist_count").fetchone()
        return int(row[0])

    def maybe_compact(self) -> bool:
        """Release free pages back to the OS if enough have accumulated.

        Called by the tiering layer after demotion/prune/forget cycles.
        Cheap when below threshold (one PRAGMA read); above it, runs
        ``PRAGMA incremental_vacuum`` which truncates the file by the
        freed amount.  Returns whether a vacuum ran.
        """
        with self._lock:
            free = int(self._conn.execute("PRAGMA freelist_count").fetchone()[0])
            if free <= self.compact_threshold_pages:
                return False
            self._conn.commit()
            # incremental_vacuum is a *stepped* statement freeing pages as
            # it goes; the sqlite3 module's execute() sees a zero-column
            # result and steps it only once (one page).  executescript
            # drives the statement to completion.
            self._conn.executescript("PRAGMA incremental_vacuum;")
            self._conn.commit()
            self.compactions += 1
        return True

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")

    def put(self, kind: str, ext_id: int, payload: bytes) -> None:
        """Write (or rewrite) one entity's spill row; durable after
        :meth:`commit`."""
        self._check_kind(kind)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO entities (kind, ext_id, payload) "
                "VALUES (?, ?, ?)",
                (kind, int(ext_id), sqlite3.Binary(payload)),
            )

    def get(self, kind: str, ext_id: int) -> "bytes | None":
        self._check_kind(kind)
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM entities WHERE kind = ? AND ext_id = ?",
                (kind, int(ext_id)),
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def delete(self, kind: str, ext_id: int) -> None:
        """Remove an entity's row (idempotent — revive replay re-deletes)."""
        self._check_kind(kind)
        with self._lock:
            self._conn.execute(
                "DELETE FROM entities WHERE kind = ? AND ext_id = ?",
                (kind, int(ext_id)),
            )

    def contains(self, kind: str, ext_id: int) -> bool:
        return self.get(kind, ext_id) is not None

    def count(self, kind: "str | None" = None) -> int:
        with self._lock:
            if kind is None:
                row = self._conn.execute("SELECT COUNT(*) FROM entities").fetchone()
            else:
                self._check_kind(kind)
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM entities WHERE kind = ?", (kind,)
                ).fetchone()
        return int(row[0])

    def keys(self, kind: str) -> list[int]:
        """All spilled external ids of one kind, ascending."""
        self._check_kind(kind)
        with self._lock:
            rows = self._conn.execute(
                "SELECT ext_id FROM entities WHERE kind = ? ORDER BY ext_id",
                (kind,),
            ).fetchall()
        return [int(row[0]) for row in rows]

    def prune_except(self, kind: str, keep_ids) -> int:
        """Delete every row of ``kind`` whose id is not in ``keep_ids``.

        Startup hygiene: a crash between a revive's row deletion and its
        commit can leave a row for an entity the recovered state considers
        hot.  Such rows are never consulted (revival is driven by the
        in-model spilled set, not by table scans) but would leak file space
        forever; recovery prunes them back to the invariant.
        """
        keep = set(int(ext_id) for ext_id in keep_ids)
        stale = [ext_id for ext_id in self.keys(kind) if ext_id not in keep]
        with self._lock:
            for ext_id in stale:
                self._conn.execute(
                    "DELETE FROM entities WHERE kind = ? AND ext_id = ?",
                    (kind, ext_id),
                )
            if stale:
                self._conn.commit()
        if stale:
            self.maybe_compact()
        return len(stale)

    def commit(self) -> None:
        """Make every write since the last commit durable (one fsync)."""
        with self._lock:
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.commit()
            except sqlite3.Error:
                pass
            self._conn.close()
