"""Bounded-memory entity lifecycle: hot/cold tiering over the AMF model.

Every per-entity structure in the base model — factor rows, EMA error
trackers, sample-store indices — grows monotonically with distinct ids, so
a long-lived churn stream is an OOM waiting to happen.  :class:`TieredAMF`
bounds all of it: external entity ids (unbounded, sparse) are mapped onto
internal **slots** (dense, bounded, recycled through a free list), and all
inherited machinery — SGD kernels, replay, the sample store, serialization
— operates purely in slot space.  When the live population exceeds the
configured hot capacity, the coldest entities are **demoted**: their exact
state (factor row, EMA error, retained samples, sanitizer-gate statistics)
is serialized into the :class:`~repro.lifecycle.spill.SpillStore` and their
slot is recycled.  A later observation or read **revives** them with their
state restored bit-for-bit (modulo samples whose peer is itself cold, which
are dropped — a documented re-warming tradeoff).

Determinism contract (what keeps WAL recovery and standby replication
bit-exact, ``docs/algorithm.md`` § "Hot/cold tiering"):

* **Demotions are pure functions of model state** — they run inside
  :meth:`observe` / :meth:`apply_pressure` and are *not* WAL-logged;
  replaying the same observation/event sequence reproduces the same
  demotions, the same spill payloads, and the same free-list order.
* **Revives are WAL events carrying their payload.**  The spill row at
  recovery time reflects the *latest* state, not the state at the replayed
  sequence position, so replay must restore from the logged payload — the
  server appends a ``revive_*`` event (and the standby receives it) before
  the observation that triggered it.
* **Slot allocation randomness is sequence-determined.**  A fresh slot
  draws one init vector (exactly like the flat model's ``ensure``); a
  recycled slot draws one on reinitialization for a *new* entity and none
  on revival.  Which case occurs is itself a deterministic function of the
  sequence, so the RNG stream replays exactly.

The :class:`MemoryWatchdog` closes the loop: it polls resident entity
bytes against a limit and, under sustained pressure, asks the server to
tighten capacities (a WAL-logged ``pressure`` event, so recovery and the
standby converge to the same tier assignment) and, at critical pressure,
to shed cold-revive *reads* with 429 — hot predictions are never shed.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.config import AMFConfig
from repro.datasets.schema import QoSRecord
from repro.lifecycle.spill import SpillStore
from repro.observability import get_registry

_METRICS = get_registry()
# Same family observe() increments in the flat model (get-or-create returns
# the identical Counter object).
_OBSERVATIONS = _METRICS.counter(
    "qos_amf_observations_total",
    "QoS samples ingested via observe() (arrival SGD steps)",
)
_LC_RESIDENT = _METRICS.gauge(
    "qos_lifecycle_resident_bytes",
    "Tracked resident bytes of per-entity model state (hot tier)",
)
_LC_HOT = _METRICS.gauge(
    "qos_lifecycle_hot_entities",
    "Entities currently resident in the hot tier, by kind",
    labelnames=("kind",),
)
_LC_SPILLED = _METRICS.gauge(
    "qos_lifecycle_spilled_entities",
    "Entities currently demoted to the spill store, by kind",
    labelnames=("kind",),
)
_LC_DEMOTIONS = _METRICS.counter(
    "qos_lifecycle_demotions_total",
    "Entities demoted from the hot tier to the spill store, by kind",
    labelnames=("kind",),
)
_LC_REVIVALS = _METRICS.counter(
    "qos_lifecycle_revivals_total",
    "Entities revived from the spill store into the hot tier, by kind",
    labelnames=("kind",),
)
_LC_COLD_SHED = _METRICS.counter(
    "qos_lifecycle_cold_reads_shed_total",
    "Cold-entity revive reads shed with 429 under critical memory pressure",
)
_LC_PRESSURE_LEVEL = _METRICS.gauge(
    "qos_lifecycle_pressure_level",
    "Memory-pressure level (0 ok, 1 tighten, 2 critical)",
)
_LC_PRESSURE_EVENTS = _METRICS.counter(
    "qos_lifecycle_pressure_events_total",
    "Capacity-tightening pressure events applied",
)
# Pre-bind label children so every family renders from process start
# (CORE_METRIC_FAMILIES is validated against a live scrape).
_LC_HANDLES = {
    kind: (
        _LC_HOT.labels(kind=kind),
        _LC_SPILLED.labels(kind=kind),
        _LC_DEMOTIONS.labels(kind=kind),
        _LC_REVIVALS.labels(kind=kind),
    )
    for kind in ("user", "service")
}

#: Memory-pressure levels in escalation order.
PRESSURE_LEVELS = ("ok", "tighten", "critical")

#: Lifecycle counters carried in checkpoints (``lifecycle_state()``); new
#: keys are defaulted on restore so old checkpoints stay loadable.
_DEFAULT_COUNTERS = {
    "demoted_users": 0,
    "demoted_services": 0,
    "revived_users": 0,
    "revived_services": 0,
    "pressure_events": 0,
    "imported_users": 0,
    "imported_services": 0,
    "migrated_out_users": 0,
    "migrated_out_services": 0,
}


class ColdEntityError(KeyError):
    """An operation addressed a spilled entity without reviving it first."""


@dataclass(frozen=True, slots=True)
class LifecycleConfig:
    """Tuning knobs for hot/cold tiering and the memory watchdog.

    Attributes:
        hot_users:          hot-tier capacity for users (slots).
        hot_services:       hot-tier capacity for services (slots).
        low_watermark:      demotion target as a fraction of capacity: when
                            the live population exceeds capacity, the
                            coldest entities are demoted down to
                            ``capacity * low_watermark`` in one batch
                            (hysteresis — one spill write per batch, not
                            per arrival).
        memory_limit_bytes: resident-bytes ceiling the watchdog enforces;
                            ``None`` disables the watchdog.
        watchdog_interval:  seconds between watchdog polls.
        tighten_at:         usage fraction above which capacities shrink.
        critical_at:        usage fraction above which cold-revive reads
                            are shed (hot predictions are never shed).
        shrink_factor:      multiplicative capacity reduction per sustained
                            tighten poll.
        min_hot:            capacity floor tightening can never cross.
        sustain_polls:      consecutive over-threshold polls required
                            before acting (pressure must be *sustained*).
    """

    hot_users: int = 4096
    hot_services: int = 4096
    low_watermark: float = 0.9
    memory_limit_bytes: "int | None" = None
    watchdog_interval: float = 0.5
    tighten_at: float = 0.8
    critical_at: float = 0.95
    shrink_factor: float = 0.7
    min_hot: int = 64
    sustain_polls: int = 2

    def __post_init__(self) -> None:
        if self.hot_users < 2 or self.hot_services < 2:
            raise ValueError(
                f"hot capacities must be >= 2, got {self.hot_users}/{self.hot_services}"
            )
        if not (0.0 < self.low_watermark <= 1.0):
            raise ValueError(
                f"low_watermark must be in (0, 1], got {self.low_watermark}"
            )
        if self.memory_limit_bytes is not None and self.memory_limit_bytes < 1:
            raise ValueError(
                f"memory_limit_bytes must be positive, got {self.memory_limit_bytes}"
            )
        if self.watchdog_interval <= 0:
            raise ValueError(
                f"watchdog_interval must be positive, got {self.watchdog_interval}"
            )
        if not (0.0 < self.tighten_at < self.critical_at):
            raise ValueError(
                f"need 0 < tighten_at < critical_at, got "
                f"{self.tighten_at}/{self.critical_at}"
            )
        if not (0.0 < self.shrink_factor < 1.0):
            raise ValueError(
                f"shrink_factor must be in (0, 1), got {self.shrink_factor}"
            )
        if self.min_hot < 2:
            raise ValueError(f"min_hot must be >= 2, got {self.min_hot}")
        if self.sustain_polls < 1:
            raise ValueError(
                f"sustain_polls must be >= 1, got {self.sustain_polls}"
            )


class TieredAMF(AdaptiveMatrixFactorization):
    """AMF with external-id -> slot indirection and hot/cold tiering.

    The public prediction/observation API speaks *external* ids; every
    inherited internal (factors, weights, sample store, replay kernels,
    serialization arrays) speaks *slots*.  ``hooks`` (set by the server) is
    the bridge to state keyed by external ids outside the model — sanitizer
    gate statistics and the prediction cache — exported/imported on
    demote/revive; see ``repro.server.app._LifecycleHooks``.
    """

    def __init__(
        self,
        config: "AMFConfig | None" = None,
        rng=None,
        *,
        lifecycle: "LifecycleConfig | None" = None,
        spill: "SpillStore | None" = None,
    ) -> None:
        super().__init__(config, rng=rng)
        self.lifecycle = lifecycle if lifecycle is not None else LifecycleConfig()
        self._spill = spill if spill is not None else SpillStore(":memory:")
        self.hooks = None
        self._init_lifecycle_state(None)

    @classmethod
    def from_model(
        cls,
        model: AdaptiveMatrixFactorization,
        lifecycle: "LifecycleConfig | None",
        spill: SpillStore,
        state: "dict | None" = None,
    ) -> "TieredAMF":
        """Adopt a loaded flat model's internals (factors/weights/store/RNG).

        ``state`` is the checkpoint's ``extra["lifecycle"]`` dict: with it,
        the checkpointed ext<->slot mapping, free lists, touch ticks, and
        spilled sets are restored; without it (first tiered start over a
        flat checkpoint) existing rows adopt the identity mapping and any
        overflow beyond capacity is demoted immediately.
        """
        tiered = cls.__new__(cls)
        tiered.__dict__.update(model.__dict__)
        tiered.lifecycle = lifecycle if lifecycle is not None else LifecycleConfig()
        tiered._spill = spill
        tiered.hooks = None
        tiered._init_lifecycle_state(state)
        return tiered

    # ------------------------------------------------------------------
    # Lifecycle state
    # ------------------------------------------------------------------
    def _init_lifecycle_state(self, state: "dict | None") -> None:
        lc = self.lifecycle
        if state is None:
            n_u = len(self._user_factors)
            n_s = len(self._service_factors)
            self._u_slot_of = {ext: ext for ext in range(n_u)}
            self._s_slot_of = {ext: ext for ext in range(n_s)}
            self._u_ext_of = list(range(n_u))
            self._s_ext_of = list(range(n_s))
            self._u_touch = [0] * n_u
            self._s_touch = [0] * n_s
            self._u_free: list[int] = []
            self._s_free: list[int] = []
            self._spilled_users: set[int] = set()
            self._spilled_services: set[int] = set()
            self._tick = 0
            self._hot_users = lc.hot_users
            self._hot_services = lc.hot_services
            self._pressure_level = "ok"
            self.counters = dict(_DEFAULT_COUNTERS)
        else:
            self._u_slot_of = {int(e): int(p) for e, p, __ in state["users"]}
            self._s_slot_of = {int(e): int(p) for e, p, __ in state["services"]}
            self._u_free = [int(p) for p in state["u_free"]]
            self._s_free = [int(p) for p in state["s_free"]]
            n_u = len(self._u_slot_of) + len(self._u_free)
            n_s = len(self._s_slot_of) + len(self._s_free)
            self._u_ext_of = [-1] * n_u
            self._s_ext_of = [-1] * n_s
            self._u_touch = [0] * n_u
            self._s_touch = [0] * n_s
            for ext, slot, touch in state["users"]:
                self._u_ext_of[int(slot)] = int(ext)
                self._u_touch[int(slot)] = int(touch)
            for ext, slot, touch in state["services"]:
                self._s_ext_of[int(slot)] = int(ext)
                self._s_touch[int(slot)] = int(touch)
            self._spilled_users = {int(e) for e in state["spilled_users"]}
            self._spilled_services = {int(e) for e in state["spilled_services"]}
            self._tick = int(state["tick"])
            self._hot_users = int(state["hot_users"])
            self._hot_services = int(state["hot_services"])
            self._pressure_level = str(state.get("pressure_level", "ok"))
            self.counters = {
                key: int(value) for key, value in state["counters"].items()
            }
            # Checkpoints written before a counter existed lack its key;
            # default it so increments never KeyError after an upgrade.
            for key, value in _DEFAULT_COUNTERS.items():
                self.counters.setdefault(key, value)
        hot_u, spill_u, __, __ = _LC_HANDLES["user"]
        hot_s, spill_s, __, __ = _LC_HANDLES["service"]
        hot_u.set_function(lambda: float(len(self._u_slot_of)))
        hot_s.set_function(lambda: float(len(self._s_slot_of)))
        spill_u.set_function(lambda: float(len(self._spilled_users)))
        spill_s.set_function(lambda: float(len(self._spilled_services)))
        _LC_RESIDENT.set_function(self.resident_bytes)
        _LC_PRESSURE_LEVEL.set(PRESSURE_LEVELS.index(self._pressure_level))
        if state is None and (
            len(self._u_slot_of) > self._hot_users
            or len(self._s_slot_of) > self._hot_services
        ):
            # Flat-checkpoint upgrade: adopt rows then demote overflow.  The
            # tick must advance first — demotion spares entities touched at
            # the current tick, and at tick 0 every adopted row qualifies.
            self._tick += 1
            self._enforce_capacity()

    def lifecycle_state(self) -> dict:
        """JSON-exact snapshot for ``extra["lifecycle"]`` in checkpoints.

        Deterministically ordered (sorted external ids, free lists in stack
        order) so byte-identical model evolution yields byte-identical
        checkpoint archives — the recovery digest oracle covers tier
        assignment too.
        """
        return {
            "hot_users": self._hot_users,
            "hot_services": self._hot_services,
            "tick": self._tick,
            "users": [
                [ext, slot, self._u_touch[slot]]
                for ext, slot in sorted(self._u_slot_of.items())
            ],
            "services": [
                [ext, slot, self._s_touch[slot]]
                for ext, slot in sorted(self._s_slot_of.items())
            ],
            "u_free": list(self._u_free),
            "s_free": list(self._s_free),
            "spilled_users": sorted(self._spilled_users),
            "spilled_services": sorted(self._spilled_services),
            "pressure_level": self._pressure_level,
            "counters": dict(self.counters),
        }

    def lifecycle_status(self) -> dict:
        """Operator-facing snapshot for the server's ``/status`` payload."""
        return {
            "hot_users": len(self._u_slot_of),
            "hot_services": len(self._s_slot_of),
            "spilled_users": len(self._spilled_users),
            "spilled_services": len(self._spilled_services),
            "capacity_users": self._hot_users,
            "capacity_services": self._hot_services,
            "resident_bytes": self.resident_bytes(),
            "pressure_level": self._pressure_level,
            "spill_path": self._spill.path,
            **self.counters,
        }

    def resident_bytes(self) -> int:
        """Tracked bytes of resident per-entity state (the watchdog input).

        Sums the allocated numpy backing arrays exactly and estimates the
        Python-side container overhead (id maps, store indices) at a flat
        per-entry cost — deterministic, cheap, and monotone in the hot
        population, which is what a demotion controller needs; it is not an
        RSS measurement.
        """
        arrays = (
            self._user_factors._rows.nbytes
            + self._user_factors._versions.nbytes
            + self._service_factors._rows.nbytes
            + self._service_factors._versions.nbytes
            + self.weights._user_errors._values.nbytes
            + self.weights._service_errors._values.nbytes
            + self._store._users.nbytes * 5  # five parallel columns, same dtype size
        )
        entries = (
            96 * (len(self._u_slot_of) + len(self._s_slot_of))
            + 64 * (len(self._spilled_users) + len(self._spilled_services))
            + 200 * len(self._store)
        )
        return int(arrays + entries)

    # ------------------------------------------------------------------
    # Identity / translation
    # ------------------------------------------------------------------
    def knows_user(self, user_id: int) -> bool:
        return user_id in self._u_slot_of

    def knows_service(self, service_id: int) -> bool:
        return service_id in self._s_slot_of

    def is_spilled_user(self, user_id: int) -> bool:
        return user_id in self._spilled_users

    def is_spilled_service(self, service_id: int) -> bool:
        return service_id in self._spilled_services

    @property
    def n_hot_users(self) -> int:
        return len(self._u_slot_of)

    @property
    def n_hot_services(self) -> int:
        return len(self._s_slot_of)

    @property
    def n_spilled_users(self) -> int:
        return len(self._spilled_users)

    @property
    def n_spilled_services(self) -> int:
        return len(self._spilled_services)

    def _alloc_user_slot(self, fresh: bool) -> int:
        """Pop a recycled slot or grow by one.

        ``fresh=True`` (a genuinely new entity) reinitializes a recycled
        slot's factor row with one RNG draw — the same single draw a grown
        slot consumes in ``ensure`` — so RNG consumption per allocation is
        uniform.  ``fresh=False`` (revival) leaves the row for
        ``set_row`` to overwrite exactly, drawing nothing on recycle.
        """
        if self._u_free:
            slot = self._u_free.pop()
            if fresh:
                self._user_factors.reinitialize(slot)
            return slot
        slot = len(self._u_ext_of)
        self._u_ext_of.append(-1)
        self._u_touch.append(0)
        self._user_factors.ensure(slot)
        self.weights.register_user(slot)
        return slot

    def _alloc_service_slot(self, fresh: bool) -> int:
        if self._s_free:
            slot = self._s_free.pop()
            if fresh:
                self._service_factors.reinitialize(slot)
            return slot
        slot = len(self._s_ext_of)
        self._s_ext_of.append(-1)
        self._s_touch.append(0)
        self._service_factors.ensure(slot)
        self.weights.register_service(slot)
        return slot

    def ensure_user(self, user_id: int) -> None:
        if user_id < 0:
            raise IndexError(f"user id must be non-negative, got {user_id}")
        if user_id in self._u_slot_of:
            return
        if user_id in self._spilled_users:
            raise ColdEntityError(
                f"user {user_id} is spilled; revive it before use"
            )
        slot = self._alloc_user_slot(fresh=True)
        self._u_slot_of[user_id] = slot
        self._u_ext_of[slot] = user_id
        self._u_touch[slot] = self._tick

    def ensure_service(self, service_id: int) -> None:
        if service_id < 0:
            raise IndexError(f"service id must be non-negative, got {service_id}")
        if service_id in self._s_slot_of:
            return
        if service_id in self._spilled_services:
            raise ColdEntityError(
                f"service {service_id} is spilled; revive it before use"
            )
        slot = self._alloc_service_slot(fresh=True)
        self._s_slot_of[service_id] = slot
        self._s_ext_of[slot] = service_id
        self._s_touch[slot] = self._tick

    def forget_user(self, user_id: int) -> None:
        """Remove a departed user entirely (hot slot freed or spill row
        dropped); a rejoin allocates a fresh slot like a new entity."""
        slot = self._u_slot_of.pop(user_id, None)
        if slot is not None:
            self.weights.reset_user(slot)
            self._store.drop_user(slot)
            self._u_ext_of[slot] = -1
            self._u_free.append(slot)
            if self.hooks is not None:
                self.hooks.export_user(user_id)
        elif user_id in self._spilled_users:
            self._spilled_users.discard(user_id)
            self._spill.delete("user", user_id)
            self._spill.commit()
            self._spill.maybe_compact()

    def forget_service(self, service_id: int) -> None:
        slot = self._s_slot_of.pop(service_id, None)
        if slot is not None:
            self.weights.reset_service(slot)
            self._store.drop_service(slot)
            self._s_ext_of[slot] = -1
            self._s_free.append(slot)
            if self.hooks is not None:
                self.hooks.export_service(service_id)
        elif service_id in self._spilled_services:
            self._spilled_services.discard(service_id)
            self._spill.delete("service", service_id)
            self._spill.commit()
            self._spill.maybe_compact()

    # ------------------------------------------------------------------
    # Observation path
    # ------------------------------------------------------------------
    def observe(self, record: QoSRecord) -> float:
        """Slot-space reimplementation of the flat model's ``observe``.

        Spilled entities must be revived first (the server WAL-logs the
        revive event before this observation); model-level drivers use
        :meth:`observe_reviving`.
        """
        if record.user_id in self._spilled_users:
            raise ColdEntityError(
                f"user {record.user_id} is spilled; revive it before observing"
            )
        if record.service_id in self._spilled_services:
            raise ColdEntityError(
                f"service {record.service_id} is spilled; revive it before observing"
            )
        self._tick += 1
        self.ensure_user(record.user_id)
        self.ensure_service(record.service_id)
        u_slot = self._u_slot_of[record.user_id]
        s_slot = self._s_slot_of[record.service_id]
        self._u_touch[u_slot] = self._tick
        self._s_touch[s_slot] = self._tick
        r = self._normalize_scalar(record.value)
        if r < self.config.normalized_floor:
            r = self.config.normalized_floor
        self._store.put(u_slot, s_slot, record.timestamp, record.value, r)
        _OBSERVATIONS.inc()
        error = self._online_update(u_slot, s_slot, r)
        self._enforce_capacity()
        return error

    def observe_reviving(self, record: QoSRecord) -> tuple[list, float]:
        """Revive any spilled party, then observe.

        The WAL-free driver (benches, model-level tests): returns
        ``(revive_events, sample_error)`` where each revive event is
        ``(kind, ext_id, payload)`` in apply order — exactly what a server
        would have logged before the observation.
        """
        events = []
        for kind, ext_id in self.pending_revivals(record.user_id, record.service_id):
            payload = self.revive_payload(kind, ext_id)
            self.apply_revive(kind, ext_id, payload)
            events.append((kind, ext_id, payload))
        return events, self.observe(record)

    def replay_many(self, now, count, kernel=None):
        effective = self.config.kernel if kernel is None else kernel
        if effective == "parallel":
            raise RuntimeError(
                "the parallel replay kernel snapshots flat factor arrays and "
                "is not supported on a tiered model (slots move under it)"
            )
        return super().replay_many(now, count, kernel=kernel)

    # ------------------------------------------------------------------
    # Demotion
    # ------------------------------------------------------------------
    def _enforce_capacity(self) -> None:
        """Demote overflow down to the low watermark (deterministic batch).

        Eviction policy is age/credence-driven: primary key is last-touch
        tick (oldest first), tie-broken by *higher* EMA error (the least
        converged state is the cheapest to lose), then slot id.  Entities
        touched at the current tick (the parties of the in-flight
        observation or revival) are never demoted.
        """
        demoted = self._demote_overflow("user") + self._demote_overflow("service")
        if demoted:
            self._spill.commit()
            self._spill.maybe_compact()

    def _demote_overflow(self, kind: str) -> int:
        if kind == "user":
            slot_of, touch = self._u_slot_of, self._u_touch
            capacity = self._hot_users
            errors = self.weights._user_errors._values
        else:
            slot_of, touch = self._s_slot_of, self._s_touch
            capacity = self._hot_services
            errors = self.weights._service_errors._values
        live = len(slot_of)
        if live <= capacity:
            return 0
        target = max(2, int(capacity * self.lifecycle.low_watermark))
        need = live - target
        slots = np.fromiter(slot_of.values(), dtype=np.intp, count=live)
        slots.sort()
        ages = np.array([touch[s] for s in slots], dtype=np.int64)
        demotable = ages < self._tick
        slots = slots[demotable]
        ages = ages[demotable]
        order = np.lexsort((slots, -errors[slots], ages))
        victims = slots[order][: min(need, slots.size)]
        if kind == "user":
            for slot in victims:
                self._demote_user_slot(int(slot))
        else:
            for slot in victims:
                self._demote_service_slot(int(slot))
        return int(victims.size)

    def _demote_user_slot(self, slot: int) -> None:
        ext = self._u_ext_of[slot]
        samples = []
        for peer_slot in self._store._user_index.get(slot, ()):
            timestamp, value = self._store.get(slot, peer_slot)
            samples.append([int(self._s_ext_of[peer_slot]), timestamp, value])
        samples.sort(key=lambda item: item[0])
        payload = {
            "row": [float(x) for x in self._user_factors._rows[slot]],
            "err": float(self.weights.user_error(slot)),
            "samples": samples,
        }
        if self.hooks is not None:
            gate_entry = self.hooks.export_user(ext)
            if gate_entry is not None:
                payload["gate"] = gate_entry
        self._spill.put(
            "user", ext, json.dumps(payload, sort_keys=True).encode()
        )
        self._store.drop_user(slot)
        self.weights.reset_user(slot)
        del self._u_slot_of[ext]
        self._u_ext_of[slot] = -1
        self._u_free.append(slot)
        self._spilled_users.add(ext)
        self.counters["demoted_users"] += 1
        _LC_HANDLES["user"][2].inc()

    def _demote_service_slot(self, slot: int) -> None:
        ext = self._s_ext_of[slot]
        samples = []
        for peer_slot in self._store._service_index.get(slot, ()):
            timestamp, value = self._store.get(peer_slot, slot)
            samples.append([int(self._u_ext_of[peer_slot]), timestamp, value])
        samples.sort(key=lambda item: item[0])
        payload = {
            "row": [float(x) for x in self._service_factors._rows[slot]],
            "err": float(self.weights.service_error(slot)),
            "samples": samples,
        }
        if self.hooks is not None:
            gate_entry = self.hooks.export_service(ext)
            if gate_entry is not None:
                payload["gate"] = gate_entry
        self._spill.put(
            "service", ext, json.dumps(payload, sort_keys=True).encode()
        )
        self._store.drop_service(slot)
        self.weights.reset_service(slot)
        del self._s_slot_of[ext]
        self._s_ext_of[slot] = -1
        self._s_free.append(slot)
        self._spilled_services.add(ext)
        self.counters["demoted_services"] += 1
        _LC_HANDLES["service"][2].inc()

    # ------------------------------------------------------------------
    # Revival
    # ------------------------------------------------------------------
    def pending_revivals(
        self, user_id: "int | None" = None, service_id: "int | None" = None
    ) -> list[tuple[str, int]]:
        """Which of the addressed entities are spilled, in apply order."""
        pending = []
        if user_id is not None and user_id in self._spilled_users:
            pending.append(("user", int(user_id)))
        if service_id is not None and service_id in self._spilled_services:
            pending.append(("service", int(service_id)))
        return pending

    def revive_payload(self, kind: str, ext_id: int) -> dict:
        """Fetch a spilled entity's payload (what the WAL event will carry)."""
        raw = self._spill.get(kind, ext_id)
        if raw is None:
            raise KeyError(f"no spill row for {kind} {ext_id}")
        return json.loads(raw.decode())

    def apply_revive(self, kind: str, ext_id: int, payload: dict) -> None:
        """Restore a spilled entity from ``payload`` (WAL-replayable).

        Restores the factor row exactly (version bumped — a recycled slot
        must never satisfy a cache stamp from its previous occupant), the
        EMA error, and every retained sample whose peer is currently hot;
        samples against cold peers are dropped (re-warming tradeoff: they
        re-enter via fresh observations).  Deletes the spill row, keeping
        "row present iff spilled" invariant.
        """
        if kind == "user":
            self._revive_user(int(ext_id), payload)
        elif kind == "service":
            self._revive_service(int(ext_id), payload)
        else:
            raise ValueError(f"unknown revive kind {kind!r}")

    def _revive_user(self, ext: int, payload: dict) -> None:
        if ext in self._u_slot_of:
            return
        slot = self._alloc_user_slot(fresh=False)
        self._u_slot_of[ext] = slot
        self._u_ext_of[slot] = ext
        self._u_touch[slot] = self._tick
        self._user_factors.set_row(slot, payload["row"])
        self.weights.set_user_error(slot, payload["err"])
        for peer_ext, timestamp, value in payload.get("samples", ()):
            peer_slot = self._s_slot_of.get(int(peer_ext))
            if peer_slot is None:
                continue
            value = float(value)
            self._store.put(
                slot, peer_slot, float(timestamp), value, self.normalize_value(value)
            )
        if self.hooks is not None:
            self.hooks.import_user(ext, payload.get("gate"))
        self._spilled_users.discard(ext)
        self._spill.delete("user", ext)
        self._spill.commit()
        self.counters["revived_users"] += 1
        _LC_HANDLES["user"][3].inc()
        self._enforce_capacity()

    def _revive_service(self, ext: int, payload: dict) -> None:
        if ext in self._s_slot_of:
            return
        slot = self._alloc_service_slot(fresh=False)
        self._s_slot_of[ext] = slot
        self._s_ext_of[slot] = ext
        self._s_touch[slot] = self._tick
        self._service_factors.set_row(slot, payload["row"])
        self.weights.set_service_error(slot, payload["err"])
        for peer_ext, timestamp, value in payload.get("samples", ()):
            peer_slot = self._u_slot_of.get(int(peer_ext))
            if peer_slot is None:
                continue
            value = float(value)
            self._store.put(
                peer_slot, slot, float(timestamp), value, self.normalize_value(value)
            )
        if self.hooks is not None:
            self.hooks.import_service(ext, payload.get("gate"))
        self._spilled_services.discard(ext)
        self._spill.delete("service", ext)
        self._spill.commit()
        self.counters["revived_services"] += 1
        _LC_HANDLES["service"][3].inc()
        self._enforce_capacity()

    # ------------------------------------------------------------------
    # Migration (entity export / bulk import / removal by external id)
    # ------------------------------------------------------------------
    def entity_ids(self, kind: str) -> list[int]:
        """Every known external id of one kind — hot and spilled, ascending.

        The migration planner's discovery surface: ownership re-homing must
        move *all* of an entity's state, including entities currently
        demoted to the spill store.
        """
        if kind == "user":
            return sorted(set(self._u_slot_of) | self._spilled_users)
        if kind == "service":
            return sorted(set(self._s_slot_of) | self._spilled_services)
        raise ValueError(f"unknown entity kind {kind!r}")

    def sample_edges(self) -> list:
        """Every ``[user_ext, service_ext]`` pair sharing a retained sample.

        The migration planner's co-location input: a batch that splits a
        sample edge across two batches would drop the sample on import
        (pass two of :meth:`import_entities` only restores samples whose
        peer is present), so the coordinator packs connected components
        whole.  Hot-tier edges come from the store indices; spilled
        entities contribute the peer lists recorded in their spill
        payloads (a full spill scan — migration-time cost, not hot-path).
        Deterministically sorted.
        """
        edges = set()
        for u_slot, s_slots in self._store._user_index.items():
            u_ext = self._u_ext_of[u_slot]
            for s_slot in s_slots:
                edges.add((int(u_ext), int(self._s_ext_of[s_slot])))
        for ext in self._spilled_users:
            payload = self.revive_payload("user", ext)
            for peer_ext, __, __ in payload.get("samples", ()):
                edges.add((int(ext), int(peer_ext)))
        for ext in self._spilled_services:
            payload = self.revive_payload("service", ext)
            for peer_ext, __, __ in payload.get("samples", ()):
                edges.add((int(peer_ext), int(ext)))
        return [list(edge) for edge in sorted(edges)]

    def export_payload(self, kind: str, ext_id: int) -> dict:
        """Canonical spill-format payload for any known entity, read-only.

        Hot entities get exactly the payload :meth:`_demote_user_slot` /
        :meth:`_demote_service_slot` would write (factor row, EMA error,
        peer-sorted samples, gate entry) *without* being demoted — the
        source stays fully serving until the migration batch commits.
        Spilled entities reuse their spill row.  Unknown ids raise
        ``KeyError`` (the coordinator treats that as "already moved").
        """
        ext = int(ext_id)
        if kind == "user":
            slot = self._u_slot_of.get(ext)
            if slot is None:
                return self.revive_payload("user", ext)
            samples = []
            for peer_slot in self._store._user_index.get(slot, ()):
                timestamp, value = self._store.get(slot, peer_slot)
                samples.append([int(self._s_ext_of[peer_slot]), timestamp, value])
            samples.sort(key=lambda item: item[0])
            payload = {
                "row": [float(x) for x in self._user_factors._rows[slot]],
                "err": float(self.weights.user_error(slot)),
                "samples": samples,
            }
            if self.hooks is not None:
                gate_entry = self.hooks.peek_user(ext)
                if gate_entry is not None:
                    payload["gate"] = gate_entry
            return payload
        if kind == "service":
            slot = self._s_slot_of.get(ext)
            if slot is None:
                return self.revive_payload("service", ext)
            samples = []
            for peer_slot in self._store._service_index.get(slot, ()):
                timestamp, value = self._store.get(peer_slot, slot)
                samples.append([int(self._u_ext_of[peer_slot]), timestamp, value])
            samples.sort(key=lambda item: item[0])
            payload = {
                "row": [float(x) for x in self._service_factors._rows[slot]],
                "err": float(self.weights.service_error(slot)),
                "samples": samples,
            }
            if self.hooks is not None:
                gate_entry = self.hooks.peek_service(ext)
                if gate_entry is not None:
                    payload["gate"] = gate_entry
            return payload
        raise ValueError(f"unknown entity kind {kind!r}")

    def import_entities(self, entities) -> int:
        """Bit-exact bulk import of migrated entities (WAL-replayable).

        ``entities`` is an iterable of ``(kind, ext_id, payload)`` in the
        canonical spill format.  Imported state is authoritative: an id the
        model already knows (hot or spilled) is forgotten first, then
        restored from the payload.  Two passes — rows/errors/gate for every
        entity, then samples — so samples between entities arriving in the
        *same* batch survive regardless of intra-batch order; samples whose
        peer is absent after pass one are dropped (the documented
        re-warming tradeoff).  Returns the number of entities imported.
        """
        items = [
            (str(kind), int(ext), payload) for kind, ext, payload in entities
        ]
        self._tick += 1
        for kind, ext, payload in items:
            if kind == "user":
                if ext in self._u_slot_of:
                    self.forget_user(ext)
                elif ext in self._spilled_users:
                    self._spilled_users.discard(ext)
                    self._spill.delete("user", ext)
                slot = self._alloc_user_slot(fresh=False)
                self._u_slot_of[ext] = slot
                self._u_ext_of[slot] = ext
                self._u_touch[slot] = self._tick
                self._user_factors.set_row(slot, payload["row"])
                self.weights.set_user_error(slot, payload["err"])
                if self.hooks is not None:
                    self.hooks.import_user(ext, payload.get("gate"))
                self.counters["imported_users"] += 1
            elif kind == "service":
                if ext in self._s_slot_of:
                    self.forget_service(ext)
                elif ext in self._spilled_services:
                    self._spilled_services.discard(ext)
                    self._spill.delete("service", ext)
                slot = self._alloc_service_slot(fresh=False)
                self._s_slot_of[ext] = slot
                self._s_ext_of[slot] = ext
                self._s_touch[slot] = self._tick
                self._service_factors.set_row(slot, payload["row"])
                self.weights.set_service_error(slot, payload["err"])
                if self.hooks is not None:
                    self.hooks.import_service(ext, payload.get("gate"))
                self.counters["imported_services"] += 1
            else:
                raise ValueError(f"unknown entity kind {kind!r}")
        for kind, ext, payload in items:
            if kind == "user":
                slot = self._u_slot_of[ext]
                for peer_ext, timestamp, value in payload.get("samples", ()):
                    peer_slot = self._s_slot_of.get(int(peer_ext))
                    if peer_slot is None:
                        continue
                    value = float(value)
                    self._store.put(
                        slot,
                        peer_slot,
                        float(timestamp),
                        value,
                        self.normalize_value(value),
                    )
            else:
                slot = self._s_slot_of[ext]
                for peer_ext, timestamp, value in payload.get("samples", ()):
                    peer_slot = self._u_slot_of.get(int(peer_ext))
                    if peer_slot is None:
                        continue
                    value = float(value)
                    self._store.put(
                        peer_slot,
                        slot,
                        float(timestamp),
                        value,
                        self.normalize_value(value),
                    )
        self._spill.commit()
        self._spill.maybe_compact()
        self._enforce_capacity()
        return len(items)

    def remove_entity(self, kind: str, ext_id: int) -> bool:
        """Forget a migrated-out entity; idempotent (WAL replay re-deletes).

        Returns whether the entity existed.  The state was already shipped
        in a prior export batch, so the gate entry :meth:`forget_user` /
        :meth:`forget_service` discards here is a copy of what the
        destination imported.
        """
        ext = int(ext_id)
        if kind == "user":
            existed = ext in self._u_slot_of or ext in self._spilled_users
            self.forget_user(ext)
            if existed:
                self.counters["migrated_out_users"] += 1
            return existed
        if kind == "service":
            existed = ext in self._s_slot_of or ext in self._spilled_services
            self.forget_service(ext)
            if existed:
                self.counters["migrated_out_services"] += 1
            return existed
        raise ValueError(f"unknown entity kind {kind!r}")

    # ------------------------------------------------------------------
    # Pressure events
    # ------------------------------------------------------------------
    def apply_pressure(self, hot_users: int, hot_services: int, level: str) -> None:
        """Apply a capacity-tightening pressure event (WAL-replayable).

        New capacities take effect immediately: overflow beyond them is
        demoted deterministically, so recovery and the standby converge to
        the same (smaller) hot set.
        """
        if level not in PRESSURE_LEVELS:
            raise ValueError(f"unknown pressure level {level!r}")
        self._hot_users = max(2, int(hot_users))
        self._hot_services = max(2, int(hot_services))
        self._pressure_level = level
        self.counters["pressure_events"] += 1
        _LC_PRESSURE_EVENTS.inc()
        _LC_PRESSURE_LEVEL.set(PRESSURE_LEVELS.index(level))
        self._enforce_capacity()

    def apply_event(self, kind: str, data: dict) -> None:
        """Dispatch one WAL lifecycle event (recovery replay / standby)."""
        if kind == "revive_user":
            self.apply_revive("user", int(data["id"]), data["p"])
        elif kind == "revive_service":
            self.apply_revive("service", int(data["id"]), data["p"])
        elif kind == "pressure":
            self.apply_pressure(data["hu"], data["hs"], str(data["level"]))
        else:
            raise ValueError(f"unknown lifecycle event {kind!r}")

    # ------------------------------------------------------------------
    # Prediction (external-id API over the slot-space kernels)
    # ------------------------------------------------------------------
    def predict_normalized(self, user_id: int, service_id: int) -> float:
        u_slot = self._u_slot_of.get(user_id)
        s_slot = self._s_slot_of.get(service_id)
        if u_slot is None or s_slot is None:
            raise KeyError(
                f"unknown or cold entity: user {user_id}, service {service_id}"
            )
        return super().predict_normalized(u_slot, s_slot)

    def predict_for_user(self, user_id: int, service_ids) -> np.ndarray:
        u_slot = self._u_slot_of.get(user_id)
        if u_slot is None:
            raise KeyError(f"unknown or cold user {user_id}")
        slot_ids = np.empty(len(service_ids), dtype=np.intp)
        for k, service_id in enumerate(service_ids):
            s_slot = self._s_slot_of.get(int(service_id))
            if s_slot is None:
                raise KeyError(f"unknown or cold service {service_id}")
            slot_ids[k] = s_slot
        return super().predict_for_user(u_slot, slot_ids)

    def user_version(self, user_id: int) -> int:
        slot = self._u_slot_of.get(user_id)
        return 0 if slot is None else self._user_factors.version(slot)

    def service_version(self, service_id: int) -> int:
        slot = self._s_slot_of.get(service_id)
        return 0 if slot is None else self._service_factors.version(slot)

    def expected_error(self, user_id: int, service_id: int) -> float:
        u_slot = self._u_slot_of.get(user_id)
        s_slot = self._s_slot_of.get(service_id)
        e_u = (
            self.weights.init_error
            if u_slot is None
            else self.weights.user_error(u_slot)
        )
        e_s = (
            self.weights.init_error
            if s_slot is None
            else self.weights.service_error(s_slot)
        )
        return (e_u + e_s) / 2.0

    def service_credence(self, service_id: int) -> float:
        """Per-service EMA error by external id — a pure read.  Spilled
        services answer ``init_error`` like unknown ids (consulting the
        demote payload would hit disk on the read path); that is the
        conservative "low credence" signal until revival."""
        slot = self._s_slot_of.get(service_id)
        if slot is None:
            return float(self.weights.init_error)
        return float(self.weights.service_error(slot))


class MemoryWatchdog:
    """Polls resident entity bytes and degrades the server gracefully.

    Escalation (each step requires ``sustain_polls`` consecutive polls over
    its threshold, so a transient spike does nothing):

    1. usage >= ``tighten_at``  -> shrink hot capacities by
       ``shrink_factor`` (floored at ``min_hot``) via ``on_tighten`` — the
       server turns this into a WAL ``pressure`` event.
    2. usage >= ``critical_at`` -> additionally ``on_shed(True)`` — the
       server starts answering cold-revive *reads* with 429/Retry-After.
       Hot predictions are never shed.

    Recovery: a poll back under ``tighten_at`` clears shedding.

    Args:
        lifecycle:  thresholds (:class:`LifecycleConfig`), including
                    ``memory_limit_bytes``.
        usage:      callable returning tracked resident bytes.
        capacities: callable returning the current ``(hot_users,
                    hot_services)``.
        on_tighten: callable ``(hot_users, hot_services, level)`` applying
                    a capacity change.
        on_shed:    callable ``(bool)`` toggling cold-read shedding.
    """

    def __init__(
        self,
        lifecycle: LifecycleConfig,
        usage,
        capacities,
        on_tighten,
        on_shed,
    ) -> None:
        if lifecycle.memory_limit_bytes is None:
            raise ValueError("MemoryWatchdog requires memory_limit_bytes")
        self.lifecycle = lifecycle
        self._usage = usage
        self._capacities = capacities
        self._on_tighten = on_tighten
        self._on_shed = on_shed
        self._over_tighten = 0
        self._over_critical = 0
        self.level = "ok"
        self._reported_level = "ok"
        self.shedding = False
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()

    def poll_once(self) -> str:
        """One watchdog evaluation; returns the resulting pressure level."""
        lc = self.lifecycle
        ratio = float(self._usage()) / float(lc.memory_limit_bytes)
        self._over_tighten = self._over_tighten + 1 if ratio >= lc.tighten_at else 0
        self._over_critical = (
            self._over_critical + 1 if ratio >= lc.critical_at else 0
        )
        if self._over_critical >= lc.sustain_polls:
            self.level = "critical"
        elif self._over_tighten >= lc.sustain_polls:
            self.level = "tighten"
        elif ratio < lc.tighten_at:
            self.level = "ok"
        if self.level in ("tighten", "critical"):
            hot_users, hot_services = self._capacities()
            new_users = max(lc.min_hot, int(hot_users * lc.shrink_factor))
            new_services = max(lc.min_hot, int(hot_services * lc.shrink_factor))
            if (new_users, new_services) != (hot_users, hot_services):
                self._on_tighten(new_users, new_services, self.level)
            elif self.level != self._reported_level:
                # Escalation with capacities already at the floor: still
                # report with unchanged caps so the pressure event reaches
                # the WAL — recovery and standbys must see the level even
                # when there is nothing left to shrink.
                self._on_tighten(hot_users, hot_services, self.level)
            self._reported_level = self.level
        should_shed = self.level == "critical"
        if should_shed != self.shedding:
            self.shedding = should_shed
            self._on_shed(should_shed)
        return self.level

    # -- thread lifecycle ---------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="qos-memory-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout=timeout)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.lifecycle.watchdog_interval):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 — a probe failure must not kill the dog
                continue
