"""Bounded-memory entity lifecycle: hot/cold tiering, spill, revive,
and memory-pressure degradation (see ``docs/operations.md`` § "Memory
sizing and tiering")."""

from repro.lifecycle.spill import SpillStore
from repro.lifecycle.tiered import (
    PRESSURE_LEVELS,
    ColdEntityError,
    LifecycleConfig,
    MemoryWatchdog,
    TieredAMF,
)

__all__ = [
    "PRESSURE_LEVELS",
    "ColdEntityError",
    "LifecycleConfig",
    "MemoryWatchdog",
    "SpillStore",
    "TieredAMF",
]
