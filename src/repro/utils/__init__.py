"""Shared utilities: RNG management, validation helpers, table rendering."""

from repro.utils.rng import spawn_rng
from repro.utils.tables import render_table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_shape_match,
)

__all__ = [
    "spawn_rng",
    "render_table",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_shape_match",
]
