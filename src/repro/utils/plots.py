"""Terminal plots: render figure series as ASCII charts.

The paper's figures are curves and histograms; the experiment harness
prints their underlying series as tables (``utils.tables``), and these
helpers additionally render them as quick terminal charts so the *shape*
is visible at a glance in benchmark output.  Pure text, no dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

#: Characters from low to high for bar rendering.
_BARS = " .:-=+*#%@"


def line_plot(
    series: "dict[str, Sequence[float]]",
    height: int = 10,
    width: int = 60,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Plot one or more equal-length series as an ASCII line chart.

    Each series gets a marker (``*``, ``o``, ``x`` ...); points are scaled
    into a ``height`` x ``width`` grid with a shared y-range.  Returns the
    chart with a y-axis scale and a legend.
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {lengths}")
    n_points = lengths.pop()
    if n_points < 2:
        raise ValueError("need at least two points to plot")
    if height < 2 or width < 2:
        raise ValueError("height and width must each be >= 2")

    markers = "*ox+#@%&"
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    finite = all_values[np.isfinite(all_values)]
    if finite.size == 0:
        raise ValueError("no finite values to plot")
    low, high = float(finite.min()), float(finite.max())
    if high == low:
        high = low + 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, (__, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        values = np.asarray(values, dtype=float)
        for k, value in enumerate(values):
            if not np.isfinite(value):
                continue
            col = round(k * (width - 1) / (n_points - 1))
            row = round((value - low) / (high - low) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{high:.3g}"), len(f"{low:.3g}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{high:.3g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{low:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    legend = "   ".join(
        f"{markers[index % len(markers)]} {name}" for index, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  {y_label}  [{legend}]")
    return "\n".join(lines)


def bar_histogram(
    centers: Sequence[float],
    heights: Sequence[float],
    width: int = 60,
    title: str | None = None,
) -> str:
    """Render a histogram as one line of density glyphs per ~bin group.

    Bins are resampled onto ``width`` columns; each column's glyph encodes
    the (max-normalized) density, giving a compact one-line shape preview
    plus the axis bounds.
    """
    centers = np.asarray(centers, dtype=float)
    heights = np.asarray(heights, dtype=float)
    if centers.shape != heights.shape or centers.size == 0:
        raise ValueError("centers and heights must be equal-length, non-empty")
    if np.any(heights < 0):
        raise ValueError("histogram heights must be non-negative")
    columns = np.interp(
        np.linspace(0, centers.size - 1, width), np.arange(centers.size), heights
    )
    peak = columns.max()
    if peak > 0:
        glyphs = "".join(
            _BARS[min(int(value / peak * (len(_BARS) - 1)), len(_BARS) - 1)]
            for value in columns
        )
    else:
        glyphs = " " * width
    lines = []
    if title:
        lines.append(title)
    lines.append(f"|{glyphs}|")
    lines.append(f"{centers[0]:<12.4g}{' ' * max(width - 24, 0)}{centers[-1]:>12.4g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline of a series (utility for status output)."""
    values = np.asarray(values, dtype=float)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise ValueError("no finite values")
    low, high = float(finite.min()), float(finite.max())
    span = (high - low) or 1.0
    blocks = "▁▂▃▄▅▆▇█"
    out = []
    for value in values:
        if not np.isfinite(value):
            out.append(" ")
        else:
            out.append(blocks[min(int((value - low) / span * (len(blocks) - 1)), 7)])
    return "".join(out)
