"""Deterministic random-number-generator management.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiment reruns reproducible: a single integer seed fans out into
independent child generators without correlated streams.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def spawn_rng(seed: "int | np.random.Generator | np.random.SeedSequence | None" = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged, so
    callers can thread a single stream through a pipeline), a seed sequence,
    or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: "int | None", count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used by experiments that rerun a procedure many times (e.g. the 20
    reruns per cell of Table I) so each rerun gets its own stream while the
    whole sweep stays reproducible from one integer.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
