"""Plain-text table rendering for experiment harness output.

The benchmark harness reproduces the paper's tables as aligned ASCII so the
rows can be compared against the published numbers side by side.  No
third-party table library is used to keep the dependency set minimal.
"""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``precision`` decimal places; everything else
    is ``str()``-ed.  Returns the table as a single string (no trailing
    newline) so callers can ``print`` or log it.
    """
    formatted = [[_format_cell(cell, precision) for cell in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [
        max(len(header), *(len(row[col]) for row in formatted)) if formatted else len(header)
        for col, header in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in formatted:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object], ys: Sequence[float], precision: int = 3) -> str:
    """Render a named (x, y) series as two aligned columns.

    Used for figure reproductions where the paper plots a curve: the harness
    prints the underlying series instead.
    """
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} x-values but {len(ys)} y-values")
    rows = [(x, float(y)) for x, y in zip(xs, ys)]
    return render_table(["x", name], rows, precision=precision)
