"""Argument-validation helpers shared across the library.

These raise ``ValueError`` with messages that name the offending argument,
so configuration mistakes surface at construction time rather than as NaNs
deep inside a training loop.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 < value <= 1`` (e.g. matrix densities); return it."""
    if not np.isfinite(value) or not (0 < value <= 1):
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    if not np.isfinite(value) or not (0 <= value <= 1):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_shape_match(name_a: str, a: np.ndarray, name_b: str, b: np.ndarray) -> None:
    """Require two arrays to share a shape."""
    if a.shape != b.shape:
        raise ValueError(
            f"{name_a} and {name_b} must have the same shape, "
            f"got {a.shape} vs {b.shape}"
        )


def check_nonnegative_int(name: str, value: int) -> int:
    """Require ``value`` to be a non-negative integer; return it."""
    if int(value) != value or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return int(value)
