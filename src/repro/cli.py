"""Command-line entry point: ``python -m repro <experiment> [options]``.

Dispatches to the experiment modules so every paper artifact can be
regenerated without writing any code::

    python -m repro list
    python -m repro table1 --density 0.1 0.3 --attribute response_time
    python -m repro fig13 --users 142 --services 300
    python -m repro all            # every artifact, in paper order
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.experiments.runner import ExperimentScale


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    base = ExperimentScale.paper() if args.paper_scale else ExperimentScale.quick()
    overrides = {}
    if args.users is not None:
        overrides["n_users"] = args.users
    if args.services is not None:
        overrides["n_services"] = args.services
    if args.slices is not None:
        overrides["n_slices"] = args.slices
    if args.reruns is not None:
        overrides["reruns"] = args.reruns
    if args.seed is not None:
        overrides["seed"] = args.seed
    return base.with_updates(**overrides) if overrides else base


def _run_fig2_fig6(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.data_stats import run_data_stats

    return run_data_stats(scale).to_text()


def _run_fig7_8(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.distributions import run_distributions

    return "\n\n".join(
        run_distributions(scale, attribute=attribute).to_text()
        for attribute in args.attribute
    )


def _run_fig9(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.spectrum import run_spectrum

    return run_spectrum(scale).to_text()


def _run_table1(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.accuracy import run_table1

    return run_table1(
        scale, densities=tuple(args.density), attributes=tuple(args.attribute)
    ).to_text()


def _run_fig10(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.error_dist import run_error_dist

    return "\n\n".join(
        run_error_dist(scale, attribute=attribute, density=args.density[0]).to_text()
        for attribute in args.attribute
    )


def _run_fig11(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.transform_impact import run_transform_impact

    return "\n\n".join(
        run_transform_impact(
            scale, attribute=attribute, densities=tuple(args.density)
        ).to_text()
        for attribute in args.attribute
    )


def _run_fig12(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.density_impact import run_density_impact

    return "\n\n".join(
        run_density_impact(
            scale, attribute=attribute, densities=tuple(args.density)
        ).to_text()
        for attribute in args.attribute
    )


def _run_fig13(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.efficiency import run_efficiency

    return run_efficiency(scale, density=args.density[0]).to_text()


def _run_fig14(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.scalability import run_scalability

    result = run_scalability(scale, density=args.density[0])
    return (
        f"{result.to_text()}\n"
        f"existing-entity drift: {result.existing_drift():+.4f}; "
        f"new-entity improvement: {result.new_entity_improvement():.4f}"
    )


def _run_all_slices(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.all_slices import run_all_slices

    return "\n\n".join(
        run_all_slices(scale, attribute=attribute, density=args.density[0]).to_text()
        for attribute in args.attribute
    )


def _run_parameters(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.parameter_impact import run_all_parameters

    return "\n\n".join(
        result.to_text()
        for result in run_all_parameters(scale, attribute=args.attribute[0]).values()
    )


def _run_selection(scale: ExperimentScale, args: argparse.Namespace) -> str:
    from repro.experiments.selection_quality import run_selection_quality

    return run_selection_quality(
        scale, attribute=args.attribute[0], density=args.density[0]
    ).to_text()


EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentScale, argparse.Namespace], str]]] = {
    "fig2-fig6": ("dataset characterization (Fig. 2 + Fig. 6)", _run_fig2_fig6),
    "fig7-8": ("value distributions, raw and transformed (Figs. 7-8)", _run_fig7_8),
    "fig9": ("sorted singular values (Fig. 9)", _run_fig9),
    "table1": ("accuracy comparison (Table I)", _run_table1),
    "fig10": ("prediction-error distributions (Fig. 10)", _run_fig10),
    "fig11": ("impact of data transformation (Fig. 11)", _run_fig11),
    "fig12": ("impact of matrix density (Fig. 12)", _run_fig12),
    "fig13": ("per-slice convergence time (Fig. 13)", _run_fig13),
    "fig14": ("scalability under churn (Fig. 14)", _run_fig14),
    "all-slices": ("Table I over all time slices (supplementary)", _run_all_slices),
    "parameters": ("hyper-parameter sensitivity sweeps (supplementary)", _run_parameters),
    "selection": ("candidate-selection decision quality (extension)", _run_selection),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the ICDCS 2014 AMF paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "list"],
        help="which paper artifact to regenerate ('list' to enumerate)",
    )
    parser.add_argument(
        "--attribute",
        nargs="+",
        default=["response_time", "throughput"],
        choices=["response_time", "throughput"],
        help="QoS attribute(s) to evaluate",
    )
    parser.add_argument(
        "--density",
        nargs="+",
        type=float,
        default=[0.10, 0.20, 0.30, 0.40, 0.50],
        help="training matrix density / densities",
    )
    parser.add_argument("--users", type=int, help="override user count")
    parser.add_argument("--services", type=int, help="override service count")
    parser.add_argument("--slices", type=int, help="override slice count")
    parser.add_argument("--reruns", type=int, help="override rerun count")
    parser.add_argument("--seed", type=int, help="override the base seed")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the full 142 x 4500 x 64 scale (slow)",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, __) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0
    scale = _scale_from_args(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"== {name}: {description} ==")
        print(runner(scale, args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
