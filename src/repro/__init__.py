"""repro — reproduction of "Towards Online, Accurate, and Scalable QoS
Prediction for Runtime Service Adaptation" (Zhu, He, Zheng, Lyu; ICDCS 2014).

The package implements the paper's Adaptive Matrix Factorization (AMF) model
(:mod:`repro.core`), the baselines it is compared against
(:mod:`repro.baselines`), a statistical twin of the WS-DREAM dataset plus the
real-format loader (:mod:`repro.datasets`), the evaluation metrics
(:mod:`repro.metrics`), a runnable version of the paper's QoS-driven service
adaptation framework (:mod:`repro.adaptation`), a dependency-free metrics
registry with Prometheus output (:mod:`repro.observability`), and one
experiment module per table/figure of the evaluation section
(:mod:`repro.experiments`).

Quick start::

    from repro import AdaptiveMatrixFactorization, AMFConfig
    from repro.datasets import generate_dataset, train_test_split_matrix
    from repro.datasets.stream import stream_from_matrix

    data = generate_dataset(n_users=50, n_services=100, n_slices=4)
    train, test = train_test_split_matrix(data.slice(0), train_density=0.2, rng=0)
    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
    for record in stream_from_matrix(train, rng=0):
        model.observe(record)
"""

from repro.core import (
    AdaptiveMatrixFactorization,
    AMFConfig,
    StreamTrainer,
    TrainReport,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveMatrixFactorization",
    "AMFConfig",
    "StreamTrainer",
    "TrainReport",
    "__version__",
]
