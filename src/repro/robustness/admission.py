"""Overload admission control for the prediction server's ingest path.

The predict-then-observe loop shares one ingest lock (WAL-append order
must match model-apply order), so an unchecked observation flood from one
misbehaving client stalls everyone.  Admission control sheds that load at
the front door instead:

* a **token bucket** (``rate`` tokens/second, ``burst`` capacity) bounds
  the sustained observation rate — excess requests get **429** with a
  ``Retry-After`` telling the client when tokens will be available;
* a **bounded pending counter** models the ingest queue — when more than
  ``max_pending`` observation requests are already waiting on the ingest
  lock, new ones get **503** rather than piling onto the convoy;
* a **deadline budget** caps how long an admitted request may wait for
  the ingest lock before giving up with 503 — a slow checkpoint can delay
  ingestion, but it can never strand a client past its deadline.

Only the *observation* path is admission-controlled.  Predictions are
read-mostly, cheap, and exactly what a load-shedding server must keep
serving — the degraded-mode chain in ``docs/operations.md`` stays fully
available during a flood.

Shedding raises :class:`RateLimited` / :class:`Overloaded` (both
:class:`ShedRequest`), each carrying ``retry_after`` seconds for the
response header.  Deterministic state (the token bucket) is intentionally
*not* persisted: admission is a live-traffic concern, not model state,
and a restarted server starts with a full bucket.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.observability import get_registry

_METRICS = get_registry()
_SHED = _METRICS.counter(
    "qos_requests_shed_total",
    "Ingest requests refused by admission control",
    labelnames=("reason",),
)
# Pre-bind the children so all reasons render from the first scrape.
_SHED_RATE = _SHED.labels(reason="rate_limit")
_SHED_OVERLOAD = _SHED.labels(reason="overload")
_SHED_DEADLINE = _SHED.labels(reason="deadline")
_QUEUE_DEPTH = _METRICS.gauge(
    "qos_ingest_queue_depth",
    "Observation requests currently admitted and waiting to ingest",
)


class ShedRequest(Exception):
    """Base for admission-control refusals; carries a retry hint."""

    status = 503

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = max(float(retry_after), 0.0)


class RateLimited(ShedRequest):
    """Token bucket empty: the client is sending faster than ``rate``."""

    status = 429


class Overloaded(ShedRequest):
    """Ingest queue full or deadline exhausted waiting for the lock."""

    status = 503


class TokenBucket:
    """Classic token bucket on the monotonic clock.

    ``try_acquire(n)`` either takes ``n`` tokens and returns ``0.0``, or
    leaves the bucket untouched and returns the seconds until ``n`` tokens
    will have accumulated.  Thread-safe.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens now, or return the wait (seconds) until possible."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate

    @property
    def available(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Knobs for :class:`AdmissionController`.

    Attributes:
        rate:        sustained observations/second the server accepts.
        burst:       bucket capacity — short bursts up to this size pass at
                     full speed.
        max_pending: observation requests allowed to wait on the ingest
                     lock at once before new ones are shed with 503.
        deadline:    seconds an admitted request may wait for the ingest
                     lock before 503 (its per-request processing budget).
        retry_after_floor: minimum ``Retry-After`` hint, so very small
                     waits don't invite instant hammering.
    """

    rate: float = 500.0
    burst: float = 100.0
    max_pending: int = 64
    deadline: float = 2.0
    retry_after_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.retry_after_floor < 0:
            raise ValueError(
                f"retry_after_floor must be >= 0, got {self.retry_after_floor}"
            )


class AdmissionController:
    """Front-door gate for observation requests.

    Usage (the server wraps this in a ``with admission.admit(cost):``
    around the whole WAL-append-and-apply section)::

        with controller.admit(cost=len(batch)):
            ... acquire ingest lock within controller.deadline ...

    ``admit`` raises :class:`RateLimited` or :class:`Overloaded` instead of
    entering the block when the request should be shed.
    """

    def __init__(self, config: "AdmissionConfig | None" = None, clock=time.monotonic) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.bucket = TokenBucket(self.config.rate, self.config.burst, clock=clock)
        self._pending = 0
        self._lock = threading.Lock()
        self.counts = {"rate_limited": 0, "overloaded": 0, "deadline": 0}

    @property
    def deadline(self) -> float:
        return self.config.deadline

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def _hint(self, wait: float) -> float:
        return max(wait, self.config.retry_after_floor)

    def admit(self, cost: float = 1.0) -> "_Admission":
        """Admit an ingest request of ``cost`` observations, or shed it."""
        wait = self.bucket.try_acquire(cost)
        if wait > 0.0:
            with self._lock:
                self.counts["rate_limited"] += 1
            _SHED_RATE.inc()
            raise RateLimited(
                f"observation rate limit exceeded ({self.config.rate}/s)",
                retry_after=self._hint(wait),
            )
        with self._lock:
            if self._pending >= self.config.max_pending:
                self.counts["overloaded"] += 1
                _SHED_OVERLOAD.inc()
                raise Overloaded(
                    f"ingest queue full ({self.config.max_pending} pending)",
                    retry_after=self._hint(self.config.deadline),
                )
            self._pending += 1
            _QUEUE_DEPTH.set(self._pending)
        return _Admission(self)

    def note_deadline_exceeded(self) -> Overloaded:
        """Record a deadline shed; returns the exception for the caller to raise."""
        with self._lock:
            self.counts["deadline"] += 1
        _SHED_DEADLINE.inc()
        return Overloaded(
            f"ingest deadline exceeded ({self.config.deadline}s waiting for "
            "the ingest lock)",
            retry_after=self._hint(self.config.deadline),
        )

    def _release(self) -> None:
        with self._lock:
            self._pending -= 1
            _QUEUE_DEPTH.set(self._pending)


class _Admission:
    """Context manager releasing one admitted request's queue slot."""

    __slots__ = ("_controller",)

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info) -> None:
        self._controller._release()
