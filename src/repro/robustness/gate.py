"""Streaming sanitizer + outlier gate for untrusted QoS streams.

AMF's accuracy rests on a stream collected from distributed, unreliable
users (Section IV-C): a mis-calibrated probe, a broken collector, or a
hostile client can feed the model tail values that a single weighted SGD
step happily absorbs — and Outlier-Resilient QoS Prediction (Ye et al.,
arXiv:2006.01287) shows exactly how much tail-corrupted data degrades MF
factors.  The gate sits between ingest and the model and decides, per
sample, one of:

* **admit** — the value is consistent with what this user and this service
  have been producing; apply it unchanged.
* **clip** — the value is suspicious but not wild; admit it with its
  normalized value clamped into the entity's plausible band, bounding the
  influence any single sample can exert on an update (the β-divergence
  idea of Peng & Wu, arXiv:2208.06778, implemented as hard clamping).
* **quarantine** — the value is far outside both entities' bands; hold it
  in a bounded buffer instead of applying it.  If the next few samples for
  the same (user, service) pair *corroborate* it (a genuine level shift
  looks like repeated consistent extremes, an outlier does not), the whole
  pending group is released into the model; otherwise it ages out when the
  buffer evicts.

Statistics are robust by construction: per-user and per-service EMA
estimates of the center and spread of the Box-Cox-normalized values
(:meth:`~repro.core.amf.AdaptiveMatrixFactorization.normalize_value`),
updated only with admitted (and already-clamped) samples, so no single
observation can move an entity's band by more than ``ema * clip_k *
spread``.

The gate is **deterministic**: decisions are a pure function of the
sample sequence and the gate state, it draws no randomness, and its full
state round-trips exactly through :meth:`SanitizerGate.state_dict` /
:meth:`SanitizerGate.restore` (floats survive JSON bit-for-bit).  That is
what lets the prediction server re-run the gate over a WAL tail after a
crash and reproduce the pre-crash admit/clip/quarantine decisions — and
therefore the pre-crash model — bit-exactly (``tests/test_recovery.py``).

Not thread-safe: the server drives it under its ingest lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.schema import QoSRecord
from repro.observability import get_registry

# Gate observability: the decision counters are the operator's first view of
# stream hygiene (a quarantine spike = someone is feeding you garbage), and
# the score histogram shows where the admit/clip/quarantine thresholds sit
# relative to live traffic.
_METRICS = get_registry()
_ADMITTED = _METRICS.counter(
    "qos_gate_admitted_total", "Samples the outlier gate admitted unchanged"
)
_CLIPPED = _METRICS.counter(
    "qos_gate_clipped_total",
    "Samples admitted with their value clamped into the plausible band",
)
_QUARANTINED = _METRICS.counter(
    "qos_gate_quarantined_total", "Samples diverted into the quarantine buffer"
)
_RELEASED = _METRICS.counter(
    "qos_gate_released_total",
    "Quarantined samples released into the model after corroboration",
)
_EVICTED = _METRICS.counter(
    "qos_gate_evicted_total",
    "Quarantined samples dropped when the bounded buffer evicted their pair",
)
_SCORE = _METRICS.histogram(
    "qos_gate_score",
    "Robust residual score (spread multiples) of gated samples",
)
_QUARANTINE_SIZE = _METRICS.gauge(
    "qos_gate_quarantine_size", "Samples currently held in quarantine"
)


@dataclass(frozen=True, slots=True)
class GateConfig:
    """Tuning knobs for the :class:`SanitizerGate`.

    Attributes:
        warmup:          samples an entity must contribute before its band
                         participates in gating; colder entities admit
                         everything (and build statistics).
        ema:             EMA step for the center/spread trackers.  Smaller
                         is more stable, larger adapts faster to genuine
                         drift.
        clip_k:          spread multiples beyond which a sample is clamped
                         rather than admitted verbatim.
        quarantine_k:    spread multiples beyond which a sample is
                         quarantined instead of clamped.
        min_spread:      floor on the spread estimate (normalized units) so
                         an entity with near-constant history doesn't
                         quarantine every harmless wobble.
        quarantine_max:  total samples the quarantine buffer may hold; the
                         oldest pair is evicted (dropped for good) beyond
                         this.
        corroborate:     consecutive consistent extreme samples of the same
                         (user, service) pair required to release the pair's
                         quarantined group into the model.
        corroborate_tol: closeness (normalized units) within which a new
                         extreme sample counts as corroborating the pending
                         group.
    """

    warmup: int = 8
    ema: float = 0.05
    clip_k: float = 4.0
    quarantine_k: float = 8.0
    min_spread: float = 0.02
    quarantine_max: int = 256
    corroborate: int = 3
    corroborate_tol: float = 0.08

    def __post_init__(self) -> None:
        if self.warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {self.warmup}")
        if not (0.0 < self.ema <= 1.0):
            raise ValueError(f"ema must be in (0, 1], got {self.ema}")
        if self.clip_k <= 0:
            raise ValueError(f"clip_k must be positive, got {self.clip_k}")
        if self.quarantine_k < self.clip_k:
            raise ValueError(
                f"quarantine_k ({self.quarantine_k}) must be >= clip_k "
                f"({self.clip_k})"
            )
        if self.min_spread <= 0:
            raise ValueError(f"min_spread must be positive, got {self.min_spread}")
        if self.quarantine_max < 1:
            raise ValueError(
                f"quarantine_max must be >= 1, got {self.quarantine_max}"
            )
        if self.corroborate < 2:
            raise ValueError(f"corroborate must be >= 2, got {self.corroborate}")
        if self.corroborate_tol <= 0:
            raise ValueError(
                f"corroborate_tol must be positive, got {self.corroborate_tol}"
            )


@dataclass(slots=True)
class GateDecision:
    """Outcome of gating one sample.

    ``action`` is ``"admit"``, ``"clip"``, ``"quarantine"``, or
    ``"release"``; ``value`` is the (possibly clamped) raw value to apply
    for the current sample when it is admitted; ``released`` lists
    previously quarantined records to apply *before* the current one when a
    corroborated group is released; ``score`` is the robust residual score
    that drove the decision (NaN while either entity is still warming up).
    """

    action: str
    value: float
    released: list[QoSRecord] = field(default_factory=list)
    score: float = float("nan")


class _EntityStats:
    """EMA center/spread tracker for one user or one service."""

    __slots__ = ("n", "center", "spread")

    def __init__(self, n: int = 0, center: float = 0.0, spread: float = 0.0) -> None:
        self.n = n
        self.center = center
        self.spread = spread


class SanitizerGate:
    """Admit / clip / quarantine decisions over a QoS sample stream.

    Args:
        config:      gate thresholds (:class:`GateConfig`).
        normalize:   callable mapping a raw QoS value to the model's
                     normalized ``[0, 1]`` space (Box-Cox + linear, floored)
                     — pass ``model.normalize_value``.
        denormalize: the inverse mapping for producing clamped raw values —
                     pass ``model.denormalize_value``.
    """

    def __init__(self, config: "GateConfig | None", normalize, denormalize) -> None:
        self.config = config if config is not None else GateConfig()
        self._normalize = normalize
        self._denormalize = denormalize
        self._users: dict[int, _EntityStats] = {}
        self._services: dict[int, _EntityStats] = {}
        # pair -> pending [timestamp, raw value, normalized value] triples,
        # in arrival order; dict insertion order doubles as the FIFO for
        # whole-pair eviction when the buffer overflows.
        self._pending: dict[tuple[int, int], list[list[float]]] = {}
        self._held = 0
        self.counts: dict[str, int] = {
            "admitted": 0,
            "clipped": 0,
            "quarantined": 0,
            "released": 0,
            "evicted": 0,
        }

    # -- statistics ----------------------------------------------------------
    def _band(self, stats: _EntityStats) -> tuple[float, float]:
        spread = max(stats.spread, self.config.min_spread)
        k = self.config.clip_k
        return stats.center - k * spread, stats.center + k * spread

    def _score(self, stats: _EntityStats, x: float) -> float:
        return abs(x - stats.center) / max(stats.spread, self.config.min_spread)

    def _update(self, stats: _EntityStats, x: float, bound: bool = True) -> None:
        """Fold one accepted normalized value into an entity's trackers.

        ``bound=True`` clamps the update input into the current band first,
        so a single sample can shift the center by at most
        ``ema * clip_k * spread`` — the influence bound that keeps the
        trackers robust even when the clip threshold mis-fires.
        """
        if stats.n == 0:
            stats.center = x
            stats.spread = self.config.min_spread
        else:
            if bound and stats.n >= self.config.warmup:
                lo, hi = self._band(stats)
                x = min(max(x, lo), hi)
            ema = self.config.ema
            stats.spread = (1.0 - ema) * stats.spread + ema * abs(x - stats.center)
            if stats.spread < self.config.min_spread:
                stats.spread = self.config.min_spread
            stats.center = (1.0 - ema) * stats.center + ema * x
        stats.n += 1

    def _stats_for(self, record: QoSRecord) -> tuple[_EntityStats, _EntityStats]:
        user = self._users.get(record.user_id)
        if user is None:
            user = self._users[record.user_id] = _EntityStats()
        service = self._services.get(record.service_id)
        if service is None:
            service = self._services[record.service_id] = _EntityStats()
        return user, service

    # -- quarantine ----------------------------------------------------------
    @property
    def quarantine_size(self) -> int:
        """Samples currently held in the quarantine buffer."""
        return self._held

    def _evict_over_budget(self) -> None:
        while self._held > self.config.quarantine_max and self._pending:
            oldest = next(iter(self._pending))
            dropped = len(self._pending.pop(oldest))
            self._held -= dropped
            self.counts["evicted"] += dropped
            _EVICTED.inc(dropped)

    def _quarantine(
        self, record: QoSRecord, x: float, score: float
    ) -> GateDecision:
        pair = (record.user_id, record.service_id)
        pending = self._pending.get(pair)
        entry = [record.timestamp, record.value, x]
        if pending:
            mean_x = sum(item[2] for item in pending) / len(pending)
            if abs(x - mean_x) <= self.config.corroborate_tol:
                pending.append(entry)
                self._held += 1
                if len(pending) >= self.config.corroborate:
                    # Corroborated level shift: release the whole group.
                    del self._pending[pair]
                    self._held -= len(pending)
                    released = [
                        QoSRecord(
                            timestamp=item[0],
                            user_id=record.user_id,
                            service_id=record.service_id,
                            value=item[1],
                        )
                        for item in pending[:-1]
                    ]
                    user, service = self._stats_for(record)
                    for item in pending:
                        # Unbounded updates: the trackers must chase the new
                        # level, not clamp it back into the stale band.
                        self._update(user, item[2], bound=False)
                        self._update(service, item[2], bound=False)
                    self.counts["released"] += len(pending)
                    _RELEASED.inc(len(pending))
                    _QUARANTINE_SIZE.set(self._held)
                    return GateDecision(
                        "release", record.value, released=released, score=score
                    )
            else:
                # Inconsistent with the pending group: the group was noise.
                # Start over from the current sample.
                self._held -= len(pending)
                self.counts["evicted"] += len(pending)
                _EVICTED.inc(len(pending))
                del self._pending[pair]
                self._pending[pair] = [entry]
                self._held += 1
        else:
            self._pending[pair] = [entry]
            self._held += 1
        self.counts["quarantined"] += 1
        _QUARANTINED.inc()
        self._evict_over_budget()
        _QUARANTINE_SIZE.set(self._held)
        return GateDecision("quarantine", record.value, score=score)

    # -- the gate ------------------------------------------------------------
    def process(self, record: QoSRecord) -> GateDecision:
        """Decide one sample.  Deterministic; mutates the gate state."""
        x = float(self._normalize(record.value))
        user, service = self._stats_for(record)
        if user.n < self.config.warmup or service.n < self.config.warmup:
            self._update(user, x)
            self._update(service, x)
            self.counts["admitted"] += 1
            _ADMITTED.inc()
            return GateDecision("admit", record.value)
        score = max(self._score(user, x), self._score(service, x))
        _SCORE.observe(score)
        if score > self.config.quarantine_k:
            return self._quarantine(record, x, score)
        if score > self.config.clip_k:
            user_lo, user_hi = self._band(user)
            service_lo, service_hi = self._band(service)
            lo = max(user_lo, service_lo)
            hi = min(user_hi, service_hi)
            if lo > hi:  # disjoint bands: split the difference
                clamped = 0.5 * (lo + hi)
            else:
                clamped = min(max(x, lo), hi)
            clamped = min(max(clamped, 0.0), 1.0)
            self._update(user, clamped)
            self._update(service, clamped)
            self.counts["clipped"] += 1
            _CLIPPED.inc()
            return GateDecision(
                "clip", float(self._denormalize(clamped)), score=score
            )
        self._update(user, x)
        self._update(service, x)
        self.counts["admitted"] += 1
        _ADMITTED.inc()
        return GateDecision("admit", record.value, score=score)

    # -- per-entity export/import (hot/cold tiering) -------------------------
    def _drop_pending_for(self, entity_id: int, index: int) -> None:
        """Evict every pending quarantine pair involving ``entity_id``.

        ``index`` selects the pair component (0 = user, 1 = service).  A
        demoted entity's pending extremes can never corroborate (its next
        sample revives it with freshly imported stats), so holding them
        would leak quarantine budget; dropping is deterministic and counted
        as eviction, same as FIFO overflow.
        """
        stale = [pair for pair in self._pending if pair[index] == entity_id]
        for pair in stale:
            dropped = len(self._pending.pop(pair))
            self._held -= dropped
            self.counts["evicted"] += dropped
            _EVICTED.inc(dropped)
        if stale:
            _QUARANTINE_SIZE.set(self._held)

    def export_user(self, user_id: int) -> "list | None":
        """Remove and return a user's tracker as ``[n, center, spread]``.

        ``None`` when the gate has never seen the user.  Pending quarantine
        pairs involving the user are evicted (see :meth:`_drop_pending_for`).
        Used by the tiering layer to carry gate state through the spill
        store so a revived entity resumes gating exactly where it left off.
        """
        stats = self._users.pop(user_id, None)
        self._drop_pending_for(user_id, 0)
        if stats is None:
            return None
        return [stats.n, stats.center, stats.spread]

    def export_service(self, service_id: int) -> "list | None":
        """Remove and return a service's tracker (see :meth:`export_user`)."""
        stats = self._services.pop(service_id, None)
        self._drop_pending_for(service_id, 1)
        if stats is None:
            return None
        return [stats.n, stats.center, stats.spread]

    def peek_user(self, user_id: int) -> "list | None":
        """Read a user's tracker as ``[n, center, spread]`` without removal.

        Unlike :meth:`export_user` this leaves the tracker (and any pending
        quarantine pairs) untouched — used by entity migration to snapshot
        gate state while the source shard keeps serving the entity.
        """
        stats = self._users.get(user_id)
        if stats is None:
            return None
        return [stats.n, stats.center, stats.spread]

    def peek_service(self, service_id: int) -> "list | None":
        """Read a service's tracker without removal (see :meth:`peek_user`)."""
        stats = self._services.get(service_id)
        if stats is None:
            return None
        return [stats.n, stats.center, stats.spread]

    def import_user(self, user_id: int, entry: "list | None") -> None:
        """Restore a user's tracker from an :meth:`export_user` triple."""
        if entry is None:
            return
        n, center, spread = entry
        self._users[user_id] = _EntityStats(int(n), float(center), float(spread))

    def import_service(self, service_id: int, entry: "list | None") -> None:
        """Restore a service's tracker from an :meth:`export_service` triple."""
        if entry is None:
            return
        n, center, spread = entry
        self._services[service_id] = _EntityStats(
            int(n), float(center), float(spread)
        )

    # -- persistence ---------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the full gate state.

        Floats survive ``json.dumps``/``loads`` exactly (shortest-repr
        round-trip), so a restored gate reproduces future decisions
        bit-for-bit.
        """
        return {
            "users": [
                [uid, s.n, s.center, s.spread] for uid, s in self._users.items()
            ],
            "services": [
                [sid, s.n, s.center, s.spread]
                for sid, s in self._services.items()
            ],
            "pending": [
                [pair[0], pair[1], [list(item) for item in entries]]
                for pair, entries in self._pending.items()
            ],
            "counts": dict(self.counts),
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`state_dict` snapshot (replaces current state)."""
        self._users = {
            int(uid): _EntityStats(int(n), float(center), float(spread))
            for uid, n, center, spread in state.get("users", [])
        }
        self._services = {
            int(sid): _EntityStats(int(n), float(center), float(spread))
            for sid, n, center, spread in state.get("services", [])
        }
        self._pending = {
            (int(u), int(s)): [
                [float(t), float(v), float(x)] for t, v, x in entries
            ]
            for u, s, entries in state.get("pending", [])
        }
        self._held = sum(len(entries) for entries in self._pending.values())
        counts = state.get("counts", {})
        for key in self.counts:
            self.counts[key] = int(counts.get(key, 0))
        _QUARANTINE_SIZE.set(self._held)


def apply_observation(model, gate: "SanitizerGate | None", record: QoSRecord):
    """Route one validated observation through the gate into a model.

    The single code path shared by live ingestion and WAL-tail recovery —
    identical inputs must produce identical model state on both, which is
    the crash-recovery contract.  ``model`` may be a raw
    :class:`~repro.core.amf.AdaptiveMatrixFactorization` or a
    :class:`~repro.core.daemon.ConcurrentModel`; only ``observe`` is used.

    Returns ``(action, applied)`` where ``applied`` is the list of
    ``(record, sample_error)`` pairs actually given to the model, in apply
    order (released quarantined records first, then the current sample
    unless it was quarantined).
    """
    if gate is None:
        return "admit", [(record, model.observe(record))]
    decision = gate.process(record)
    applied = [(released, model.observe(released)) for released in decision.released]
    if decision.action == "quarantine":
        return decision.action, applied
    if decision.value != record.value:
        record = QoSRecord(
            timestamp=record.timestamp,
            user_id=record.user_id,
            service_id=record.service_id,
            value=decision.value,
            slice_id=record.slice_id,
        )
    applied.append((record, model.observe(record)))
    return decision.action, applied
