"""Idempotent ingest: bounded dedup ledger + timestamp hygiene policies.

At-least-once delivery is the only delivery guarantee a client over HTTP
can actually implement: a timeout after the server fsync'd the WAL leaves
the caller unable to tell whether the observation landed.  Retrying is
then only safe if the server can recognize the retry.  The
:class:`DedupLedger` gives it that memory — a bounded, insertion-ordered
set of caller-supplied idempotency keys; a key seen before is
acknowledged without touching the WAL or the model (an SGD step must not
run twice for one measurement).

The ledger is part of the durable state: keys ride in the WAL records
that carried them, so a crash-recovered server rebuilds exactly the
ledger it had, and the bounded size is enforced identically live and
during replay — which keeps recovery deterministic.

:class:`TimestampPolicy` is the companion hygiene filter: observations
stamped too far in the future (clock skew) or too stale relative to the
newest ingested sample (a replaying collector flushing an old queue) are
rejected at the boundary before they can distort the model's
time-decayed replay weights.  Both checks are off by default.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from repro.observability import get_registry

_METRICS = get_registry()
_DEDUPED = _METRICS.counter(
    "qos_ingest_deduped_total",
    "Observations acknowledged as duplicates via their idempotency key",
)
_STALE = _METRICS.counter(
    "qos_ingest_stale_total",
    "Observations rejected by the timestamp policy",
    labelnames=("reason",),
)
# Pre-bind label children so the family renders from the first scrape.
_STALE_OLD = _STALE.labels(reason="stale")
_STALE_FUTURE = _STALE.labels(reason="future")


class DedupLedger:
    """Bounded insertion-ordered set of idempotency keys.

    ``capacity`` bounds memory: beyond it the oldest key is evicted, after
    which a *very* late retry of that observation would be re-applied —
    size the ledger to cover the client's maximum retry horizon
    (`docs/operations.md`).  Not thread-safe; the server drives it under
    its ingest lock.
    """

    __slots__ = ("capacity", "_keys")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._keys: OrderedDict[str, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._keys)

    def seen(self, key: str) -> bool:
        """Whether ``key`` was already ingested (does not record it)."""
        return key in self._keys

    def add(self, key: str) -> None:
        """Record ``key`` as ingested, evicting the oldest beyond capacity.

        Called *after* the WAL append succeeds so ledger state never runs
        ahead of the log (the replay path rebuilds it from WAL records in
        the same order).
        """
        self._keys[key] = None
        self._keys.move_to_end(key)
        while len(self._keys) > self.capacity:
            self._keys.popitem(last=False)

    def note_duplicate(self) -> None:
        """Count one dedup hit in the metrics registry."""
        _DEDUPED.inc()

    def state_dict(self) -> dict:
        return {"capacity": self.capacity, "keys": list(self._keys)}

    def restore(self, state: dict) -> None:
        self.capacity = int(state.get("capacity", self.capacity))
        self._keys = OrderedDict((str(k), None) for k in state.get("keys", []))


class StaleObservation(ValueError):
    """An observation rejected by the :class:`TimestampPolicy`.

    ``reason`` is ``"stale"`` or ``"future"``; the server maps this to a
    structured 400.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True, slots=True)
class TimestampPolicy:
    """Bounds on how far an observation's timestamp may drift.

    Attributes:
        max_future_skew: seconds an observation may be stamped ahead of the
                         newest timestamp seen so far (tolerates collector
                         clock skew); ``inf`` disables the check.
        max_staleness:   seconds an observation may lag the newest timestamp
                         seen so far; ``inf`` disables the check.
    """

    max_future_skew: float = float("inf")
    max_staleness: float = float("inf")

    def __post_init__(self) -> None:
        if math.isnan(self.max_future_skew) or self.max_future_skew < 0:
            raise ValueError(
                f"max_future_skew must be >= 0, got {self.max_future_skew}"
            )
        if math.isnan(self.max_staleness) or self.max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )

    def check(self, timestamp: float, latest: float | None) -> None:
        """Raise :class:`StaleObservation` if ``timestamp`` violates policy.

        ``latest`` is the newest timestamp previously ingested (``None``
        for a cold stream — the first observation always passes).
        """
        if latest is None:
            return
        if timestamp - latest > self.max_future_skew:
            _STALE_FUTURE.inc()
            raise StaleObservation(
                "future",
                f"timestamp {timestamp} is {timestamp - latest:.3f}s ahead of "
                f"the stream head {latest} (max_future_skew="
                f"{self.max_future_skew})",
            )
        if latest - timestamp > self.max_staleness:
            _STALE_OLD.inc()
            raise StaleObservation(
                "stale",
                f"timestamp {timestamp} is {latest - timestamp:.3f}s behind "
                f"the stream head {latest} (max_staleness={self.max_staleness})",
            )
