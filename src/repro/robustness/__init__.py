"""Untrusted-stream hardening for the online prediction service.

Three independent defenses, all off by default, composing on the server's
ingest path (`docs/operations.md` § "Admission control & data hygiene"):

* :mod:`repro.robustness.gate` — streaming sanitizer + outlier gate:
  per-user/per-service robust statistics that admit, clip-and-admit, or
  quarantine each sample, deterministic across WAL replay.
* :mod:`repro.robustness.dedup` — idempotency-key dedup ledger and
  stale/out-of-order timestamp policies, making at-least-once delivery
  safe.
* :mod:`repro.robustness.admission` — token-bucket rate limiting, bounded
  ingest queue, and deadline budgets (429/503 + ``Retry-After``).
"""

from repro.robustness.admission import (
    AdmissionConfig,
    AdmissionController,
    Overloaded,
    RateLimited,
    ShedRequest,
    TokenBucket,
)
from repro.robustness.dedup import (
    DedupLedger,
    StaleObservation,
    TimestampPolicy,
)
from repro.robustness.gate import (
    GateConfig,
    GateDecision,
    SanitizerGate,
    apply_observation,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DedupLedger",
    "GateConfig",
    "GateDecision",
    "Overloaded",
    "RateLimited",
    "SanitizerGate",
    "ShedRequest",
    "StaleObservation",
    "TimestampPolicy",
    "TokenBucket",
    "apply_observation",
]
