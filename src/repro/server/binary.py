"""Persistent-connection binary transport for the prediction hot path.

The JSON/HTTP interface (:mod:`repro.server.app`) pays for a TCP handshake,
HTTP framing, and JSON encode/decode on every request.  For the serving hot
path — candidate ranking, where a client asks for predictions of one user
against many services — this module adds a length-prefixed binary protocol
over a plain TCP socket that a client opens once and reuses:

Frame (both directions)::

    +-------+---------+--------+-----------------+---------+
    | magic | version | opcode | body length     | body    |
    | "QP"  | 0x01    | 1 byte | uint32 (big-e.) | ...     |
    +-------+---------+--------+-----------------+---------+

header = ``struct('!2sBBI')`` = 8 bytes.  Response opcode = request opcode
with the high bit set (``| 0x80``); errors use opcode ``0x7F`` regardless
of the request.

Request bodies (all integers fixed-width, predictions float64):

* ``PING (0x01)`` — empty body; response body empty.  Liveness + version
  negotiation.
* ``PREDICT_BATCH (0x02)`` — ``struct('!qI')`` user_id, count, then
  ``count`` int64 service ids (``'!%dq'``).  Response: ``struct('!I')``
  count, then ``count`` float64 predictions, then ``count`` uint8 source
  codes (see :data:`SOURCE_CODES`).  Columnar, so the client decodes the
  whole batch with two ``struct`` calls — no per-element parsing.
* ``OBSERVE (0x03)`` — ``struct('!dqqdH')`` timestamp, user_id,
  service_id, value, key length, then the UTF-8 idempotency key (empty =
  no key).  Response: ``struct('!dB')`` sample_error (NaN when the gate
  withheld it) + action code (:data:`ACTION_CODES`).
* ``ERROR (0x7F)`` response — ``struct('!H')`` status (the HTTP status the
  JSON API would have returned: 400, 409, 413, 429, 503, 507, 500...)
  followed by the UTF-8 JSON error body, so binary clients get the same
  structured refusals (fencing codes, retry hints) as HTTP clients.

The transport is an accelerator, not a second API: every request is
answered by the *same* server methods as the HTTP routes, so fencing,
admission control, degraded mode, and the fallback chain behave
identically on both transports.  Stdlib-only (``socket`` + ``struct``);
one daemon thread per connection, mirroring ``ThreadingHTTPServer``.
"""

from __future__ import annotations

import json
import math
import socket
import struct
import threading

from repro.observability import get_registry

MAGIC = b"QP"
PROTOCOL_VERSION = 1

OP_PING = 0x01
OP_PREDICT_BATCH = 0x02
OP_OBSERVE = 0x03
OP_ERROR = 0x7F
RESPONSE_FLAG = 0x80

_HEADER = struct.Struct("!2sBBI")
_PREDICT_REQ_HEAD = struct.Struct("!qI")
_PREDICT_RESP_HEAD = struct.Struct("!I")
_OBSERVE_REQ = struct.Struct("!dqqdH")
_OBSERVE_RESP = struct.Struct("!dB")
_ERROR_HEAD = struct.Struct("!H")

#: Bound on a single frame body; a length prefix beyond this is a protocol
#: violation (or garbage), not a request worth buffering.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Wire encoding of the fallback-chain source strings (uint8 per answer).
SOURCE_CODES = {
    "model": 0,
    "user_service_mean": 1,
    "user_mean": 2,
    "service_mean": 3,
    "global_mean": 4,
    "prior": 5,
}
SOURCE_NAMES = {code: name for name, code in SOURCE_CODES.items()}
SOURCE_UNKNOWN = 255

ACTION_CODES = {
    "admit": 0,
    "clip": 1,
    "quarantine": 2,
    "release": 3,
    "deduplicated": 4,
}
ACTION_NAMES = {code: name for name, code in ACTION_CODES.items()}
ACTION_UNKNOWN = 255

_METRICS = get_registry()
_TRANSPORT_REQUESTS = _METRICS.counter(
    "qos_transport_requests_total",
    "Requests served, by transport",
    labelnames=("transport",),
)
TRANSPORT_JSON_REQUESTS = _TRANSPORT_REQUESTS.labels(transport="json")
TRANSPORT_BINARY_REQUESTS = _TRANSPORT_REQUESTS.labels(transport="binary")
_TRANSPORT_MODE = _METRICS.gauge(
    "qos_transport_mode",
    "Whether a transport is enabled on this server (1/0)",
    labelnames=("transport",),
)


class ProtocolError(Exception):
    """The peer sent bytes that are not a valid protocol frame."""


class FrameTooLarge(ProtocolError):
    """A well-formed header declared a body beyond :data:`MAX_FRAME_BYTES`.

    Unlike bad magic or a version mismatch, the stream is *not* corrupt —
    the header parsed, so exactly ``length`` body bytes follow and the
    server can drain them and answer with a framed 413 (the HTTP
    request-too-large equivalent) instead of dropping the connection.
    """

    def __init__(self, length: int) -> None:
        super().__init__(
            f"frame body of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
        self.length = length


def pack_frame(opcode: int, body: bytes = b"") -> bytes:
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, opcode, len(body)) + body


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _drain_exact(sock: socket.socket, count: int) -> None:
    """Read and discard ``count`` bytes (no buffering — the length prefix
    is attacker-controlled up to 4 GiB)."""
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        remaining -= len(chunk)


def read_frame(sock: socket.socket) -> "tuple[int, bytes] | None":
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = _recv_exact(sock, _HEADER.size)
    except ConnectionError:
        return None
    magic, version, opcode, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(length)
    body = _recv_exact(sock, length) if length else b""
    return opcode, body


def pack_predict_request(user_id: int, service_ids) -> bytes:
    body = _PREDICT_REQ_HEAD.pack(user_id, len(service_ids))
    body += struct.pack(f"!{len(service_ids)}q", *service_ids)
    return pack_frame(OP_PREDICT_BATCH, body)


def unpack_predict_request(body: bytes) -> tuple[int, list[int]]:
    if len(body) < _PREDICT_REQ_HEAD.size:
        raise ProtocolError("truncated PREDICT_BATCH body")
    user_id, count = _PREDICT_REQ_HEAD.unpack_from(body)
    expected = _PREDICT_REQ_HEAD.size + 8 * count
    if len(body) != expected:
        raise ProtocolError(
            f"PREDICT_BATCH body of {len(body)} bytes, expected {expected}"
        )
    service_ids = list(
        struct.unpack_from(f"!{count}q", body, _PREDICT_REQ_HEAD.size)
    )
    return user_id, service_ids


def pack_predict_response(predictions, source_codes) -> bytes:
    count = len(predictions)
    body = (
        _PREDICT_RESP_HEAD.pack(count)
        + struct.pack(f"!{count}d", *predictions)
        + bytes(source_codes)
    )
    return pack_frame(OP_PREDICT_BATCH | RESPONSE_FLAG, body)


def unpack_predict_response(body: bytes) -> tuple[list[float], list[int]]:
    if len(body) < _PREDICT_RESP_HEAD.size:
        raise ProtocolError("truncated PREDICT_BATCH response")
    (count,) = _PREDICT_RESP_HEAD.unpack_from(body)
    expected = _PREDICT_RESP_HEAD.size + 9 * count
    if len(body) != expected:
        raise ProtocolError(
            f"PREDICT_BATCH response of {len(body)} bytes, expected {expected}"
        )
    predictions = list(struct.unpack_from(f"!{count}d", body, _PREDICT_RESP_HEAD.size))
    codes = list(body[_PREDICT_RESP_HEAD.size + 8 * count :])
    return predictions, codes


def pack_observe_request(
    timestamp: float,
    user_id: int,
    service_id: int,
    value: float,
    key: "str | None" = None,
) -> bytes:
    encoded = key.encode("utf-8") if key else b""
    if len(encoded) > 0xFFFF:
        raise ProtocolError("idempotency key exceeds 65535 bytes")
    body = _OBSERVE_REQ.pack(timestamp, user_id, service_id, value, len(encoded))
    return pack_frame(OP_OBSERVE, body + encoded)


def unpack_observe_request(body: bytes) -> tuple[float, int, int, float, "str | None"]:
    if len(body) < _OBSERVE_REQ.size:
        raise ProtocolError("truncated OBSERVE body")
    timestamp, user_id, service_id, value, key_length = _OBSERVE_REQ.unpack_from(body)
    expected = _OBSERVE_REQ.size + key_length
    if len(body) != expected:
        raise ProtocolError(f"OBSERVE body of {len(body)} bytes, expected {expected}")
    key = body[_OBSERVE_REQ.size :].decode("utf-8") if key_length else None
    return timestamp, user_id, service_id, value, key


def pack_error(status: int, payload: dict) -> bytes:
    body = _ERROR_HEAD.pack(status) + json.dumps(payload).encode("utf-8")
    return pack_frame(OP_ERROR, body)


def unpack_error(body: bytes) -> tuple[int, dict]:
    if len(body) < _ERROR_HEAD.size:
        raise ProtocolError("truncated ERROR body")
    (status,) = _ERROR_HEAD.unpack_from(body)
    try:
        payload = json.loads(body[_ERROR_HEAD.size :].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        payload = {"error": "malformed error payload"}
    return status, payload


class BinaryServerError(Exception):
    """Raised by the client when the server answered with an error frame."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"binary transport error {status}: {payload.get('error')}")
        self.status = status
        self.payload = payload


class BinaryTransportServer:
    """TCP listener speaking the frame protocol above.

    ``backend`` is the owning :class:`~repro.server.app.PredictionServer`;
    every decoded request is answered through its ``_binary_*`` methods so
    both transports share one behavior (fallback chain, fencing, admission,
    degraded mode).  One daemon thread accepts; one daemon thread per
    connection serves until the peer hangs up.
    """

    def __init__(self, backend, host: str = "127.0.0.1", port: int = 0) -> None:
        self._backend = backend
        self._host = host
        self._port = port
        self._listener: "socket.socket | None" = None
        self._accept_thread: "threading.Thread | None" = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._connections: set[socket.socket] = set()

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("binary transport is not running")
        return self._listener.getsockname()[0], self._listener.getsockname()[1]

    @property
    def running(self) -> bool:
        return self._listener is not None

    def start(self) -> None:
        if self._listener is not None:
            return
        self._stopping.clear()
        listener = socket.create_server(
            (self._host, self._port), backlog=128, reuse_port=False
        )
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="qos-binary-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        self._stopping.set()
        listener = self._listener
        if listener is not None:
            self._listener = None
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set() and listener is not None:
            try:
                conn, __ = listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="qos-binary-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    frame = read_frame(conn)
                except FrameTooLarge as exc:
                    # The header parsed, so the stream is still in sync:
                    # drain the declared body and refuse with a framed 413
                    # — the connection stays usable, matching the HTTP
                    # API's request-too-large behavior.
                    try:
                        _drain_exact(conn, exc.length)
                        conn.sendall(
                            pack_error(
                                413,
                                {
                                    "error": str(exc),
                                    "max_frame_bytes": MAX_FRAME_BYTES,
                                },
                            )
                        )
                    except (OSError, ConnectionError):
                        return
                    continue
                except ProtocolError as exc:
                    # Framing is gone — answer once, then drop the
                    # connection (resync inside a corrupt stream is
                    # guesswork).
                    try:
                        conn.sendall(pack_error(400, {"error": str(exc)}))
                    except OSError:
                        pass
                    return
                except OSError:
                    return
                if frame is None:
                    return
                opcode, body = frame
                try:
                    response = self._handle(opcode, body)
                except ProtocolError as exc:
                    try:
                        conn.sendall(pack_error(400, {"error": str(exc)}))
                    except OSError:
                        pass
                    return
                except Exception as exc:  # noqa: BLE001 — keep the conn alive
                    response = pack_error(
                        500,
                        {"error": f"internal error: {type(exc).__name__}: {exc}"},
                    )
                try:
                    conn.sendall(response)
                except OSError:
                    return
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, opcode: int, body: bytes) -> bytes:
        TRANSPORT_BINARY_REQUESTS.inc()
        if opcode == OP_PING:
            return pack_frame(OP_PING | RESPONSE_FLAG)
        if opcode == OP_PREDICT_BATCH:
            user_id, service_ids = unpack_predict_request(body)
            status, payload = self._backend._binary_predict_batch(
                user_id, service_ids
            )
            if status != 200:
                return pack_error(status, payload)
            predictions, source_codes = payload
            return pack_predict_response(predictions, source_codes)
        if opcode == OP_OBSERVE:
            timestamp, user_id, service_id, value, key = unpack_observe_request(body)
            status, payload = self._backend._binary_observe(
                timestamp, user_id, service_id, value, key
            )
            if status != 200:
                return pack_error(status, payload)
            error = payload.get("sample_error")
            action = ACTION_CODES.get(payload.get("action"), ACTION_UNKNOWN)
            return pack_frame(
                OP_OBSERVE | RESPONSE_FLAG,
                _OBSERVE_RESP.pack(
                    float("nan") if error is None else float(error), action
                ),
            )
        raise ProtocolError(f"unknown opcode 0x{opcode:02x}")


def set_transport_mode(json_enabled: bool, binary_enabled: bool) -> None:
    """Publish which transports this server exposes (``qos_transport_mode``)."""
    _TRANSPORT_MODE.labels(transport="json").set(1.0 if json_enabled else 0.0)
    _TRANSPORT_MODE.labels(transport="binary").set(1.0 if binary_enabled else 0.0)


class BinaryConnection:
    """Client side: one persistent connection, thread-safe request/response.

    Used by :class:`~repro.server.client.PredictionClient` when its
    ``transport`` allows binary; usable directly for custom tooling::

        with BinaryConnection(("127.0.0.1", 9201)) as conn:
            values, sources = conn.predict_batch(3, [0, 1, 2])
    """

    def __init__(self, address: tuple[str, int], timeout: float = 10.0) -> None:
        self._address = (address[0], int(address[1]))
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: "socket.socket | None" = None

    def connect(self) -> None:
        with self._lock:
            self._ensure_locked()

    def _ensure_locked(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self._address, timeout=self._timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __enter__(self) -> "BinaryConnection":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(self, frame: bytes, expected_opcode: int) -> bytes:
        """Send one frame, read one response; drop the socket on any error
        so the next call reconnects from a clean frame boundary."""
        with self._lock:
            sock = self._ensure_locked()
            try:
                sock.sendall(frame)
                response = read_frame(sock)
            except (OSError, ProtocolError):
                self._sock = None
                try:
                    sock.close()
                except OSError:
                    pass
                raise
            if response is None:
                self._sock = None
                try:
                    sock.close()
                except OSError:
                    pass
                raise ConnectionError("server closed the connection")
        opcode, body = response
        if opcode == OP_ERROR:
            raise BinaryServerError(*unpack_error(body))
        if opcode != expected_opcode:
            self.close()
            raise ProtocolError(f"unexpected response opcode 0x{opcode:02x}")
        return body

    def ping(self) -> bool:
        self._roundtrip(pack_frame(OP_PING), OP_PING | RESPONSE_FLAG)
        return True

    def predict_batch(
        self, user_id: int, service_ids
    ) -> tuple[list[float], list[str]]:
        body = self._roundtrip(
            pack_predict_request(user_id, service_ids),
            OP_PREDICT_BATCH | RESPONSE_FLAG,
        )
        predictions, codes = unpack_predict_response(body)
        if len(predictions) != len(service_ids):
            raise ProtocolError(
                f"server answered {len(predictions)} predictions for "
                f"{len(service_ids)} ids"
            )
        sources = [SOURCE_NAMES.get(code, "unknown") for code in codes]
        return predictions, sources

    def observe(
        self,
        timestamp: float,
        user_id: int,
        service_id: int,
        value: float,
        key: "str | None" = None,
    ) -> dict:
        body = self._roundtrip(
            pack_observe_request(timestamp, user_id, service_id, value, key),
            OP_OBSERVE | RESPONSE_FLAG,
        )
        if len(body) != _OBSERVE_RESP.size:
            raise ProtocolError("truncated OBSERVE response")
        error, action = _OBSERVE_RESP.unpack(body)
        return {
            "sample_error": None if math.isnan(error) else error,
            "action": ACTION_NAMES.get(action, "unknown"),
        }
