"""Primary/standby replication with fenced failover for the prediction server.

PR 2's WAL + checkpoints give a crashed server *recovery*; this module
gives the deployment *availability*: while one `PredictionServer` (the
**primary**) ingests observations, one or more **warm standbys**
continuously pull its committed WAL records over the existing HTTP layer
and apply them through the same gated replay the recovery path uses.  A
standby is therefore a live replica — model factors, `SanitizerGate`
statistics, dedup ledger, and drift window all within a bounded
replication lag of the primary — and a node failure degrades prediction
latency, not correctness.

Design points:

* **Log shipping, not state shipping.**  The primary exposes
  ``GET /replication/wal?after_seq=N`` serving committed (fsync'd) WAL
  records; the standby appends each one to its *own* WAL before applying
  it, so the standby's data directory is byte-for-byte the same log and
  its own crash recovery works unchanged.  Because replay of raw records
  through the deterministic gate is exactly the recovery path, a caught-up
  standby's model is *bit-exact* with the primary's.
* **Fenced failover.**  Split brain is prevented by a monotonic epoch
  token in a shared :class:`EpochStore` (a stand-in for a lock service: a
  tiny file with an atomic compare-and-swap).  A standby promotes only by
  winning ``CAS(epoch, epoch+1)``; the new epoch is persisted in its next
  checkpoint (serialization format v4).  A deposed primary that comes back
  finds a higher epoch in the store and starts **fenced**: predictions
  keep serving, observation writes are refused with a structured 409
  ``stale_epoch`` — it can never diverge the cluster.
* **At-least-once across promotion.**  The dedup ledger rides the shipped
  WAL records, so a client retrying an idempotency-keyed observation
  against the promoted standby is acknowledged without a second SGD step.

The wiring lives in :class:`~repro.server.app.PredictionServer`
(``replication=ReplicationConfig(...)``); the chaos drill in
:func:`repro.simulation.faults.run_failover`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.datasets.schema import QoSRecord
from repro.observability import get_registry

# Replication observability.  Registered at import time (app.py imports
# this module), so every server process renders the families even at zero
# — the chaos drills treat their absence as a wiring regression.
_METRICS = get_registry()
_EPOCH = _METRICS.gauge(
    "qos_replication_epoch", "Fencing epoch this node believes is current"
)
_LAG = _METRICS.gauge(
    "qos_replication_lag_records",
    "Records the standby still has to apply to match the primary",
)
_SHIPPED = _METRICS.counter(
    "qos_replication_records_shipped_total",
    "Committed WAL records served to standbys by this node",
)
_APPLIED = _METRICS.counter(
    "qos_replication_records_applied_total",
    "Shipped WAL records applied by this node as a standby",
)
_FETCH_ERRORS = _METRICS.counter(
    "qos_replication_fetch_errors_total",
    "Standby pull attempts that failed (primary down, partition, bad batch)",
)
_PROMOTIONS = _METRICS.counter(
    "qos_replication_promotions_total",
    "Standby promotions won via epoch compare-and-swap",
)
_STALE_EPOCH = _METRICS.counter(
    "qos_replication_stale_epoch_total",
    "Writes refused because this node is fenced behind the cluster epoch",
)


class FencedWrite(Exception):
    """A write refused by fencing: this node must not mutate the model.

    ``code`` is the structured discriminator the server returns in the
    409 body: ``"stale_epoch"`` (a deposed primary behind the cluster
    epoch) or ``"not_primary"`` (a standby that never was one).
    """

    def __init__(
        self,
        message: str,
        code: str,
        epoch: int,
        cluster_epoch: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.epoch = epoch
        self.cluster_epoch = cluster_epoch


class ReplicationGap(RuntimeError):
    """The primary shipped a record beyond the standby's next sequence.

    Happens only when the primary's WAL no longer holds the records the
    standby needs (e.g. segments pruned before this standby attached) —
    the standby cannot catch up by log shipping alone and stops pulling
    rather than applying a stream with a hole in it.
    """


class EpochStore:
    """File-backed monotonic fencing token with atomic compare-and-swap.

    A stand-in for the tiny slice of a coordination service failover
    actually needs: one integer epoch plus the id of the node that claimed
    it, stored as JSON, updated via an exclusive lock file +
    write-temp-then-rename.  All replicas of one cluster point at the same
    path (shared disk in the drills; in production this is where a lock
    service or a DB row would slot in).

    The CAS is what makes promotion safe with any number of racing
    standbys: exactly one ``cas(E, E+1)`` wins; every loser stays a
    standby.
    """

    def __init__(self, path: str, lock_timeout: float = 5.0) -> None:
        self.path = str(path)
        self.lock_timeout = lock_timeout
        self._lock_path = self.path + ".lock"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)

    def _acquire_file_lock(self) -> None:
        deadline = time.monotonic() + self.lock_timeout
        while True:
            try:
                fd = os.open(self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return
            except FileExistsError:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"could not lock epoch store {self.path} within "
                        f"{self.lock_timeout}s"
                    ) from None
                time.sleep(0.005)

    def _release_file_lock(self) -> None:
        try:
            os.unlink(self._lock_path)
        except FileNotFoundError:
            pass

    def _read_unlocked(self) -> dict:
        try:
            with open(self.path, encoding="utf-8") as handle:
                state = json.load(handle)
        except (FileNotFoundError, ValueError):
            return {"epoch": 0, "owner": None}
        return {
            "epoch": int(state.get("epoch", 0)),
            "owner": state.get("owner"),
        }

    def read(self) -> dict:
        """Current ``{"epoch": int, "owner": str | None}`` (0 when unset)."""
        return self._read_unlocked()

    def epoch(self) -> int:
        return self._read_unlocked()["epoch"]

    def cas(self, expected: int, new: int, owner: "str | None" = None) -> bool:
        """Atomically advance the epoch iff it still equals ``expected``.

        Returns True on success.  ``new`` must be strictly greater than
        ``expected`` — the token is monotonic by construction.
        """
        if new <= expected:
            raise ValueError(f"epoch must advance: expected={expected} new={new}")
        self._acquire_file_lock()
        try:
            current = self._read_unlocked()
            if current["epoch"] != expected:
                return False
            tmp = f"{self.path}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"epoch": int(new), "owner": owner}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            return True
        finally:
            self._release_file_lock()


@dataclass
class ReplicationConfig:
    """How one `PredictionServer` participates in a replicated cluster.

    Attributes:
        epoch_store:        path of the shared fencing token (or an
                            :class:`EpochStore`); every replica of one
                            cluster must point at the same store.
        role:               ``"primary"`` (accepts writes, ships its WAL)
                            or ``"standby"`` (pulls + applies, refuses
                            client writes until promoted).
        primary_address:    ``(host, port)`` of the primary; required for
                            standbys.
        node_id:            owner label recorded in the epoch store on
                            promotion (defaults to ``host:pid``).
        poll_interval:      seconds a standby sleeps between pulls when
                            caught up (bounds replication lag).
        batch_limit:        max records per shipped batch.
        fetch_timeout:      socket timeout for one pull.
        auto_promote_after: seconds of consecutive failed pulls after which
                            a standby promotes itself (health-check
                            timeout); ``None`` leaves promotion to the
                            operator / harness calling ``promote()``.
        fence_check_interval: how often (seconds) a live primary re-reads
                            the epoch store on its write path to detect
                            that it has been deposed.
    """

    epoch_store: "str | EpochStore"
    role: str = "primary"
    primary_address: "tuple[str, int] | None" = None
    node_id: str = ""
    poll_interval: float = 0.05
    batch_limit: int = 512
    fetch_timeout: float = 5.0
    auto_promote_after: "float | None" = None
    fence_check_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.role not in ("primary", "standby"):
            raise ValueError(f"role must be 'primary' or 'standby', got {self.role!r}")
        if self.role == "standby" and self.primary_address is None:
            raise ValueError("standby replication requires primary_address")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")
        if self.batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {self.batch_limit}")
        if not self.node_id:
            self.node_id = f"node-{os.getpid()}"

    def store(self) -> EpochStore:
        if isinstance(self.epoch_store, EpochStore):
            return self.epoch_store
        return EpochStore(self.epoch_store)


class HttpReplicaLink:
    """The standby's pull transport: fetch committed WAL batches over HTTP.

    A tiny, dependency-free client for ``GET /replication/wal``.  Kept as
    its own object so the fault-injection harness can wrap it
    (:class:`repro.simulation.faults.FaultyReplicaLink`) with partitions,
    packet loss, and slow links without touching the replicator logic.
    """

    def __init__(self, address: tuple[str, int], timeout: float = 5.0) -> None:
        host, port = address
        self._base = f"http://{host}:{port}"
        self.timeout = timeout

    def fetch(self, after_seq: int, limit: int) -> dict:
        """One pull: ``{"epoch", "role", "last_seq", "records"}``.

        Raises ``OSError`` / ``urllib.error.URLError`` on transport
        failure and ``ValueError`` on an unusable body.
        """
        url = f"{self._base}/replication/wal?after_seq={after_seq}&limit={limit}"
        with urllib.request.urlopen(url, timeout=self.timeout) as response:
            body = json.loads(response.read())
        if not isinstance(body, dict) or "records" not in body:
            raise ValueError(f"malformed replication batch: {body!r}")
        return body


class StandbyReplicator:
    """The standby's pull loop: fetch, validate, apply, repeat.

    Runs as a daemon thread owned by a standby `PredictionServer`.  Every
    shipped record is handed to the server's replicated-apply path (WAL
    append → ledger → gate → model, under the ingest lock), so standby
    state evolves exactly as the primary's did.  Tracks replication lag
    (primary ``last_seq`` minus locally applied) and consecutive fetch
    failures; with ``auto_promote_after`` set, a primary silent for that
    long triggers self-promotion via the epoch CAS.
    """

    def __init__(self, server, config: ReplicationConfig, link=None) -> None:
        self._server = server
        self.config = config
        self.link = link if link is not None else HttpReplicaLink(
            config.primary_address, timeout=config.fetch_timeout
        )
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self.records_applied = 0
        self.lag_records: "int | None" = None
        self.last_fetch_ok: "float | None" = None
        self.consecutive_failures = 0
        self.last_error: "str | None" = None
        self.gap_detected = False

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="qos-standby-replicator", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is None:
            return
        if thread is threading.current_thread():
            # Auto-promotion stops the replicator from inside its own loop;
            # the loop exits right after, so there is nothing to join.
            self._thread = None
            return
        thread.join(timeout=timeout)
        self._thread = None

    # -- the pull loop -------------------------------------------------------
    def poll_once(self) -> int:
        """One synchronous fetch+apply cycle; returns records applied.

        Public so promotion can drain the primary's tail best-effort and
        tests can drive replication deterministically without the thread.
        """
        server = self._server
        batch = self.link.fetch(
            after_seq=server.wal_last_seq, limit=self.config.batch_limit
        )
        epoch = int(batch.get("epoch", 0))
        if epoch < server.epoch:
            # A deposed primary still answering: never apply from a node
            # behind the epoch this standby has already witnessed.
            raise ValueError(
                f"refusing batch from stale epoch {epoch} < {server.epoch}"
            )
        if epoch > server.epoch:
            server.note_cluster_epoch(epoch)
        applied = 0
        for entry in batch["records"]:
            decoded = _decode_shipped(entry)
            if decoded[1] == "ev":
                seq, __, kind, data = decoded
                outcome = server.apply_replicated_event(seq, kind, data)
            else:
                seq, __, record, key = decoded
                outcome = server.apply_replicated(seq, record, key)
            if outcome == "gap":
                self.gap_detected = True
                raise ReplicationGap(
                    f"shipped seq {seq} leaves a hole after local seq "
                    f"{server.wal_last_seq}"
                )
            if outcome == "applied":
                applied += 1
                _APPLIED.inc()
        self.records_applied += applied
        self.lag_records = max(0, int(batch["last_seq"]) - server.wal_last_seq)
        _LAG.set(self.lag_records)
        self.last_fetch_ok = time.monotonic()
        self.consecutive_failures = 0
        self.last_error = None
        return applied

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                applied = self.poll_once()
            except ReplicationGap as exc:
                self.last_error = str(exc)
                _FETCH_ERRORS.inc()
                return  # unrecoverable by pulling; surfaced via status
            except Exception as exc:  # noqa: BLE001 — any pull failure counts
                self.consecutive_failures += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                _FETCH_ERRORS.inc()
                if self._should_auto_promote():
                    if self._server.promote():
                        return
                self._stop.wait(self.config.poll_interval)
                continue
            if applied == 0:
                self._stop.wait(self.config.poll_interval)

    def _should_auto_promote(self) -> bool:
        if self.config.auto_promote_after is None:
            return False
        if self.last_fetch_ok is None:
            return False
        return (
            time.monotonic() - self.last_fetch_ok >= self.config.auto_promote_after
        )

    def status(self) -> dict:
        return {
            "running": self.running,
            "records_applied": self.records_applied,
            "lag_records": self.lag_records,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "gap_detected": self.gap_detected,
        }


def encode_shipped(seq: int, record: QoSRecord, key: "str | None") -> list:
    """Wire form of one shipped WAL observation (compact JSON array)."""
    return [seq, record.timestamp, record.user_id, record.service_id,
            record.value, key]


def encode_shipped_event(seq: int, kind: str, data: dict) -> list:
    """Wire form of one shipped WAL lifecycle event.

    Two elements with a dict second — unambiguous against the 6-element
    observation form, so old-format batches still decode.
    """
    return [seq, {"ev": str(kind), "d": data}]


def _decode_shipped(entry):
    """Decode one shipped entry to ``(seq, "obs", record, key)`` or
    ``(seq, "ev", kind, data)``."""
    if len(entry) == 2 and isinstance(entry[1], dict):
        seq, body = entry
        return int(seq), "ev", str(body["ev"]), body["d"]
    seq, timestamp, user_id, service_id, value, key = entry
    record = QoSRecord(
        timestamp=float(timestamp),
        user_id=int(user_id),
        service_id=int(service_id),
        value=float(value),
    )
    return int(seq), "obs", record, (str(key) if key is not None else None)


def note_shipped(count: int) -> None:
    """Primary-side tally of records served to standbys."""
    _SHIPPED.inc(count)


def note_stale_epoch() -> None:
    _STALE_EPOCH.inc()


def note_promotion(epoch: int) -> None:
    _PROMOTIONS.inc()
    _EPOCH.set(epoch)


def note_epoch(epoch: int) -> None:
    _EPOCH.set(epoch)
