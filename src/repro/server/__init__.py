"""JSON-over-HTTP interface to the QoS prediction service (Fig. 3).

The paper's prediction module serves users "transparently through a
standard interface"; this package provides one: a threaded HTTP server
around a shared AMF model (:mod:`repro.server.app`), a matching resilient
Python client (:mod:`repro.server.client`), the durability layer —
write-ahead observation log plus atomic checkpoints — that lets the server
survive crashes (:mod:`repro.server.wal`), and the primary/standby
replication layer that lets the *deployment* survive node failures
(:mod:`repro.server.replication`)."""

from repro.server.app import PredictionServer
from repro.server.binary import BinaryConnection, BinaryServerError, ProtocolError
from repro.server.client import (
    DeadlineExceeded,
    PredictionClient,
    PredictionServiceError,
    RetryableServiceError,
    TerminalServiceError,
)
from repro.server.replication import (
    EpochStore,
    FencedWrite,
    HttpReplicaLink,
    ReplicationConfig,
    StandbyReplicator,
)
from repro.server.wal import CheckpointStore, WalAppendError, WriteAheadLog

__all__ = [
    "PredictionServer",
    "PredictionClient",
    "BinaryConnection",
    "BinaryServerError",
    "ProtocolError",
    "PredictionServiceError",
    "RetryableServiceError",
    "TerminalServiceError",
    "DeadlineExceeded",
    "WriteAheadLog",
    "WalAppendError",
    "CheckpointStore",
    "EpochStore",
    "FencedWrite",
    "HttpReplicaLink",
    "ReplicationConfig",
    "StandbyReplicator",
]
