"""JSON-over-HTTP interface to the QoS prediction service (Fig. 3).

The paper's prediction module serves users "transparently through a
standard interface"; this package provides one: a threaded HTTP server
around a shared AMF model (:mod:`repro.server.app`) and a matching Python
client (:mod:`repro.server.client`)."""

from repro.server.app import PredictionServer
from repro.server.client import PredictionClient

__all__ = ["PredictionServer", "PredictionClient"]
