"""The QoS prediction service as a fault-tolerant HTTP endpoint.

Implements the Fig. 3 interface over JSON/HTTP using only the standard
library:

=======  =====================  ==========================================
method   path                   body / query
=======  =====================  ==========================================
POST     /observations          {"timestamp", "user_id", "service_id",
                                "value"} — report one observed QoS sample
POST     /observations/batch    {"observations": [...]} — report many;
                                per-item outcomes, bad records don't abort
GET      /predictions           ?user_id=U&service_id=S — one prediction,
                                tagged with its source + confidence
POST     /predictions/batch     {"user_id", "service_ids": [...]}
GET      /status                model statistics + fault-tolerance counters
GET      /health                liveness/readiness (200 ready / 503 not)
GET      /metrics               Prometheus text exposition (version 0.0.4)
                                of every registered metric family
GET      /replication/wal       ?after_seq=N&limit=M — committed WAL
                                records for a pulling standby
GET      /replication/status    role, fencing epoch, lag (replicated mode)
GET      /migration/entities    entity ids + sample edges (tiered servers)
POST     /migration/export      {"entities": [[kind, id], ...]} — read-only
                                canonical payloads for a migration batch
POST     /migration/import      {"mid", "seq", "entities": [[kind, id,
                                payload], ...]} — idempotent batch import
POST     /migration/delete      {"entities": [...]} — drop source copies
POST     /migration/probe       {"entities": [...]} — payload fingerprints
=======  =====================  ==========================================

A :class:`~repro.core.daemon.BackgroundTrainer` replays retained samples
between requests — under a :class:`~repro.core.daemon.TrainerSupervisor`
that restarts it with capped backoff if the replay loop crashes.

Fault tolerance (``data_dir`` enables durability):

* every accepted observation is appended to a write-ahead log
  (:class:`~repro.server.wal.WriteAheadLog`) and fsync'd *before* it is
  applied to the model;
* every ``checkpoint_interval`` observations the full model state is
  checkpointed atomically (write-temp-then-rename, RNG state included) and
  covered WAL segments are pruned;
* on construction, the server reloads the latest checkpoint and replays
  the WAL tail — reconstructing the exact pre-crash model (bit-exact when
  background replay is off; with replay on, replay work since the last
  checkpoint is simply redone);
* predictions degrade through :class:`~repro.core.fallback.FallbackPredictor`
  for unknown entities or an unhealthy model instead of erroring out;
* unexpected handler exceptions return a JSON 500, never a dropped
  connection, and oversized bodies are rejected with 413 before reading.

Untrusted-stream hardening (:mod:`repro.robustness`, all opt-in):

* ``gate=`` attaches a streaming outlier gate — each observation is
  admitted, clipped into the entity's plausible band, or quarantined
  pending corroboration, *after* the raw record is WAL'd; replaying the
  WAL re-runs the same deterministic decisions, and the gate state rides
  inside every checkpoint, so recovery stays bit-exact;
* observations may carry an ``idempotency_key`` — a bounded dedup ledger
  (rebuilt from the WAL on recovery) acknowledges retries without
  re-applying the SGD step, making at-least-once client delivery safe;
  ``timestamp_policy=`` additionally rejects too-stale/too-future samples;
* ``admission=`` adds front-door load shedding on the ingest path —
  token-bucket rate limiting (429), a bounded ingest queue and per-request
  deadline budget (503), all with ``Retry-After``; predictions are never
  shed, so the fallback chain keeps serving through a flood.

High availability (:mod:`repro.server.replication`, ``replication=``):

* a **primary** ships committed WAL records from ``GET /replication/wal``
  and re-reads the shared epoch store on its write path, fencing itself
  (409 ``stale_epoch``) the moment a newer primary exists;
* a **standby** pulls and applies the primary's log through the same
  gated replay recovery uses (its own WAL stays a byte-identical copy),
  refuses client writes with 409 ``not_primary``, serves predictions,
  and :meth:`PredictionServer.promote` turns it into the primary by
  winning the epoch compare-and-swap;
* a full WAL disk degrades the server to read-only (structured 507,
  ``qos_wal_append_errors_total``) instead of a bare 500 — predictions
  keep serving.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.config import AMFConfig
from repro.core.daemon import BackgroundTrainer, ConcurrentModel, TrainerSupervisor
from repro.core.fallback import FallbackPredictor
from repro.core.online import PredictionCache
from repro.core.transform import sigmoid
from repro.datasets.schema import QoSRecord
from repro.lifecycle import (
    LifecycleConfig,
    MemoryWatchdog,
    SpillStore,
    TieredAMF,
)
from repro.observability import StreamAccuracyMonitor, get_registry
from repro.robustness import (
    AdmissionConfig,
    AdmissionController,
    DedupLedger,
    GateConfig,
    RateLimited,
    SanitizerGate,
    ShedRequest,
    StaleObservation,
    TimestampPolicy,
    apply_observation,
)
from repro.server.binary import (
    SOURCE_CODES,
    SOURCE_UNKNOWN,
    TRANSPORT_JSON_REQUESTS,
    BinaryTransportServer,
    set_transport_mode,
)
from repro.server.replication import (
    FencedWrite,
    ReplicationConfig,
    StandbyReplicator,
    encode_shipped,
    encode_shipped_event,
    note_epoch,
    note_promotion,
    note_shipped,
    note_stale_epoch,
)
from repro.server.wal import CheckpointStore, WalAppendError, WriteAheadLog

# Serving observability.  The fallback chain tags every answer with its
# source, so predictions-by-source is the one counter that shows degradation
# happening; expected_error gives the calibration distribution of the answers
# actually served (model source only — fallback answers carry their own
# coarse confidence).
_METRICS = get_registry()
_PREDICTIONS = _METRICS.counter(
    "qos_predictions_total",
    "Predictions served, by fallback-chain source",
    labelnames=("source",),
)
_PREDICTION_EXPECTED_ERROR = _METRICS.histogram(
    "qos_prediction_expected_error",
    "Expected relative error attached to model-source predictions",
)
_OBSERVATIONS_REJECTED = _METRICS.counter(
    "qos_observations_rejected_total", "Observations rejected by validation"
)
_INTERNAL_ERRORS = _METRICS.counter(
    "qos_server_internal_errors_total", "Requests that hit the HTTP 500 boundary"
)
_BATCH_SIZE = _METRICS.histogram(
    "qos_predict_batch_size",
    "Service ids per batched prediction request (both transports)",
)
# Same family repro.lifecycle registers (get-or-create returns the one
# Counter): the server is where cold-read shedding actually happens.
_COLD_READS_SHED = _METRICS.counter(
    "qos_lifecycle_cold_reads_shed_total",
    "Cold-entity revive reads shed with 429 under critical memory pressure",
)
# Entity-migration shard counters (repro.cluster.migration drives these
# endpoints; the families exist on every server so fleet aggregation and the
# chaos drill's exposition check see them at zero when no migration ran).
_MIGRATION_EXPORTS = _METRICS.counter(
    "qos_migration_exports_total",
    "Entities exported from this shard by migration batches",
)
_MIGRATION_IMPORTS = _METRICS.counter(
    "qos_migration_imports_total",
    "Entities imported into this shard by migration batches",
)
_MIGRATION_DELETES = _METRICS.counter(
    "qos_migration_deletes_total",
    "Source copies deleted on this shard after migration batch commit",
)

# WAL event kinds owned by the migration pipeline.  They live in the same
# tagged-union sequence space as lifecycle events but are applied at the
# *server* level (they also maintain the per-migration dedup ledger that
# makes batch import idempotent across crashes and replica replay).
_MIGRATION_EVENTS = ("migration_in", "migration_out")


class _BadRequest(Exception):
    """Client error with a message safe to echo back.

    ``code`` (optional) is a stable machine-readable discriminator included
    in the JSON body, so clients can branch without parsing prose.
    """

    def __init__(self, message: str, code: "str | None" = None) -> None:
        super().__init__(message)
        self.code = code


class _PayloadTooLarge(Exception):
    """Request body exceeds the configured limit (HTTP 413)."""


class _StorageUnavailable(Exception):
    """Durable ingest is impossible (WAL append failed) — HTTP 507.

    The server stays up in read-only degraded mode: predictions (and all
    GETs) keep serving, observation writes get this structured refusal
    until an operator frees disk and restarts the process.
    """


def _require(payload: dict, field: str, kind):
    if field not in payload:
        raise _BadRequest(f"missing field {field!r}")
    try:
        return kind(payload[field])
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"field {field!r} must be {kind.__name__}") from exc


def _require_observation(payload: dict) -> QoSRecord:
    """Parse and validate one observation payload into a :class:`QoSRecord`.

    Beyond type coercion, this is the API-boundary hygiene check: a NaN,
    ±inf, or negative QoS value must never reach the WAL or an SGD step —
    ``float("nan")`` coerces fine, so ``_require`` alone cannot catch it.
    """
    timestamp = _require(payload, "timestamp", float)
    value = _require(payload, "value", float)
    if not math.isfinite(timestamp):
        raise _BadRequest(
            f"field 'timestamp' must be finite, got {timestamp}",
            code="invalid_timestamp",
        )
    if not math.isfinite(value):
        raise _BadRequest(
            f"field 'value' must be finite, got {value}", code="invalid_value"
        )
    if value < 0:
        raise _BadRequest(
            f"field 'value' must be non-negative, got {value}",
            code="invalid_value",
        )
    try:
        return QoSRecord(
            timestamp=timestamp,
            user_id=_require(payload, "user_id", int),
            service_id=_require(payload, "service_id", int),
            value=value,
        )
    except ValueError as exc:
        raise _BadRequest(str(exc)) from exc


class _HeldLock:
    """Context manager releasing an already-acquired lock on exit."""

    __slots__ = ("_lock",)

    def __init__(self, lock) -> None:
        self._lock = lock

    def __enter__(self) -> "_HeldLock":
        return self

    def __exit__(self, *exc_info) -> None:
        self._lock.release()


class _NoAdmission:
    """No-op stand-in for an admission slot when admission control is off."""

    def __enter__(self) -> "_NoAdmission":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NO_ADMISSION = _NoAdmission()


def _idempotency_key(payload: dict) -> "str | None":
    key = payload.get("idempotency_key")
    if key is None:
        return None
    if not isinstance(key, str) or not key or len(key) > 256:
        raise _BadRequest(
            "field 'idempotency_key' must be a non-empty string of at most "
            "256 characters",
            code="invalid_idempotency_key",
        )
    return key


class _LifecycleHooks:
    """Bridge between the tiered model and server state keyed by external ids.

    Demoting an entity must take its sanitizer-gate statistics with it (they
    ride the spill payload and come back on revival) and drop any cached
    predictions for it — a recycled slot's version counter could otherwise
    coincide with a stale cache stamp.  Called by :class:`TieredAMF` with the
    model lock held; the gate is only ever mutated under the ingest lock
    (observe, revive, and replay all hold it), so gate order — and therefore
    ``gate.state_dict()`` — stays deterministic.
    """

    __slots__ = ("_server",)

    def __init__(self, server: "PredictionServer") -> None:
        self._server = server

    def export_user(self, user_id: int) -> "list | None":
        if self._server._predict_cache is not None:
            self._server._predict_cache.invalidate_user(user_id)
        gate = self._server.gate
        return gate.export_user(user_id) if gate is not None else None

    def export_service(self, service_id: int) -> "list | None":
        if self._server._predict_cache is not None:
            self._server._predict_cache.invalidate_service(service_id)
        gate = self._server.gate
        return gate.export_service(service_id) if gate is not None else None

    def peek_user(self, user_id: int) -> "list | None":
        """Non-destructive gate read for migration export (no cache touch)."""
        gate = self._server.gate
        return gate.peek_user(user_id) if gate is not None else None

    def peek_service(self, service_id: int) -> "list | None":
        gate = self._server.gate
        return gate.peek_service(service_id) if gate is not None else None

    def import_user(self, user_id: int, entry: "list | None") -> None:
        if self._server._predict_cache is not None:
            self._server._predict_cache.invalidate_user(user_id)
        if self._server.gate is not None and entry is not None:
            self._server.gate.import_user(user_id, entry)

    def import_service(self, service_id: int, entry: "list | None") -> None:
        if self._server._predict_cache is not None:
            self._server._predict_cache.invalidate_service(service_id)
        if self._server.gate is not None and entry is not None:
            self._server.gate.import_service(service_id, entry)


class PredictionServer:
    """Owns the model, the WAL, the supervised trainer, and the HTTP server.

    Typical use::

        server = PredictionServer(AMFConfig.for_response_time(), rng=0,
                                  data_dir="/var/lib/qos")
        server.start()                      # binds 127.0.0.1:<ephemeral>
        client = PredictionClient(server.address)
        ...
        server.stop()                       # final checkpoint + shutdown

    ``port=0`` (the default) binds an ephemeral port; read ``address``
    after ``start``.  ``data_dir=None`` disables durability (in-memory
    only, the pre-fault-tolerance behavior).  ``rng`` seeds a *fresh*
    model only — when a checkpoint exists in ``data_dir`` the checkpointed
    model (including its RNG state) wins, which is what makes recovery
    exact.

    Robustness knobs (all off by default, see :mod:`repro.robustness`):

    * ``gate`` — ``True`` for default :class:`GateConfig` thresholds, or a
      :class:`GateConfig`; attaches the streaming outlier gate.  **Keep the
      setting consistent across restarts of the same ``data_dir``** — the
      WAL stores raw pre-gate records, so replaying them without the gate
      (or with different thresholds) reconstructs a different model.
    * ``admission`` — ``True`` for default :class:`AdmissionConfig` limits,
      or an :class:`AdmissionConfig`; enables ingest load shedding.
    * ``timestamp_policy`` — a :class:`TimestampPolicy` bounding how
      stale/future observation timestamps may be.
    * ``dedup_capacity`` — idempotency-key ledger size (the ledger itself
      is always on; it costs nothing until a client sends keys).

    Hot-path serving knobs:

    * ``binary_port`` — port for the persistent-connection binary
      transport (:mod:`repro.server.binary`); 0 (default) binds an
      ephemeral port next to the HTTP listener, ``None`` disables the
      binary transport entirely.  Read ``binary_address`` after ``start``.
    * ``predict_cache_size`` — capacity of the version-stamped
      :class:`~repro.core.online.PredictionCache` fronting the batched
      predict path; ``None`` or 0 disables caching.  The cache is derived
      state: it is never checkpointed, and version stamps make entries
      self-invalidating when SGD writes move the factors.
    """

    def __init__(
        self,
        config: AMFConfig | None = None,
        rng: "int | None" = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        background_replay: bool = True,
        data_dir: "str | None" = None,
        checkpoint_interval: int = 1000,
        wal_fsync: bool = True,
        wal_fsync_delay: float = 0.0,
        supervise: bool = True,
        max_body_bytes: int = 1 << 20,
        gate: "GateConfig | bool | None" = None,
        admission: "AdmissionConfig | bool | None" = None,
        timestamp_policy: "TimestampPolicy | None" = None,
        dedup_capacity: int = 65536,
        replication: "ReplicationConfig | None" = None,
        replication_link=None,
        binary_port: "int | None" = 0,
        predict_cache_size: "int | None" = 65536,
        lifecycle: "LifecycleConfig | bool | None" = None,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if replication is not None and data_dir is None:
            raise ValueError(
                "replication requires data_dir: log shipping reads/writes the WAL"
            )
        self.checkpoint_interval = checkpoint_interval
        self.max_body_bytes = max_body_bytes

        self._wal: "WriteAheadLog | None" = None
        self._checkpoints: "CheckpointStore | None" = None
        self.recovery: dict = {"checkpoint_seq": 0, "wal_replayed": 0, "torn_lines": 0}
        model: "AdaptiveMatrixFactorization | None" = None
        applied_seq = 0
        checkpoint_extra: dict = {}
        if data_dir is not None:
            self._checkpoints = CheckpointStore(data_dir)
            restored = self._checkpoints.load_full(rng=None)
            if restored is not None:
                model, applied_seq, checkpoint_extra = restored
            self._wal = WriteAheadLog(
                data_dir, fsync=wal_fsync, fsync_delay=wal_fsync_delay
            )
        if model is None:
            model = AdaptiveMatrixFactorization(config, rng=rng)

        # Bounded-memory lifecycle (hot/cold tiering, repro.lifecycle).  The
        # wrap must happen before the WAL tail replay below: the tail can
        # contain lifecycle events (revives, pressure changes) and the
        # replayed observations must demote through the same policy that
        # produced the log.  Like the gate, the setting must stay consistent
        # across restarts of one data_dir — a flat server cannot replay a
        # tiered WAL (checked both ways below).
        if lifecycle is True:
            lifecycle = LifecycleConfig()
        self.lifecycle: "LifecycleConfig | None" = (
            lifecycle if isinstance(lifecycle, LifecycleConfig) else None
        )
        self._spill: "SpillStore | None" = None
        self._tiered: "TieredAMF | None" = None
        self._watchdog: "MemoryWatchdog | None" = None
        self._shed_cold_reads = False
        lifecycle_state = checkpoint_extra.pop("lifecycle", None)
        if self.lifecycle is None and lifecycle_state is not None:
            raise ValueError(
                "checkpoint carries hot/cold tiering state (its factor arrays "
                "are in slot space); restart with lifecycle= enabled"
            )
        if self.lifecycle is not None:
            spill_path = (
                os.path.join(data_dir, "spill.sqlite")
                if data_dir is not None
                else ":memory:"
            )
            self._spill = SpillStore(spill_path)
            model = TieredAMF.from_model(
                model, self.lifecycle, self._spill, state=lifecycle_state
            )
            self._tiered = model

        # Robustness state.  The gate binds the *raw* model's normalization
        # (pure config-derived functions, safe to call lock-free); its state
        # plus the dedup ledger ride in every checkpoint and are rebuilt to
        # the exact pre-crash values by the gated WAL replay below.
        if gate is True:
            gate = GateConfig()
        self.gate: "SanitizerGate | None" = (
            SanitizerGate(gate, model.normalize_value, model.denormalize_value)
            if gate is not None and gate is not False
            else None
        )
        self.ledger = DedupLedger(capacity=dedup_capacity)
        self.timestamp_policy = timestamp_policy
        if admission is True:
            admission = AdmissionConfig()
        self.admission: "AdmissionController | None" = (
            AdmissionController(admission)
            if admission is not None and admission is not False
            else None
        )
        robustness_state = checkpoint_extra.get("robustness", {})
        if self.gate is not None and "gate" in robustness_state:
            self.gate.restore(robustness_state["gate"])
        if "ledger" in robustness_state:
            self.ledger.restore(robustness_state["ledger"])
        self._latest_ingest_ts: "float | None" = robustness_state.get(
            "latest_ingest_ts"
        )
        # Migration import ledger: highest applied batch seq per migration
        # id.  Rides checkpoints (``extra["migration"]``) and is rebuilt by
        # the WAL replay below, so a duplicate batch POST — a coordinator
        # retry after a crash on either side — is a durable no-op.
        migration_state = checkpoint_extra.get("migration", {})
        self._migration_applied: "dict[str, int]" = {
            str(mid): int(seq)
            for mid, seq in migration_state.get("applied", {}).items()
        }

        # Replication / fencing state.  The epoch this node last held rides
        # in the checkpoint (serialization v4), so a deposed primary that
        # comes back can compare itself against the shared store and fence
        # itself before accepting a single write.
        self.replication = replication
        self.role = replication.role if replication is not None else "primary"
        self._epoch_store = replication.store() if replication is not None else None
        replication_state = checkpoint_extra.get("replication", {})
        self.epoch = int(replication_state.get("epoch", 0))
        self._fenced = False
        self._fence_checked_at = 0.0
        self._replicator: "StandbyReplicator | None" = None
        if replication is not None:
            if self.role == "primary":
                store_epoch = self._epoch_store.epoch()
                if store_epoch == 0 and self.epoch == 0:
                    # Fresh cluster: claim epoch 1.  Losing the CAS means
                    # another node claimed first — fall through to fencing.
                    if self._epoch_store.cas(0, 1, owner=replication.node_id):
                        self.epoch = 1
                    store_epoch = self._epoch_store.epoch()
                elif store_epoch < self.epoch:
                    # The store was lost/reset; re-seed it with our epoch so
                    # fencing arithmetic stays monotonic.
                    self._epoch_store.cas(
                        store_epoch, self.epoch, owner=replication.node_id
                    )
                    store_epoch = self._epoch_store.epoch()
                if store_epoch > self.epoch:
                    self._fenced = True
            else:
                self._replicator = StandbyReplicator(
                    self, replication, link=replication_link
                )
            note_epoch(self.epoch)

        # The predict cache and lifecycle hooks exist before the WAL tail
        # replay on purpose: replayed demotions must export gate statistics
        # exactly as the original run did (determinism), and cache
        # invalidation on an empty cache is a harmless no-op.
        self._predict_cache = (
            PredictionCache(predict_cache_size) if predict_cache_size else None
        )
        if self._tiered is not None:
            self._tiered.hooks = _LifecycleHooks(self)

        latest_timestamp = 0.0
        timestamps = model._store.columns()[2]
        if timestamps.size:
            latest_timestamp = float(timestamps.max())
        replayed = 0
        if self._wal is not None:
            # The WAL holds raw pre-gate records; re-running the (restored,
            # deterministic) gate over the tail reproduces the pre-crash
            # admit/clip/quarantine decisions — and therefore the pre-crash
            # model — bit-exactly.  Duplicate keys never reach the WAL, so
            # every replayed key is fresh and just rebuilds the ledger.
            # Lifecycle events are replayed in their logged interleaving;
            # revives restore from the logged payload, never from the spill
            # file (which reflects crash-time state, not this position).
            for entry in self._wal.replay_entries(after_seq=applied_seq):
                if entry[0] == "ev":
                    if self._tiered is None:
                        raise ValueError(
                            "WAL contains lifecycle events; restart with "
                            "lifecycle= enabled to replay this directory"
                        )
                    if entry[2] in _MIGRATION_EVENTS:
                        # Server-level events: they also rebuild the
                        # migration ledger, which TieredAMF doesn't own.
                        self._apply_migration_event(
                            entry[2], entry[3], self._tiered
                        )
                    else:
                        self._tiered.apply_event(entry[2], entry[3])
                    replayed += 1
                    continue
                __, __, record, key = entry
                apply_observation(model, self.gate, record)
                if key is not None:
                    self.ledger.add(key)
                latest_timestamp = max(latest_timestamp, record.timestamp)
                if (
                    self._latest_ingest_ts is None
                    or record.timestamp > self._latest_ingest_ts
                ):
                    self._latest_ingest_ts = record.timestamp
                replayed += 1
            self.recovery = {
                "checkpoint_seq": applied_seq,
                "wal_replayed": replayed,
                "torn_lines": self._wal.torn_lines,
            }
        if self._tiered is not None:
            # Startup hygiene: a crash between a revive's spill-row delete
            # and its commit leaves a row for a now-hot entity; replay never
            # consults such rows, but they would leak file space forever.
            self._spill.prune_except("user", self._tiered._spilled_users)
            self._spill.prune_except("service", self._tiered._spilled_services)

        self.model = ConcurrentModel(model)
        self.model.note_timestamp(latest_timestamp)
        self.fallback = FallbackPredictor(
            prior=float(model.normalizer.denormalize(sigmoid(0.0)))
        )
        users, services, __, values, __ = model._store.columns()
        self.fallback.seed_from_samples(users, services, values)

        # Rolling stream accuracy: each accepted observation is first
        # predicted (when the model can), then applied — a continuous
        # windowed MAE/MRE/NPRE over live traffic (drift detection).
        self.metrics = get_registry()
        self.drift = StreamAccuracyMonitor()
        self.drift.bind(self.metrics)
        # Model-shape gauges read live at scrape time.  Like the trainer's
        # replay-lag gauge, the most recently constructed server owns them.
        self.metrics.gauge(
            "qos_server_stored_samples", "Samples retained in the model's store"
        ).set_function(lambda: self.model.n_stored_samples)
        self.metrics.gauge(
            "qos_server_users", "Distinct users known to the model"
        ).set_function(lambda: self.model.n_users)
        self.metrics.gauge(
            "qos_server_services", "Distinct services known to the model"
        ).set_function(lambda: self.model.n_services)

        self.trainer = BackgroundTrainer(self.model) if background_replay else None
        self.supervisor = (
            TrainerSupervisor(self.trainer)
            if (self.trainer is not None and supervise)
            else None
        )
        self._host = host
        self._port = port
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None
        self._binary = (
            BinaryTransportServer(self, host=host, port=binary_port)
            if binary_port is not None
            else None
        )
        # Memory watchdog: resident-bytes polling against the configured
        # ceiling; tighten/critical degradation runs through WAL-logged
        # pressure events (_apply_pressure) so recovery and standbys
        # converge to the same tier assignment.  Reads are lock-free and
        # approximate — fine for a threshold controller.
        if (
            self._tiered is not None
            and self.lifecycle.memory_limit_bytes is not None
        ):
            tiered = self._tiered
            self._watchdog = MemoryWatchdog(
                self.lifecycle,
                usage=tiered.resident_bytes,
                capacities=lambda: (tiered._hot_users, tiered._hot_services),
                on_tighten=self._apply_pressure,
                on_shed=self._set_cold_read_shedding,
            )
        # Ingest lock: keeps WAL-append order identical to model-apply order
        # across handler threads (recovery replays in WAL order).  Stats
        # lock: ThreadingHTTPServer handlers increment counters from many
        # threads; unprotected += is a lost-update race.
        self._ingest_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._observations_handled = 0
        self._observations_rejected = 0
        self._observations_deduplicated = 0
        self._observations_quarantined = 0
        self._predictions_served = 0
        self._degraded_predictions = 0
        self._internal_errors = 0
        self._checkpoints_written = 0
        self._last_checkpoint_seq = applied_seq
        self._observations_since_checkpoint = 0
        self._model_healthy = True
        self._degraded_reason: "str | None" = None
        self._cold_reads_shed = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound; valid after :meth:`start`."""
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def durable(self) -> bool:
        return self._wal is not None

    @property
    def binary_address(self) -> "tuple[str, int] | None":
        """(host, port) of the binary transport; ``None`` when disabled.
        Valid after :meth:`start`."""
        if self._binary is None or not self._binary.running:
            return None
        return self._binary.address

    def start(self) -> None:
        if self._httpd is not None:
            return
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="qos-prediction-http", daemon=True
        )
        self._thread.start()
        if self._binary is not None:
            self._binary.start()
        set_transport_mode(True, self._binary is not None)
        if self.supervisor is not None:
            self.supervisor.start()
        elif self.trainer is not None:
            self.trainer.start()
        if self._replicator is not None:
            self._replicator.start()
        if self._watchdog is not None and self.role == "primary":
            # Standbys never initiate tier changes: their tiering follows the
            # primary's WAL-shipped pressure/revive events, byte for byte.
            self._watchdog.start()

    def stop(self) -> None:
        """Graceful shutdown: final checkpoint, then tear everything down."""
        self._stop_serving()
        if self.durable and self._wal.writable:
            with self._ingest_lock:
                self._checkpoint_locked()
            self._wal.close()
        if self._spill is not None:
            self._spill.close()

    def kill(self) -> None:
        """Crash simulation: stop serving *without* a final checkpoint.

        Recovery must then come entirely from the last periodic checkpoint
        plus the WAL tail — exactly the state a ``kill -9`` leaves behind.
        Used by the fault-injection harness; a real crash doesn't call
        anything at all, which this approximates as closely as an
        in-process test can.
        """
        self._stop_serving()
        if self.durable:
            self._wal.close()
        if self._spill is not None:
            # Demote batches and revives each committed at the time they
            # happened, so closing here flushes nothing new — it only frees
            # the handle so a recovering server can reopen the same file.
            self._spill.close()

    def _stop_serving(self) -> None:
        if self._watchdog is not None and self._watchdog.running:
            self._watchdog.stop()
        if self._binary is not None and self._binary.running:
            self._binary.stop()
        if self._replicator is not None and self._replicator.running:
            self._replicator.stop()
        if self.supervisor is not None and self.supervisor.running:
            self.supervisor.stop()
        elif self.trainer is not None and self.trainer.running:
            self.trainer.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "PredictionServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- durability ----------------------------------------------------------
    def _robustness_extra(self) -> dict:
        """Robustness state checkpointed alongside the model (format v3).

        Gate and ledger evolve in ingest order, so snapshotting them under
        the ingest lock at the checkpoint's WAL position keeps recovery
        deterministic: restore, then re-run the gated replay over the tail.
        """
        state: dict = {"ledger": self.ledger.state_dict()}
        if self.gate is not None:
            state["gate"] = self.gate.state_dict()
        if self._latest_ingest_ts is not None:
            state["latest_ingest_ts"] = self._latest_ingest_ts
        return state

    def _checkpoint_locked(self) -> None:
        """Write a checkpoint covering the current WAL position.

        Caller must hold the ingest lock, so no observation can slip
        between the recorded WAL sequence and the model snapshot.
        """
        if self._checkpoints is None:
            return
        seq = self._wal.last_seq
        extra = {"robustness": self._robustness_extra()}
        if self.replication is not None:
            # Control-plane state (serialization v4): the fencing epoch must
            # survive a crash so a deposed primary can recognize itself.
            extra["replication"] = {"epoch": self.epoch, "role": self.role}
        if self._migration_applied:
            # Migration dedup ledger: without it, a checkpoint that covers
            # an imported batch followed by a crash would let a coordinator
            # retry re-apply the batch.  Sorted for byte-stable archives.
            extra["migration"] = {
                "applied": dict(sorted(self._migration_applied.items()))
            }

        def _save(m: AdaptiveMatrixFactorization) -> None:
            if isinstance(m, TieredAMF):
                # Tiering state (serialization v5): the factor arrays above
                # are in slot space; without the ext<->slot maps and spilled
                # sets the checkpoint is unreadable.
                extra["lifecycle"] = m.lifecycle_state()
            self._checkpoints.save(m, seq, extra=extra)

        self.model.with_model(_save)
        if self.replication is None:
            # Replicated nodes retain their full log: a standby (or a
            # re-attaching one after promotion) catches up by shipping from
            # any sequence, which pruning would turn into an unfillable gap.
            self._wal.prune(seq)
        self._observations_since_checkpoint = 0
        with self._stats_lock:
            self._checkpoints_written += 1
            self._last_checkpoint_seq = seq

    def checkpoint(self) -> None:
        """Force a checkpoint now (also runs periodically during ingestion)."""
        with self._ingest_lock:
            self._checkpoint_locked()

    # -- replication ---------------------------------------------------------
    @property
    def wal_last_seq(self) -> int:
        """Highest durably logged sequence (0 without durability)."""
        return self._wal.last_seq if self._wal is not None else 0

    @property
    def fenced(self) -> bool:
        return self._fenced

    def note_cluster_epoch(self, epoch: int) -> None:
        """A standby learned the cluster epoch from a shipped batch."""
        if epoch > self.epoch:
            self.epoch = epoch
            note_epoch(epoch)

    def apply_replicated(
        self, seq: int, record: QoSRecord, key: "str | None"
    ) -> str:
        """Apply one shipped WAL record on a standby.

        Returns ``"applied"``, ``"skipped"`` (already durable locally), or
        ``"gap"`` (the shipment skips sequences this node never saw — the
        replicator must stop rather than apply a stream with a hole).
        Appending to the *local* WAL first keeps the standby's directory a
        byte-identical copy of the primary's log, so standby crash
        recovery and post-promotion shipping both work unchanged.
        """
        with self._ingest_lock:
            expected = self._wal.last_seq + 1
            if seq < expected:
                return "skipped"
            if seq > expected:
                return "gap"
            self._ingest_one(record, key, replicated=True)
            return "applied"

    def apply_replicated_event(self, seq: int, kind: str, data: dict) -> str:
        """Apply one shipped WAL lifecycle event on a standby.

        Same sequencing contract as :meth:`apply_replicated`.  The event is
        appended to the local WAL first (byte-identical log copy), then
        applied under the model lock — a revive restores the payload the
        primary logged, so the standby converges to the primary's exact
        tier assignment without ever initiating a revive itself.
        """
        with self._ingest_lock:
            expected = self._wal.last_seq + 1
            if seq < expected:
                return "skipped"
            if seq > expected:
                return "gap"
            if self._tiered is None:
                raise ValueError(
                    "primary ships lifecycle events but this standby has "
                    "lifecycle tiering disabled; restart with lifecycle="
                )
            self._wal.append_event(kind, data)
            if kind in _MIGRATION_EVENTS:
                self.model.with_model(
                    lambda m: self._apply_migration_event(kind, data, m)
                )
            else:
                self.model.with_model(lambda m: m.apply_event(kind, data))
            return "applied"

    def promote(self) -> bool:
        """Promote this standby to primary via the epoch compare-and-swap.

        Best-effort drains the old primary's tail first, then races
        ``CAS(E, E+1)`` against any sibling standbys; exactly one wins.
        The winner persists the new epoch in an immediate checkpoint (the
        fencing decision must survive its own crash), starts accepting
        writes, and — because its state came from gated replay of the
        shipped log — continues the stream bit-exactly where the primary
        committed.  Returns False if the CAS was lost (stay standby).
        """
        if self.replication is None or self.role != "standby":
            raise RuntimeError("promote() requires a standby with replication")
        if self._replicator is not None:
            self._replicator.stop()
            try:
                # One last drain: pick up anything committed after our last
                # poll, if the old primary is still reachable.
                while self._replicator.poll_once():
                    pass
            except Exception:  # noqa: BLE001 — a dead primary is the point
                pass
        current = max(self._epoch_store.epoch(), self.epoch)
        if not self._epoch_store.cas(
            current, current + 1, owner=self.replication.node_id
        ):
            if self._replicator is not None:
                self._replicator.start()
            return False
        with self._ingest_lock:
            self.epoch = current + 1
            self.role = "primary"
            self._fenced = False
            self._checkpoint_locked()
        note_promotion(self.epoch)
        if self._watchdog is not None and not self._watchdog.running:
            self._watchdog.start()
        return True

    def _check_write_allowed(self) -> None:
        """Fencing gate on the observation path.

        Standbys always refuse; a primary re-reads the epoch store at most
        every ``fence_check_interval`` seconds so a deposed-but-alive node
        fences itself within one interval of losing its claim.
        """
        if self.role == "standby":
            note_stale_epoch()
            raise FencedWrite(
                "this replica is a standby; route observations to the primary",
                code="not_primary",
                epoch=self.epoch,
            )
        if self._epoch_store is not None and not self._fenced:
            now = time.monotonic()
            if now - self._fence_checked_at >= self.replication.fence_check_interval:
                self._fence_checked_at = now
                if self._epoch_store.epoch() > self.epoch:
                    self._fenced = True
        if self._fenced:
            note_stale_epoch()
            raise FencedWrite(
                f"this node holds stale epoch {self.epoch}; a newer primary "
                "has been promoted",
                code="stale_epoch",
                epoch=self.epoch,
                cluster_epoch=(
                    self._epoch_store.epoch()
                    if self._epoch_store is not None
                    else None
                ),
            )

    def _replication_status(self) -> "dict | None":
        if self.replication is None:
            return None
        status = {
            "role": self.role,
            "epoch": self.epoch,
            "fenced": self._fenced,
            "last_seq": self.wal_last_seq,
            "store_epoch": self._epoch_store.epoch(),
        }
        if self._replicator is not None:
            status["standby"] = self._replicator.status()
        return status

    def _handle_replication_wal(self, query: dict) -> dict:
        """Ship committed WAL records to a pulling standby."""
        if self._wal is None:
            raise _BadRequest("this server is not durable; nothing to ship")
        try:
            after_seq = int(query.get("after_seq", ["0"])[0])
            limit = int(query.get("limit", ["512"])[0])
        except (ValueError, IndexError) as exc:
            raise _BadRequest(
                "after_seq and limit must be integers"
            ) from exc
        if after_seq < 0 or limit < 1:
            raise _BadRequest("after_seq must be >= 0 and limit >= 1")
        batch = self._wal.read_committed_entries(
            after_seq=after_seq, limit=min(limit, 4096)
        )
        note_shipped(len(batch))
        records = []
        for entry in batch:
            if entry[0] == "ev":
                records.append(encode_shipped_event(entry[1], entry[2], entry[3]))
            else:
                records.append(encode_shipped(entry[1], entry[2], entry[3]))
        return {
            "epoch": self.epoch,
            "role": self.role,
            "last_seq": self._wal.last_seq,
            "records": records,
        }

    # -- request handling ------------------------------------------------------
    def _parse_observation(self, payload: dict) -> "tuple[QoSRecord, str | None]":
        """Validate one observation payload; counts rejections."""
        try:
            record = _require_observation(payload)
            key = _idempotency_key(payload)
        except _BadRequest:
            with self._stats_lock:
                self._observations_rejected += 1
            _OBSERVATIONS_REJECTED.inc()
            raise
        return record, key

    def _acquire_ingest_lock(self):
        """Take the ingest lock, honoring the admission deadline budget.

        Returns a context manager holding the lock.  With admission control
        on, a request that cannot get the lock within the deadline is shed
        with 503 instead of joining an unbounded convoy.
        """
        if self.admission is None:
            self._ingest_lock.acquire()
        elif not self._ingest_lock.acquire(timeout=self.admission.deadline):
            raise self.admission.note_deadline_exceeded()
        return _HeldLock(self._ingest_lock)

    def _ingest_one(
        self, record: QoSRecord, key: "str | None", replicated: bool = False
    ) -> dict:
        """Apply one validated observation.  Caller holds the ingest lock.

        Order matters for crash consistency: dedup check → timestamp
        policy → WAL append → ledger add → gate+model apply.  The ledger is
        updated only after the record is durably logged, mirroring how
        recovery rebuilds it from the WAL.

        ``replicated`` marks a record shipped from the primary's WAL: it
        was already deduplicated and policy-checked there, so both gates
        are bypassed — re-running them against this node's view could fork
        the replica from the log it is replaying.
        """
        if not replicated and key is not None and self.ledger.seen(key):
            self.ledger.note_duplicate()
            with self._stats_lock:
                self._observations_deduplicated += 1
            return {"sample_error": None, "action": "deduplicated"}
        if not replicated and self.timestamp_policy is not None:
            try:
                self.timestamp_policy.check(record.timestamp, self._latest_ingest_ts)
            except StaleObservation as exc:
                with self._stats_lock:
                    self._observations_rejected += 1
                _OBSERVATIONS_REJECTED.inc()
                raise _BadRequest(str(exc), code=f"{exc.reason}_timestamp") from exc
        if not replicated and self._tiered is not None:
            # Revive any spilled party *before* logging the observation: the
            # revive event (payload included) must precede the observation
            # in the WAL, or recovery would replay an observe against a
            # still-cold entity.  Standbys skip this — the primary ships its
            # revive events explicitly.
            self._revive_locked(record.user_id, record.service_id)
        if self._wal is not None:
            try:
                self._wal.append(record, key=key)
            except WalAppendError as exc:
                # Durability is gone (full disk, I/O error): acknowledge
                # nothing further, flip to read-only degraded mode, keep
                # predictions serving.
                self._degraded_reason = str(exc)
                raise _StorageUnavailable(
                    f"observation not accepted, durable log unavailable: {exc}"
                ) from exc
        if key is not None:
            self.ledger.add(key)
        if self._latest_ingest_ts is None or record.timestamp > self._latest_ingest_ts:
            self._latest_ingest_ts = record.timestamp
        # Predict-then-observe: the pre-update prediction against the
        # arriving ground truth is the live accuracy signal (windowed
        # MAE/MRE/NPRE) — computed before the sample can teach the model.
        predicted = self.model.predict_known(record.user_id, record.service_id)
        action, applied = apply_observation(self.model, self.gate, record)
        if (
            action in ("admit", "release")
            and predicted is not None
            and math.isfinite(predicted)
        ):
            # Clipped and quarantined values are suspect ground truth — they
            # must not count against the model in the drift window.
            self.drift.record(predicted, record.value)
        error = None
        for applied_record, sample_error in applied:
            self.fallback.observe(
                applied_record.user_id, applied_record.service_id, applied_record.value
            )
            error = sample_error
        self._observations_since_checkpoint += 1
        if (
            self.durable
            and self._observations_since_checkpoint >= self.checkpoint_interval
        ):
            self._checkpoint_locked()
        with self._stats_lock:
            self._observations_handled += 1
            if action == "quarantine":
                self._observations_quarantined += 1
        return {"sample_error": error, "action": action}

    # -- entity lifecycle ------------------------------------------------------
    def _revive_locked(self, user_id: int, service_id: "int | None") -> None:
        """Revive spilled parties of a request.  Caller holds the ingest lock.

        For each spilled entity: durably log a ``revive_*`` event carrying
        the full spill payload, then apply it to the model.  Log-then-apply
        mirrors the observation path — recovery and standbys restore the
        entity from the logged payload, never from the (crash-time) spill
        file.
        """
        pending = self.model.with_model(
            lambda m: m.pending_revivals(user_id, service_id)
        )
        for kind, ext_id in pending:
            payload = self.model.with_model(
                lambda m, k=kind, e=ext_id: m.revive_payload(k, e)
            )
            if self._wal is not None:
                try:
                    self._wal.append_event(f"revive_{kind}", {"id": ext_id, "p": payload})
                except WalAppendError as exc:
                    self._degraded_reason = str(exc)
                    raise _StorageUnavailable(
                        f"entity revival not durable, log unavailable: {exc}"
                    ) from exc
            self.model.with_model(
                lambda m, k=kind, e=ext_id, p=payload: m.apply_revive(k, e, p)
            )

    def _maybe_revive_for_read(
        self, user_id: int, service_id: "int | None"
    ) -> None:
        """Revive-on-read for the prediction path, with pressure shedding.

        Under critical memory pressure, cold-entity reads are shed with a
        429/Retry-After (the admission layer's :class:`RateLimited`) — the
        revive would grow the hot tier the watchdog is trying to shrink.
        Predictions for hot entities are never shed.  Standbys, fenced
        primaries, and read-only-degraded servers skip the revive (the
        fallback chain answers): revives mutate the log, and only a healthy
        primary may do that.
        """
        if self._tiered is None:
            return
        pending = self.model.with_model(
            lambda m: m.pending_revivals(user_id, service_id)
        )
        if not pending:
            return
        if self._shed_cold_reads:
            with self._stats_lock:
                self._cold_reads_shed += 1
            _COLD_READS_SHED.inc()
            raise RateLimited(
                "cold-entity revive shed under critical memory pressure; "
                "retry shortly (hot-entity predictions are unaffected)",
                retry_after=1.0,
            )
        if (
            self.role != "primary"
            or self._fenced
            or self._degraded_reason is not None
        ):
            return
        with self._acquire_ingest_lock():
            self._revive_locked(user_id, service_id)

    def _apply_pressure(self, hot_users: int, hot_services: int, level: str) -> None:
        """Watchdog tighten callback: WAL-log, then apply, a capacity change."""
        if self._tiered is None:
            return
        with self._ingest_lock:
            data = {"hu": int(hot_users), "hs": int(hot_services), "level": level}
            if self._wal is not None:
                try:
                    self._wal.append_event("pressure", data)
                except WalAppendError as exc:
                    # Can't log the tier change durably -> don't apply it
                    # (recovery would diverge); read-only degradation takes
                    # over on the next write.
                    self._degraded_reason = str(exc)
                    return
            self.model.with_model(
                lambda m: m.apply_pressure(data["hu"], data["hs"], level)
            )

    def _set_cold_read_shedding(self, flag: bool) -> None:
        """Watchdog critical-level callback (serving state, never WAL'd)."""
        self._shed_cold_reads = bool(flag)

    def _lifecycle_status(self) -> "dict | None":
        if self._tiered is None:
            return None
        status = self.model.with_model(lambda m: m.lifecycle_status())
        with self._stats_lock:
            status["cold_reads_shed"] = self._cold_reads_shed
        status["shedding_cold_reads"] = self._shed_cold_reads
        status["watchdog_running"] = (
            self._watchdog.running if self._watchdog is not None else False
        )
        return status

    def _refuse_if_degraded(self) -> None:
        if self._degraded_reason is not None:
            raise _StorageUnavailable(
                "server is in read-only degraded mode "
                f"({self._degraded_reason}); predictions still serve"
            )

    # -- entity migration ------------------------------------------------------
    def _apply_migration_event(self, kind: str, data: dict, model) -> None:
        """Apply one migration WAL event against the raw tiered model.

        The single code path for live imports/deletes, crash-recovery
        replay, and standby replication — all three must converge to the
        same model *and* the same dedup ledger, which is why this lives on
        the server (the ledger is server state) rather than in
        ``TieredAMF.apply_event``.
        """
        if kind == "migration_in":
            model.import_entities(
                [(k, e, p) for k, e, p in data["entities"]]
            )
            mid = str(data["mid"])
            seq = int(data["seq"])
            if seq > self._migration_applied.get(mid, 0):
                self._migration_applied[mid] = seq
        elif kind == "migration_out":
            for entity_kind, ext_id in data["entities"]:
                model.remove_entity(str(entity_kind), int(ext_id))
        else:
            raise ValueError(f"unknown migration event {kind!r}")

    def _require_tiered(self) -> None:
        if self._tiered is None:
            raise _BadRequest(
                "entity migration requires lifecycle tiering; start the "
                "server with lifecycle= enabled",
                code="migration_unsupported",
            )

    @staticmethod
    def _parse_entity_list(payload: dict) -> "list[tuple[str, int]]":
        entities = payload.get("entities")
        if not isinstance(entities, list) or not entities:
            raise _BadRequest("field 'entities' must be a non-empty list")
        parsed: "list[tuple[str, int]]" = []
        for entry in entities:
            try:
                kind, ext_id = entry
                kind = str(kind)
                ext_id = int(ext_id)
            except (TypeError, ValueError) as exc:
                raise _BadRequest(
                    "entities must be [kind, id] pairs"
                ) from exc
            if kind not in ("user", "service") or ext_id < 0:
                raise _BadRequest(f"bad entity {entry!r}")
            parsed.append((kind, ext_id))
        return parsed

    @staticmethod
    def _parse_entity_payloads(entities) -> list:
        if not isinstance(entities, list) or not entities:
            raise _BadRequest("field 'entities' must be a non-empty list")
        items: list = []
        for entry in entities:
            try:
                kind, ext_id, payload = entry
                kind = str(kind)
                ext_id = int(ext_id)
            except (TypeError, ValueError) as exc:
                raise _BadRequest(
                    "entities must be [kind, id, payload] triples"
                ) from exc
            if (
                kind not in ("user", "service")
                or ext_id < 0
                or not isinstance(payload, dict)
                or "row" not in payload
                or "err" not in payload
            ):
                raise _BadRequest(f"bad entity payload for {kind} {ext_id}")
            items.append([kind, ext_id, payload])
        return items

    def _handle_migration_entities(self) -> dict:
        """``GET /migration/entities`` — the planner's discovery surface.

        Ids of every entity (hot and spilled) plus the sample-sharing
        edges the coordinator uses to pack co-located entities into the
        same batch (a split edge would drop the shared sample on import).
        """
        self._require_tiered()
        with self._acquire_ingest_lock():
            return self.model.with_model(
                lambda m: {
                    "users": m.entity_ids("user"),
                    "services": m.entity_ids("service"),
                    "edges": m.sample_edges(),
                }
            )

    def _handle_migration_export(self, payload: dict) -> dict:
        """``POST /migration/export`` — read-only batch export.

        Returns canonical spill-format payloads; ids this shard no longer
        knows are silently omitted (the coordinator treats them as already
        moved).  Nothing is mutated: the source keeps serving every
        exported entity until the coordinator's delete after the batch
        commits on the destination.
        """
        self._require_tiered()
        entities = self._parse_entity_list(payload)
        exported: list = []
        with self._acquire_ingest_lock():
            for kind, ext_id in entities:
                try:
                    entity_payload = self.model.with_model(
                        lambda m, k=kind, e=ext_id: m.export_payload(k, e)
                    )
                except KeyError:
                    continue
                exported.append([kind, ext_id, entity_payload])
        _MIGRATION_EXPORTS.inc(len(exported))
        return {"entities": exported}

    def _handle_migration_import(self, payload: dict) -> dict:
        """``POST /migration/import`` — idempotent, epoch-fenced batch import.

        Dedup by ``(mid, seq)``: a batch seq at or below the migration's
        high-water mark is acknowledged without re-applying (coordinator
        retries after a crash on either side are safe).  Log-then-apply:
        the ``migration_in`` event (full payloads) hits the WAL before the
        model, so recovery and standbys replay the exact import.
        """
        self._require_tiered()
        self._check_write_allowed()
        self._refuse_if_degraded()
        mid = payload.get("mid")
        if not isinstance(mid, str) or not mid or len(mid) > 256:
            raise _BadRequest(
                "field 'mid' must be a non-empty string of at most 256 "
                "characters",
                code="invalid_migration",
            )
        seq = _require(payload, "seq", int)
        if seq < 1:
            raise _BadRequest("field 'seq' must be >= 1")
        items = self._parse_entity_payloads(payload.get("entities"))
        with self._acquire_ingest_lock():
            if seq <= self._migration_applied.get(mid, 0):
                return {"applied": False, "imported": 0, "reason": "duplicate"}
            data = {"mid": mid, "seq": seq, "entities": items}
            if self._wal is not None:
                try:
                    self._wal.append_event("migration_in", data)
                except WalAppendError as exc:
                    self._degraded_reason = str(exc)
                    raise _StorageUnavailable(
                        f"migration import not durable, log unavailable: {exc}"
                    ) from exc
            self.model.with_model(
                lambda m: self._apply_migration_event("migration_in", data, m)
            )
        _MIGRATION_IMPORTS.inc(len(items))
        return {"applied": True, "imported": len(items)}

    def _handle_migration_delete(self, payload: dict) -> dict:
        """``POST /migration/delete`` — drop source copies after commit.

        Only entities this shard still knows are logged and removed, so a
        coordinator retry against an already-cleaned source appends no WAL
        event — keeping the source's log (and checkpoint position)
        identical to an uninterrupted run's.
        """
        self._require_tiered()
        self._check_write_allowed()
        self._refuse_if_degraded()
        entities = self._parse_entity_list(payload)
        with self._acquire_ingest_lock():
            present = self.model.with_model(
                lambda m: [
                    [kind, ext_id]
                    for kind, ext_id in entities
                    if (
                        (m.knows_user(ext_id) or m.is_spilled_user(ext_id))
                        if kind == "user"
                        else (
                            m.knows_service(ext_id)
                            or m.is_spilled_service(ext_id)
                        )
                    )
                ]
            )
            if not present:
                return {"removed": 0}
            data = {"entities": present}
            if self._wal is not None:
                try:
                    self._wal.append_event("migration_out", data)
                except WalAppendError as exc:
                    self._degraded_reason = str(exc)
                    raise _StorageUnavailable(
                        f"migration delete not durable, log unavailable: {exc}"
                    ) from exc
            self.model.with_model(
                lambda m: self._apply_migration_event("migration_out", data, m)
            )
        _MIGRATION_DELETES.inc(len(present))
        return {"removed": len(present)}

    def _handle_migration_probe(self, payload: dict) -> dict:
        """``POST /migration/probe`` — presence + content fingerprints.

        For each requested entity this shard knows, a blake2b digest of
        its canonical export payload.  The coordinator probes the
        destination before every import: fingerprint-equal means the batch
        already landed (skip the import, keeping the destination's WAL and
        import counters identical to an unkilled run); absent or different
        means export-and-import.
        """
        self._require_tiered()
        entities = self._parse_entity_list(payload)
        fingerprints: dict = {}
        with self._acquire_ingest_lock():
            for kind, ext_id in entities:
                try:
                    entity_payload = self.model.with_model(
                        lambda m, k=kind, e=ext_id: m.export_payload(k, e)
                    )
                except KeyError:
                    continue
                fingerprints[f"{kind}:{ext_id}"] = hashlib.blake2b(
                    json.dumps(entity_payload, sort_keys=True).encode(),
                    digest_size=16,
                ).hexdigest()
        return {"entities": fingerprints}

    def _migration_status(self) -> dict:
        return {"applied": dict(sorted(self._migration_applied.items()))}

    def _handle_observation(self, payload: dict) -> dict:
        self._check_write_allowed()
        self._refuse_if_degraded()
        record, key = self._parse_observation(payload)
        if self.admission is not None:
            admit = self.admission.admit(cost=1.0)
        else:
            admit = _NO_ADMISSION
        with admit:
            with self._acquire_ingest_lock():
                return self._ingest_one(record, key)

    def _handle_observation_batch(self, payload: dict) -> dict:
        self._check_write_allowed()
        self._refuse_if_degraded()
        observations = payload.get("observations")
        if not isinstance(observations, list):
            raise _BadRequest("field 'observations' must be a list")
        # Admission is charged once for the whole batch (cost = item count):
        # a batch is one queue occupant but len(observations) tokens.
        if self.admission is not None and observations:
            admit = self.admission.admit(cost=float(len(observations)))
        else:
            admit = _NO_ADMISSION
        accepted = 0
        sample_errors: list[float] = []
        rejected: list[dict] = []
        with admit:
            for index, entry in enumerate(observations):
                if not isinstance(entry, dict):
                    with self._stats_lock:
                        self._observations_rejected += 1
                    rejected.append(
                        {"index": index, "error": "observation must be an object"}
                    )
                    continue
                try:
                    record, key = self._parse_observation(entry)
                    with self._acquire_ingest_lock():
                        result = self._ingest_one(record, key)
                except _BadRequest as exc:
                    rejected.append({"index": index, "error": str(exc)})
                else:
                    accepted += 1
                    if result["sample_error"] is not None:
                        sample_errors.append(result["sample_error"])
        return {"accepted": accepted, "rejected": rejected, "sample_errors": sample_errors}

    def _predict_one(self, user_id: int, service_id: int) -> dict:
        """The degradation chain: model if healthy and informed, else means."""
        if self._tiered is not None:
            self._maybe_revive_for_read(user_id, service_id)
        if self._model_healthy:
            value = self.model.predict_known(user_id, service_id)
            if value is not None:
                if math.isfinite(value):
                    with self._stats_lock:
                        self._predictions_served += 1
                    expected = self.model.expected_error(user_id, service_id)
                    _PREDICTIONS.labels(source="model").inc()
                    if math.isfinite(expected):
                        _PREDICTION_EXPECTED_ERROR.observe(expected)
                    return {
                        "prediction": value,
                        "source": "model",
                        "expected_error": expected,
                    }
                # A non-finite prediction means the factors are poisoned:
                # stop trusting the model until /health observes it finite.
                self._model_healthy = False
        result = self.fallback.predict(user_id, service_id)
        with self._stats_lock:
            self._predictions_served += 1
            self._degraded_predictions += 1
        _PREDICTIONS.labels(source=result.source).inc()
        return {
            "prediction": result.value,
            "source": result.source,
            "expected_error": result.expected_error,
        }

    def _handle_prediction(self, query: dict) -> dict:
        try:
            user_id = int(query["user_id"][0])
            service_id = int(query["service_id"][0])
        except (KeyError, ValueError, IndexError) as exc:
            raise _BadRequest(
                "query must include integer user_id and service_id"
            ) from exc
        if user_id < 0 or service_id < 0:
            raise _BadRequest("ids must be non-negative")
        response = {"user_id": user_id, "service_id": service_id}
        response.update(self._predict_one(user_id, service_id))
        return response

    def _predict_batch(
        self, user_id: int, service_ids: list[int]
    ) -> tuple[list[float], list[str]]:
        """Fused batch predict: one lock acquisition, one mat-vec for all
        cache misses, fallback chain per id that the model cannot answer.

        The shared core of the JSON ``/predictions/batch`` route and the
        binary ``PREDICT_BATCH`` opcode.  Unlike the single-prediction
        path, batch answers skip the per-pair expected-error histogram —
        the calibration signal stays on the single-GET path, keeping the
        ranking hot path at one credence read per *miss*, not per id.
        """
        _BATCH_SIZE.observe(len(service_ids))
        if self._tiered is not None:
            # Revive the user only: a ranking query names one user but many
            # services, and reviving every spilled service would let a
            # single wide batch blow through the hot-tier budget.  Spilled
            # services answer through the fallback chain until they are
            # observed (or individually queried) again.
            self._maybe_revive_for_read(user_id, None)
        if self._model_healthy:
            values, __ = self.model.predict_batch_known(
                user_id, service_ids, self._predict_cache
            )
        else:
            values = [None] * len(service_ids)
        sources: list[str] = [""] * len(service_ids)
        model_served = 0
        for index, value in enumerate(values):
            if value is not None:
                if math.isfinite(value):
                    sources[index] = "model"
                    model_served += 1
                    continue
                # Poisoned factors: distrust the model for the rest of the
                # batch too (predict_batch_known never caches non-finites).
                self._model_healthy = False
            result = self.fallback.predict(user_id, service_ids[index])
            values[index] = result.value
            sources[index] = result.source
            _PREDICTIONS.labels(source=result.source).inc()
        if model_served:
            _PREDICTIONS.labels(source="model").inc(model_served)
        with self._stats_lock:
            self._predictions_served += len(service_ids)
            self._degraded_predictions += len(service_ids) - model_served
        return values, sources

    def _handle_prediction_batch(self, payload: dict) -> dict:
        user_id = _require(payload, "user_id", int)
        raw_ids = payload.get("service_ids")
        if not isinstance(raw_ids, list) or not raw_ids:
            raise _BadRequest("field 'service_ids' must be a non-empty list")
        service_ids: list[int] = []
        for raw in raw_ids:
            try:
                service_id = int(raw)
            except (TypeError, ValueError) as exc:
                raise _BadRequest("service_ids must be integers") from exc
            if user_id < 0 or service_id < 0:
                raise _BadRequest("ids must be non-negative")
            service_ids.append(service_id)
        values, sources = self._predict_batch(user_id, service_ids)
        predictions = {}
        source_map = {}
        for service_id, value, source in zip(service_ids, values, sources):
            predictions[str(service_id)] = value
            source_map[str(service_id)] = source
        return {"user_id": user_id, "predictions": predictions, "sources": source_map}

    def _handle_credence(self, query: dict) -> dict:
        """``GET /credence?service_ids=1,2,3`` — per-service EMA error.

        The cluster layer homes each service's credence on one shard
        (rendezvous placement) and the router merges these values into
        ranked-candidate responses.  A pure read: unknown ids report the
        model's ``init_error`` and nothing is registered or revived.
        """
        try:
            raw = query["service_ids"][0]
            service_ids = [int(part) for part in raw.split(",") if part != ""]
        except (KeyError, IndexError, ValueError) as exc:
            raise _BadRequest(
                "query must include service_ids as comma-separated integers"
            ) from exc
        if not service_ids:
            raise _BadRequest("service_ids must be non-empty")
        if min(service_ids) < 0:
            raise _BadRequest("ids must be non-negative")
        credence = self.model.with_model(
            lambda m: {str(sid): m.service_credence(sid) for sid in service_ids}
        )
        return {"credence": credence}

    # -- binary transport backend ---------------------------------------------
    def _binary_error(self, exc: Exception) -> tuple[int, dict]:
        """Map a handler exception to (status, body) — the same statuses and
        structured bodies ``_dispatch`` puts on the HTTP transport."""
        if isinstance(exc, _BadRequest):
            body = {"error": str(exc)}
            if exc.code is not None:
                body["code"] = exc.code
            return 400, body
        if isinstance(exc, _PayloadTooLarge):
            return 413, {"error": str(exc)}
        if isinstance(exc, FencedWrite):
            body = {"error": str(exc), "code": exc.code, "epoch": exc.epoch}
            if exc.cluster_epoch is not None:
                body["cluster_epoch"] = exc.cluster_epoch
            return 409, body
        if isinstance(exc, _StorageUnavailable):
            return 507, {"error": str(exc), "code": "insufficient_storage"}
        if isinstance(exc, ShedRequest):
            return exc.status, {"error": str(exc), "retry_after": exc.retry_after}
        with self._stats_lock:
            self._internal_errors += 1
        _INTERNAL_ERRORS.inc()
        return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    def _binary_predict_batch(self, user_id: int, service_ids: list[int]):
        """``PREDICT_BATCH`` opcode backend: (200, (values, source codes))
        or (status, error body)."""
        try:
            if not service_ids:
                raise _BadRequest("service_ids must be non-empty")
            if user_id < 0 or min(service_ids) < 0:
                raise _BadRequest("ids must be non-negative")
            values, sources = self._predict_batch(user_id, service_ids)
        except Exception as exc:  # noqa: BLE001 — the binary error boundary
            return self._binary_error(exc)
        codes = [SOURCE_CODES.get(source, SOURCE_UNKNOWN) for source in sources]
        return 200, (values, codes)

    def _binary_observe(
        self,
        timestamp: float,
        user_id: int,
        service_id: int,
        value: float,
        key: "str | None",
    ):
        """``OBSERVE`` opcode backend: same ingest pipeline (validation,
        fencing, admission, WAL, gate) as ``POST /observations``."""
        payload = {
            "timestamp": timestamp,
            "user_id": user_id,
            "service_id": service_id,
            "value": value,
        }
        if key is not None:
            payload["idempotency_key"] = key
        try:
            return 200, self._handle_observation(payload)
        except Exception as exc:  # noqa: BLE001 — the binary error boundary
            return self._binary_error(exc)

    def _handle_status(self) -> dict:
        with self._stats_lock:
            counters = {
                "observations_handled": self._observations_handled,
                "observations_rejected": self._observations_rejected,
                "predictions_served": self._predictions_served,
                "degraded_predictions": self._degraded_predictions,
                "internal_errors": self._internal_errors,
                "checkpoints_written": self._checkpoints_written,
                "last_checkpoint_seq": self._last_checkpoint_seq,
            }
        counters.update(
            {
                "updates_applied": self.model.updates_applied,
                "stored_samples": self.model.n_stored_samples,
                "background_replays": (
                    self.trainer.replays_applied if self.trainer is not None else 0
                ),
                "trainer": self._trainer_health(),
                "durability": {
                    "enabled": self.durable,
                    "wal_last_seq": self._wal.last_seq if self.durable else None,
                    "wal_segments": self._wal.segment_count() if self.durable else None,
                    "recovery": self.recovery,
                    "read_only": self._degraded_reason,
                },
                "robustness": self._robustness_status(),
                "replication": self._replication_status(),
                "lifecycle": self._lifecycle_status(),
                "migration": self._migration_status(),
                "transport": {
                    "binary_address": (
                        list(self.binary_address)
                        if self.binary_address is not None
                        else None
                    ),
                },
                "predict_cache": (
                    self._predict_cache.stats()
                    if self._predict_cache is not None
                    else None
                ),
            }
        )
        return counters

    def _robustness_status(self) -> dict:
        with self._stats_lock:
            deduplicated = self._observations_deduplicated
            quarantined = self._observations_quarantined
        status: dict = {
            "gate": None,
            "dedup": {"ledger_size": len(self.ledger), "deduplicated": deduplicated},
            "timestamp_policy": (
                {
                    "max_future_skew": self.timestamp_policy.max_future_skew,
                    "max_staleness": self.timestamp_policy.max_staleness,
                }
                if self.timestamp_policy is not None
                else None
            ),
            "admission": None,
        }
        if self.gate is not None:
            status["gate"] = dict(self.gate.counts)
            status["gate"]["quarantine_size"] = self.gate.quarantine_size
            status["gate"]["observations_quarantined"] = quarantined
        if self.admission is not None:
            status["admission"] = dict(self.admission.counts)
            status["admission"]["pending"] = self.admission.pending
        return status

    def _trainer_health(self) -> dict:
        if self.supervisor is not None:
            return self.supervisor.health()
        if self.trainer is not None:
            return {
                "running": self.trainer.running,
                "supervised": False,
                "crashes": self.trainer.crash_count,
                "restarts": 0,
                "last_failure": (
                    f"{type(self.trainer.failure).__name__}: {self.trainer.failure}"
                    if self.trainer.failure is not None
                    else None
                ),
            }
        return {
            "running": False,
            "supervised": False,
            "crashes": 0,
            "restarts": 0,
            "last_failure": None,
        }

    def _handle_health(self) -> tuple[int, dict]:
        """Liveness/readiness: 200 when every applicable check passes.

        ``model_finite`` re-evaluates the factors, so a model marked
        unhealthy by a poisoned prediction recovers its "healthy" flag here
        once background training (or entity churn) restores finiteness.
        """
        checks: dict[str, bool] = {"model_finite": self.model.is_finite()}
        self._model_healthy = checks["model_finite"]
        if self.durable:
            checks["wal_writable"] = self._wal.writable
        trainer = self._trainer_health()
        if self.trainer is not None:
            # A crashed-but-supervised trainer is "alive" in the readiness
            # sense only once it is actually running again; the supervisor
            # existing means it *will* come back, which /status shows.
            checks["trainer_alive"] = bool(trainer["running"])
        ready = all(checks.values())
        body = {
            "status": "ok" if ready else "unavailable",
            "checks": checks,
            "trainer": trainer,
            "recovery": self.recovery,
        }
        return (200 if ready else 503), body

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Bound the damage a stalled or half-open client can do.
            timeout = 30.0

            # Silence per-request stderr logging.
            def log_message(self, format, *args):  # noqa: A002 (stdlib API)
                pass

            def _send(
                self, status: int, body: dict, headers: "dict | None" = None
            ) -> None:
                data = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                if headers:
                    for name, value in headers.items():
                        self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)

            def _read_json(self) -> dict:
                try:
                    length = int(self.headers.get("Content-Length", 0))
                except ValueError as exc:
                    raise _BadRequest("invalid Content-Length header") from exc
                if length > server.max_body_bytes:
                    raise _PayloadTooLarge(
                        f"body of {length} bytes exceeds limit of "
                        f"{server.max_body_bytes}"
                    )
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise _BadRequest(f"invalid JSON body: {exc}") from exc
                if not isinstance(payload, dict):
                    raise _BadRequest("JSON body must be an object")
                return payload

            def _dispatch(self, route) -> None:
                """Run a route; every outcome is a JSON response.

                Unexpected exceptions become a 500 with the error class —
                never a dropped connection mid-request.  Failures writing
                the response itself (client already gone) are swallowed.
                """
                TRANSPORT_JSON_REQUESTS.inc()
                try:
                    try:
                        status, body = route()
                        self._send(status, body)
                    except _BadRequest as exc:
                        body = {"error": str(exc)}
                        if exc.code is not None:
                            body["code"] = exc.code
                        self._send(400, body)
                    except _PayloadTooLarge as exc:
                        self._send(413, {"error": str(exc)})
                    except FencedWrite as exc:
                        # Fencing: a structured, terminal refusal — the
                        # client must re-route to the current primary.
                        body = {
                            "error": str(exc),
                            "code": exc.code,
                            "epoch": exc.epoch,
                        }
                        if exc.cluster_epoch is not None:
                            body["cluster_epoch"] = exc.cluster_epoch
                        self._send(409, body)
                    except _StorageUnavailable as exc:
                        self._send(
                            507,
                            {"error": str(exc), "code": "insufficient_storage"},
                        )
                    except ShedRequest as exc:
                        # Load shedding: 429 (rate limit) / 503 (overload or
                        # deadline) with a machine-usable retry hint in both
                        # the header (integer seconds, rounded up) and body.
                        self._send(
                            exc.status,
                            {"error": str(exc), "retry_after": exc.retry_after},
                            headers={
                                "Retry-After": str(
                                    max(1, math.ceil(exc.retry_after))
                                )
                            },
                        )
                    except Exception as exc:  # noqa: BLE001 — the 500 boundary
                        with server._stats_lock:
                            server._internal_errors += 1
                        _INTERNAL_ERRORS.inc()
                        self._send(
                            500,
                            {"error": f"internal error: {type(exc).__name__}: {exc}"},
                        )
                except OSError:
                    pass  # client hung up; nothing left to tell it

            def do_GET(self):
                parsed = urlparse(self.path)
                if parsed.path == "/metrics":
                    # Prometheus exposition is text, not JSON, so it gets
                    # its own send path outside _dispatch; render failures
                    # still fall back to the JSON 500 boundary.
                    try:
                        try:
                            data = server.metrics.render().encode("utf-8")
                        except Exception as exc:  # noqa: BLE001
                            with server._stats_lock:
                                server._internal_errors += 1
                            _INTERNAL_ERRORS.inc()
                            self._send(
                                500,
                                {
                                    "error": "internal error: "
                                    f"{type(exc).__name__}: {exc}"
                                },
                            )
                            return
                        self.send_response(200)
                        self.send_header(
                            "Content-Type",
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                        self.send_header("Content-Length", str(len(data)))
                        self.end_headers()
                        self.wfile.write(data)
                    except OSError:
                        pass  # client hung up; nothing left to tell it
                    return

                def route():
                    if parsed.path == "/predictions":
                        return 200, server._handle_prediction(parse_qs(parsed.query))
                    if parsed.path == "/status":
                        return 200, server._handle_status()
                    if parsed.path == "/health":
                        return server._handle_health()
                    if parsed.path == "/credence":
                        return 200, server._handle_credence(parse_qs(parsed.query))
                    if parsed.path == "/migration/entities":
                        return 200, server._handle_migration_entities()
                    if parsed.path == "/replication/wal":
                        return 200, server._handle_replication_wal(
                            parse_qs(parsed.query)
                        )
                    if parsed.path == "/replication/status":
                        status = server._replication_status()
                        if status is None:
                            return 200, {
                                "role": server.role,
                                "epoch": server.epoch,
                                "fenced": False,
                                "replicated": False,
                            }
                        return 200, status
                    return 404, {"error": f"unknown path {parsed.path}"}

                self._dispatch(route)

            def do_POST(self):
                parsed = urlparse(self.path)

                def route():
                    payload = self._read_json()
                    if parsed.path == "/observations":
                        return 200, server._handle_observation(payload)
                    if parsed.path == "/observations/batch":
                        return 200, server._handle_observation_batch(payload)
                    if parsed.path == "/predictions/batch":
                        return 200, server._handle_prediction_batch(payload)
                    if parsed.path == "/migration/export":
                        return 200, server._handle_migration_export(payload)
                    if parsed.path == "/migration/import":
                        return 200, server._handle_migration_import(payload)
                    if parsed.path == "/migration/delete":
                        return 200, server._handle_migration_delete(payload)
                    if parsed.path == "/migration/probe":
                        return 200, server._handle_migration_probe(payload)
                    return 404, {"error": f"unknown path {parsed.path}"}

                self._dispatch(route)

        return Handler
