"""The QoS prediction service as an HTTP endpoint.

Implements the Fig. 3 interface over JSON/HTTP using only the standard
library:

=======  =====================  ==========================================
method   path                   body / query
=======  =====================  ==========================================
POST     /observations          {"timestamp", "user_id", "service_id",
                                "value"} — report one observed QoS sample
POST     /observations/batch    {"observations": [...]} — report many
GET      /predictions           ?user_id=U&service_id=S — one prediction
POST     /predictions/batch     {"user_id", "service_ids": [...]}
GET      /status                model statistics
=======  =====================  ==========================================

A :class:`~repro.core.daemon.BackgroundTrainer` replays retained samples
between requests, so the served model keeps converging while idle — the
"online updating" box of the paper's architecture.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.config import AMFConfig
from repro.core.daemon import BackgroundTrainer, ConcurrentModel
from repro.datasets.schema import QoSRecord


class _BadRequest(Exception):
    """Client error with a message safe to echo back."""


def _require(payload: dict, field: str, kind):
    if field not in payload:
        raise _BadRequest(f"missing field {field!r}")
    try:
        return kind(payload[field])
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"field {field!r} must be {kind.__name__}") from exc


class PredictionServer:
    """Owns the model, the background trainer, and the HTTP server.

    Typical use::

        server = PredictionServer(AMFConfig.for_response_time(), rng=0)
        server.start()                      # binds 127.0.0.1:<ephemeral>
        client = PredictionClient(server.address)
        ...
        server.stop()

    ``port=0`` (the default) binds an ephemeral port; read ``address``
    after ``start``.
    """

    def __init__(
        self,
        config: AMFConfig | None = None,
        rng: "int | None" = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        background_replay: bool = True,
    ) -> None:
        self.model = ConcurrentModel(AdaptiveMatrixFactorization(config, rng=rng))
        self.trainer = BackgroundTrainer(self.model) if background_replay else None
        self._host = host
        self._port = port
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None
        self._observations_handled = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound; valid after :meth:`start`."""
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def start(self) -> None:
        if self._httpd is not None:
            return
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="qos-prediction-http", daemon=True
        )
        self._thread.start()
        if self.trainer is not None:
            self.trainer.start()

    def stop(self) -> None:
        if self.trainer is not None and self.trainer.running:
            self.trainer.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "PredictionServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request handling ------------------------------------------------------
    def _handle_observation(self, payload: dict) -> dict:
        try:
            record = QoSRecord(
                timestamp=_require(payload, "timestamp", float),
                user_id=_require(payload, "user_id", int),
                service_id=_require(payload, "service_id", int),
                value=_require(payload, "value", float),
            )
            error = self.model.observe(record)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
        self._observations_handled += 1
        return {"sample_error": error}

    def _handle_observation_batch(self, payload: dict) -> dict:
        observations = payload.get("observations")
        if not isinstance(observations, list):
            raise _BadRequest("field 'observations' must be a list")
        errors = [self._handle_observation(entry)["sample_error"] for entry in observations]
        return {"accepted": len(errors), "sample_errors": errors}

    def _handle_prediction(self, query: dict) -> dict:
        try:
            user_id = int(query["user_id"][0])
            service_id = int(query["service_id"][0])
        except (KeyError, ValueError, IndexError) as exc:
            raise _BadRequest(
                "query must include integer user_id and service_id"
            ) from exc
        if user_id < 0 or service_id < 0:
            raise _BadRequest("ids must be non-negative")
        return {
            "user_id": user_id,
            "service_id": service_id,
            "prediction": self.model.predict(user_id, service_id),
        }

    def _handle_prediction_batch(self, payload: dict) -> dict:
        user_id = _require(payload, "user_id", int)
        service_ids = payload.get("service_ids")
        if not isinstance(service_ids, list) or not service_ids:
            raise _BadRequest("field 'service_ids' must be a non-empty list")
        predictions = {}
        for raw in service_ids:
            try:
                service_id = int(raw)
            except (TypeError, ValueError) as exc:
                raise _BadRequest("service_ids must be integers") from exc
            if user_id < 0 or service_id < 0:
                raise _BadRequest("ids must be non-negative")
            predictions[str(service_id)] = self.model.predict(user_id, service_id)
        return {"user_id": user_id, "predictions": predictions}

    def _handle_status(self) -> dict:
        return {
            "observations_handled": self._observations_handled,
            "updates_applied": self.model.updates_applied,
            "stored_samples": self.model.n_stored_samples,
            "background_replays": (
                self.trainer.replays_applied if self.trainer is not None else 0
            ),
        }

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Silence per-request stderr logging.
            def log_message(self, format, *args):  # noqa: A002 (stdlib API)
                pass

            def _send(self, status: int, body: dict) -> None:
                data = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def _read_json(self) -> dict:
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise _BadRequest(f"invalid JSON body: {exc}") from exc
                if not isinstance(payload, dict):
                    raise _BadRequest("JSON body must be an object")
                return payload

            def do_GET(self):
                parsed = urlparse(self.path)
                try:
                    if parsed.path == "/predictions":
                        self._send(200, server._handle_prediction(parse_qs(parsed.query)))
                    elif parsed.path == "/status":
                        self._send(200, server._handle_status())
                    else:
                        self._send(404, {"error": f"unknown path {parsed.path}"})
                except _BadRequest as exc:
                    self._send(400, {"error": str(exc)})

            def do_POST(self):
                parsed = urlparse(self.path)
                try:
                    payload = self._read_json()
                    if parsed.path == "/observations":
                        self._send(200, server._handle_observation(payload))
                    elif parsed.path == "/observations/batch":
                        self._send(200, server._handle_observation_batch(payload))
                    elif parsed.path == "/predictions/batch":
                        self._send(200, server._handle_prediction_batch(payload))
                    else:
                        self._send(404, {"error": f"unknown path {parsed.path}"})
                except _BadRequest as exc:
                    self._send(400, {"error": str(exc)})

        return Handler
