"""Python client for the prediction server (Fig. 3's user-side stub).

The paper's execution middleware talks to the prediction service through a
standard interface; this client is that stub.  It is synchronous and uses
only the standard library, so an application (or the example scripts) can
talk to a :class:`~repro.server.app.PredictionServer` with no extra
dependencies.

Resilience: requests carry a timeout, and *idempotent* requests (GETs —
predictions, status, health) are retried with capped exponential backoff
plus jitter on transient failures.  When the server sheds load (HTTP
429/503 from admission control) its retry hint is honored: the backoff
loop sleeps at least the response's ``Retry-After`` before the next
attempt.  Errors are typed:

* :class:`RetryableServiceError` — transient (connection failure, timeout,
  HTTP 5xx/429): the same request may succeed if repeated.
* :class:`TerminalServiceError` — the server understood and refused (HTTP
  4xx): repeating the identical request will fail the identical way.

Both subclass :class:`PredictionServiceError`, so existing ``except``
clauses keep working.

**At-least-once observation delivery.**  A bare observation POST is *not*
retried: a timeout is ambiguous (the server may have durably applied the
sample before the response was lost), and re-reporting re-applies an SGD
step.  Passing ``idempotency_key`` to :meth:`report_observation` changes
the contract to at-least-once: the key rides with the payload, the server
remembers recently seen keys in a bounded ledger (surviving crash
recovery via the WAL), and a retried delivery is acknowledged without a
second model update — so the client then retries observation POSTs like
any idempotent request.  Keys must be unique per *measurement* (e.g.
``f"{collector_id}:{sequence_number}"``), not per request, and the
server's ledger capacity bounds how stale a retry may arrive
(``docs/operations.md``).
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request


def _retry_after_hint(exc: "urllib.error.HTTPError", body) -> "float | None":
    """Best retry delay hint from a shed response, in seconds.

    The JSON body's ``retry_after`` (float, sub-second precision) is
    preferred; the ``Retry-After`` header (integer seconds per RFC 9110)
    is the fallback.  ``None`` when the response carries neither.
    """
    if isinstance(body, dict):
        hint = body.get("retry_after")
        if isinstance(hint, (int, float)) and hint >= 0:
            return float(hint)
    header = exc.headers.get("Retry-After") if exc.headers is not None else None
    if header is not None:
        try:
            parsed = float(header)
        except ValueError:
            return None
        if parsed >= 0:
            return parsed
    return None


class PredictionServiceError(RuntimeError):
    """Raised when the server rejects a request or is unreachable."""


class RetryableServiceError(PredictionServiceError):
    """Transient failure — retrying the same request may succeed."""


class TerminalServiceError(PredictionServiceError):
    """Definitive rejection — retrying the same request cannot succeed."""


class PredictionClient:
    """HTTP client bound to one prediction-server address.

    Args:
        address:     ``(host, port)`` of the server.
        timeout:     per-attempt socket timeout in seconds.
        retries:     extra attempts for idempotent (GET) requests on
                     transient failures; POSTs are never retried.
        backoff:     first retry delay; doubles per attempt.
        backoff_max: delay cap.
        jitter:      each delay is multiplied by ``1 + uniform(0, jitter)``
                     so a fleet of recovering clients doesn't stampede.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.5,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0 or backoff_max <= 0:
            raise ValueError("backoff and backoff_max must be positive")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        host, port = address
        self._base = f"http://{host}:{port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._jitter_rng = random.Random()
        self.retries_performed = 0

    def _request_once(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        raw: bool = False,
    ) -> "dict | str":
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self._base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                return body.decode("utf-8") if raw else json.loads(body)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except Exception:
                body = None
            detail = body.get("error", "") if isinstance(body, dict) else ""
            message = f"{method} {path} failed with HTTP {exc.code}: {detail}"
            kind = (
                RetryableServiceError
                if exc.code >= 500 or exc.code == 429
                else TerminalServiceError
            )
            error = kind(message)
            error.status = exc.code
            error.body = body
            error.retry_after = _retry_after_hint(exc, body)
            raise error from exc
        except urllib.error.URLError as exc:
            raise RetryableServiceError(
                f"cannot reach prediction service at {self._base}: {exc.reason}"
            ) from exc
        except TimeoutError as exc:
            raise RetryableServiceError(
                f"{method} {path} timed out after {self.timeout}s"
            ) from exc

    def _request(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        idempotent: "bool | None" = None,
        raw: bool = False,
    ) -> "dict | str":
        if idempotent is None:
            idempotent = method == "GET"
        attempts = self.retries + 1 if idempotent else 1
        delay = self.backoff
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload, raw=raw)
            except RetryableServiceError as exc:
                if attempt + 1 >= attempts:
                    raise
                sleep = min(delay, self.backoff_max) * (
                    1.0 + self.jitter * self._jitter_rng.random()
                )
                # A shedding server knows when capacity returns; its
                # Retry-After is a floor under our own backoff, so a fleet
                # of retrying clients doesn't hammer a rate limiter that
                # already told them when to come back.
                hint = getattr(exc, "retry_after", None)
                if hint is not None:
                    sleep = max(sleep, hint)
                time.sleep(sleep)
                delay *= 2.0
                self.retries_performed += 1
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the Fig. 3 interface -------------------------------------------------
    def report_observation(
        self,
        user_id: int,
        service_id: int,
        value: float,
        timestamp: float,
        idempotency_key: "str | None" = None,
    ) -> float:
        """Upload one observed QoS sample; returns its pre-update error.

        With ``idempotency_key`` set, the POST is retried on transient
        failures like an idempotent request — the server's dedup ledger
        guarantees the sample is applied at most once (see the module
        docstring for the at-least-once contract).  Returns NaN when the
        server acknowledged without a fresh model update (a deduplicated
        retry, or a sample the outlier gate quarantined).
        """
        payload = {
            "timestamp": timestamp,
            "user_id": user_id,
            "service_id": service_id,
            "value": value,
        }
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        body = self._request(
            "POST",
            "/observations",
            payload,
            idempotent=idempotency_key is not None,
        )
        error = body.get("sample_error")
        return float(error) if error is not None else float("nan")

    def report_observations(self, observations: "list[dict]") -> int:
        """Upload many samples; returns how many were accepted.

        Bad records no longer abort the batch server-side; use
        :meth:`report_observations_detailed` for per-item outcomes.
        """
        return int(self.report_observations_detailed(observations)["accepted"])

    def report_observations_detailed(self, observations: "list[dict]") -> dict:
        """Upload many samples; returns ``{accepted, rejected, sample_errors}``
        where ``rejected`` lists ``{index, error}`` per refused record."""
        return self._request(
            "POST", "/observations/batch", {"observations": observations}
        )

    def predict(self, user_id: int, service_id: int) -> float:
        """Predicted QoS for one (user, service) pair."""
        return float(self.predict_detailed(user_id, service_id)["prediction"])

    def predict_detailed(self, user_id: int, service_id: int) -> dict:
        """Prediction plus its provenance: ``{prediction, source,
        expected_error}`` — ``source`` is ``"model"`` or a degraded-mode
        estimator, ``expected_error`` the calibration confidence."""
        query = urllib.parse.urlencode(
            {"user_id": user_id, "service_id": service_id}
        )
        return self._request("GET", f"/predictions?{query}")

    def predict_candidates(self, user_id: int, service_ids: "list[int]") -> dict[int, float]:
        """Predicted QoS for a candidate pool, keyed by service id."""
        body = self._request(
            "POST",
            "/predictions/batch",
            {"user_id": user_id, "service_ids": list(service_ids)},
            idempotent=True,  # predictions don't mutate the model
        )
        return {int(k): float(v) for k, v in body["predictions"].items()}

    def status(self) -> dict:
        """Server-side model statistics."""
        return self._request("GET", "/status")

    def metrics(self) -> str:
        """Raw ``/metrics`` body — Prometheus text exposition, not JSON.

        Same typed errors and idempotent-GET retry policy as the JSON
        routes; parse the result with
        :func:`repro.observability.parse_prometheus_text` if structure is
        needed.
        """
        return self._request("GET", "/metrics", raw=True)

    def health(self) -> dict:
        """Liveness/readiness report; ``{"status": "ok" | "unavailable",
        "checks": {...}, ...}``.  A 503 (not ready) returns the body rather
        than raising, so callers can inspect which check failed."""
        try:
            return self._request("GET", "/health", idempotent=False)
        except PredictionServiceError as exc:
            body = getattr(exc, "body", None)
            if getattr(exc, "status", None) == 503 and isinstance(body, dict):
                return body
            raise
