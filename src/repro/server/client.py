"""Python client for the prediction server (Fig. 3's user-side stub).

The paper's execution middleware talks to the prediction service through a
standard interface; this client is that stub.  It is synchronous and uses
only the standard library, so an application (or the example scripts) can
talk to a :class:`~repro.server.app.PredictionServer` with no extra
dependencies.

Resilience: requests carry a timeout, and *idempotent* requests (GETs —
predictions, status, health) are retried with capped exponential backoff
plus jitter on transient failures.  Observation POSTs are **not** retried:
re-reporting a sample re-applies an SGD step, so the caller must decide
whether at-least-once delivery is acceptable.  Errors are typed:

* :class:`RetryableServiceError` — transient (connection failure, timeout,
  HTTP 5xx/503): the same request may succeed if repeated.
* :class:`TerminalServiceError` — the server understood and refused (HTTP
  4xx): repeating the identical request will fail the identical way.

Both subclass :class:`PredictionServiceError`, so existing ``except``
clauses keep working.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request


class PredictionServiceError(RuntimeError):
    """Raised when the server rejects a request or is unreachable."""


class RetryableServiceError(PredictionServiceError):
    """Transient failure — retrying the same request may succeed."""


class TerminalServiceError(PredictionServiceError):
    """Definitive rejection — retrying the same request cannot succeed."""


class PredictionClient:
    """HTTP client bound to one prediction-server address.

    Args:
        address:     ``(host, port)`` of the server.
        timeout:     per-attempt socket timeout in seconds.
        retries:     extra attempts for idempotent (GET) requests on
                     transient failures; POSTs are never retried.
        backoff:     first retry delay; doubles per attempt.
        backoff_max: delay cap.
        jitter:      each delay is multiplied by ``1 + uniform(0, jitter)``
                     so a fleet of recovering clients doesn't stampede.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.5,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0 or backoff_max <= 0:
            raise ValueError("backoff and backoff_max must be positive")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        host, port = address
        self._base = f"http://{host}:{port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._jitter_rng = random.Random()
        self.retries_performed = 0

    def _request_once(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        raw: bool = False,
    ) -> "dict | str":
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self._base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                return body.decode("utf-8") if raw else json.loads(body)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except Exception:
                body = None
            detail = body.get("error", "") if isinstance(body, dict) else ""
            message = f"{method} {path} failed with HTTP {exc.code}: {detail}"
            kind = (
                RetryableServiceError
                if exc.code >= 500 or exc.code == 429
                else TerminalServiceError
            )
            error = kind(message)
            error.status = exc.code
            error.body = body
            raise error from exc
        except urllib.error.URLError as exc:
            raise RetryableServiceError(
                f"cannot reach prediction service at {self._base}: {exc.reason}"
            ) from exc
        except TimeoutError as exc:
            raise RetryableServiceError(
                f"{method} {path} timed out after {self.timeout}s"
            ) from exc

    def _request(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        idempotent: "bool | None" = None,
        raw: bool = False,
    ) -> "dict | str":
        if idempotent is None:
            idempotent = method == "GET"
        attempts = self.retries + 1 if idempotent else 1
        delay = self.backoff
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload, raw=raw)
            except RetryableServiceError:
                if attempt + 1 >= attempts:
                    raise
                time.sleep(
                    min(delay, self.backoff_max)
                    * (1.0 + self.jitter * self._jitter_rng.random())
                )
                delay *= 2.0
                self.retries_performed += 1
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the Fig. 3 interface -------------------------------------------------
    def report_observation(
        self, user_id: int, service_id: int, value: float, timestamp: float
    ) -> float:
        """Upload one observed QoS sample; returns its pre-update error."""
        body = self._request(
            "POST",
            "/observations",
            {
                "timestamp": timestamp,
                "user_id": user_id,
                "service_id": service_id,
                "value": value,
            },
        )
        return float(body["sample_error"])

    def report_observations(self, observations: "list[dict]") -> int:
        """Upload many samples; returns how many were accepted.

        Bad records no longer abort the batch server-side; use
        :meth:`report_observations_detailed` for per-item outcomes.
        """
        return int(self.report_observations_detailed(observations)["accepted"])

    def report_observations_detailed(self, observations: "list[dict]") -> dict:
        """Upload many samples; returns ``{accepted, rejected, sample_errors}``
        where ``rejected`` lists ``{index, error}`` per refused record."""
        return self._request(
            "POST", "/observations/batch", {"observations": observations}
        )

    def predict(self, user_id: int, service_id: int) -> float:
        """Predicted QoS for one (user, service) pair."""
        return float(self.predict_detailed(user_id, service_id)["prediction"])

    def predict_detailed(self, user_id: int, service_id: int) -> dict:
        """Prediction plus its provenance: ``{prediction, source,
        expected_error}`` — ``source`` is ``"model"`` or a degraded-mode
        estimator, ``expected_error`` the calibration confidence."""
        query = urllib.parse.urlencode(
            {"user_id": user_id, "service_id": service_id}
        )
        return self._request("GET", f"/predictions?{query}")

    def predict_candidates(self, user_id: int, service_ids: "list[int]") -> dict[int, float]:
        """Predicted QoS for a candidate pool, keyed by service id."""
        body = self._request(
            "POST",
            "/predictions/batch",
            {"user_id": user_id, "service_ids": list(service_ids)},
            idempotent=True,  # predictions don't mutate the model
        )
        return {int(k): float(v) for k, v in body["predictions"].items()}

    def status(self) -> dict:
        """Server-side model statistics."""
        return self._request("GET", "/status")

    def metrics(self) -> str:
        """Raw ``/metrics`` body — Prometheus text exposition, not JSON.

        Same typed errors and idempotent-GET retry policy as the JSON
        routes; parse the result with
        :func:`repro.observability.parse_prometheus_text` if structure is
        needed.
        """
        return self._request("GET", "/metrics", raw=True)

    def health(self) -> dict:
        """Liveness/readiness report; ``{"status": "ok" | "unavailable",
        "checks": {...}, ...}``.  A 503 (not ready) returns the body rather
        than raising, so callers can inspect which check failed."""
        try:
            return self._request("GET", "/health", idempotent=False)
        except PredictionServiceError as exc:
            body = getattr(exc, "body", None)
            if getattr(exc, "status", None) == 503 and isinstance(body, dict):
                return body
            raise
