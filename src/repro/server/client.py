"""Python client for the prediction server (Fig. 3's user-side stub).

The paper's execution middleware talks to the prediction service through a
standard interface; this client is that stub.  It is synchronous and uses
only the standard library, so an application (or the example scripts) can
talk to a :class:`~repro.server.app.PredictionServer` with no extra
dependencies.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request


class PredictionServiceError(RuntimeError):
    """Raised when the server rejects a request or is unreachable."""


class PredictionClient:
    """HTTP client bound to one prediction-server address."""

    def __init__(self, address: tuple[str, int], timeout: float = 5.0) -> None:
        host, port = address
        self._base = f"http://{host}:{port}"
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: "dict | None" = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self._base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:
                detail = ""
            raise PredictionServiceError(
                f"{method} {path} failed with HTTP {exc.code}: {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise PredictionServiceError(
                f"cannot reach prediction service at {self._base}: {exc.reason}"
            ) from exc

    # -- the Fig. 3 interface -------------------------------------------------
    def report_observation(
        self, user_id: int, service_id: int, value: float, timestamp: float
    ) -> float:
        """Upload one observed QoS sample; returns its pre-update error."""
        body = self._request(
            "POST",
            "/observations",
            {
                "timestamp": timestamp,
                "user_id": user_id,
                "service_id": service_id,
                "value": value,
            },
        )
        return float(body["sample_error"])

    def report_observations(self, observations: "list[dict]") -> int:
        """Upload many samples; returns how many were accepted."""
        body = self._request(
            "POST", "/observations/batch", {"observations": observations}
        )
        return int(body["accepted"])

    def predict(self, user_id: int, service_id: int) -> float:
        """Predicted QoS for one (user, service) pair."""
        query = urllib.parse.urlencode(
            {"user_id": user_id, "service_id": service_id}
        )
        body = self._request("GET", f"/predictions?{query}")
        return float(body["prediction"])

    def predict_candidates(self, user_id: int, service_ids: "list[int]") -> dict[int, float]:
        """Predicted QoS for a candidate pool, keyed by service id."""
        body = self._request(
            "POST",
            "/predictions/batch",
            {"user_id": user_id, "service_ids": list(service_ids)},
        )
        return {int(k): float(v) for k, v in body["predictions"].items()}

    def status(self) -> dict:
        """Server-side model statistics."""
        return self._request("GET", "/status")
