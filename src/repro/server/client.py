"""Python client for the prediction server (Fig. 3's user-side stub).

The paper's execution middleware talks to the prediction service through a
standard interface; this client is that stub.  It is synchronous and uses
only the standard library, so an application (or the example scripts) can
talk to a :class:`~repro.server.app.PredictionServer` with no extra
dependencies.

Resilience: requests carry a timeout, and *idempotent* requests (GETs —
predictions, status, health) are retried with capped exponential backoff
plus jitter on transient failures.  When the server sheds load (HTTP
429/503 from admission control) its retry hint is honored: the backoff
loop sleeps at least the response's ``Retry-After`` before the next
attempt.  Errors are typed:

* :class:`RetryableServiceError` — transient (connection failure, timeout,
  HTTP 5xx/429): the same request may succeed if repeated.
* :class:`TerminalServiceError` — the server understood and refused (HTTP
  4xx): repeating the identical request will fail the identical way.
* :class:`DeadlineExceeded` — the caller's total time budget ran out
  before any attempt succeeded (see below).

All subclass :class:`PredictionServiceError`, so existing ``except``
clauses keep working.

**Replica sets.**  ``address`` accepts a single ``(host, port)`` pair or a
list of them.  With several endpoints the client fails over: each endpoint
carries a small circuit breaker (``breaker_threshold`` consecutive
transport failures open it for ``breaker_cooldown`` seconds), reads are
served by whichever replica answers, and writes remember the endpoint
that last accepted one (the presumed primary).  A fenced ``409`` reply
(``code`` of ``not_primary`` or ``stale_epoch``, see
:mod:`repro.server.replication`) guarantees the server applied nothing,
so the client re-routes the *same* write to the next endpoint without a
backoff sleep — safe even for observation POSTs that carry no
idempotency key.

**Total deadline.**  ``retries`` bounds the number of attempts, but a
server that keeps answering 429 with generous ``Retry-After`` hints can
stall a caller far longer than it can afford.  ``deadline`` (constructor
default, overridable per call on :meth:`report_observation`) is a hard
wall-clock budget across *all* attempts, sleeps, and endpoint rotations:
when the next backoff sleep would overrun it, the client raises
:class:`DeadlineExceeded` immediately — chained to the last underlying
error — instead of sleeping into a timeout it already knows it will miss.

**At-least-once observation delivery.**  A bare observation POST is *not*
retried on transient failures: a timeout is ambiguous (the server may
have durably applied the sample before the response was lost), and
re-reporting re-applies an SGD step.  Passing ``idempotency_key`` to
:meth:`report_observation` changes the contract to at-least-once: the key
rides with the payload, the server remembers recently seen keys in a
bounded ledger (surviving crash recovery via the WAL), and a retried
delivery is acknowledged without a second model update — so the client
then retries observation POSTs like any idempotent request, including
across a failover to a freshly promoted standby.  Keys must be unique per
*measurement* (e.g. ``f"{collector_id}:{sequence_number}"``), not per
request, and the server's ledger capacity bounds how stale a retry may
arrive (``docs/operations.md``).
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime

from repro.server.binary import BinaryConnection, BinaryServerError, ProtocolError

#: 409 ``code`` values that guarantee the server applied no state change,
#: making an immediate re-route of the same request safe (fencing replies
#: from repro.server.replication).
_FENCED_CODES = ("not_primary", "stale_epoch")


def _retry_after_hint(exc: "urllib.error.HTTPError", body) -> "float | None":
    """Best retry delay hint from a shed response, in seconds.

    The JSON body's ``retry_after`` (float, sub-second precision) is
    preferred; the ``Retry-After`` header is the fallback.  RFC 9110
    allows the header in two forms — delay-seconds *or* an HTTP-date
    (proxies commonly rewrite one into the other) — and both are honored:
    a date in the past clamps to 0 rather than being discarded.  ``None``
    when the response carries neither.
    """
    if isinstance(body, dict):
        hint = body.get("retry_after")
        if isinstance(hint, (int, float)) and hint >= 0:
            return float(hint)
    header = exc.headers.get("Retry-After") if exc.headers is not None else None
    if header is not None:
        try:
            parsed = float(header)
        except ValueError:
            try:
                when = parsedate_to_datetime(header)
            except (TypeError, ValueError):
                return None
            if when is None:
                return None
            if when.tzinfo is None:
                when = when.replace(tzinfo=timezone.utc)
            return max(0.0, (when - datetime.now(timezone.utc)).total_seconds())
        if parsed >= 0:
            return parsed
    return None


class PredictionServiceError(RuntimeError):
    """Raised when the server rejects a request or is unreachable."""


class RetryableServiceError(PredictionServiceError):
    """Transient failure — retrying the same request may succeed."""


class TerminalServiceError(PredictionServiceError):
    """Definitive rejection — retrying the same request cannot succeed."""


class DeadlineExceeded(PredictionServiceError):
    """The caller's total time budget expired before a request succeeded.

    Raised *instead of sleeping* when the next backoff delay would overrun
    the budget; ``__cause__`` carries the last underlying service error.
    """


class PredictionClient:
    """HTTP client bound to one prediction-server address or a replica set.

    Args:
        address:     ``(host, port)`` of the server, or a list of such
                     pairs for a replicated deployment (first entry is the
                     initially preferred endpoint).
        timeout:     per-attempt socket timeout in seconds.
        retries:     extra attempts for idempotent (GET) requests on
                     transient failures; POSTs are never retried unless
                     they carry an idempotency key.
        backoff:     first retry delay; doubles per attempt.
        backoff_max: delay cap.
        jitter:      each delay is multiplied by ``1 + uniform(0, jitter)``
                     so a fleet of recovering clients doesn't stampede.
        deadline:    default total wall-clock budget (seconds) per logical
                     request across all retries and endpoint rotations;
                     ``None`` keeps the attempt-count bound only.
        breaker_threshold: consecutive transport failures that open an
                     endpoint's circuit breaker.
        breaker_cooldown:  seconds an open breaker diverts traffic away
                     from an endpoint before it is probed again.
        transport:   serving transport for :meth:`predict_candidates` —
                     ``"auto"`` (default) uses the persistent binary
                     connection when the server offers one and silently
                     falls back to JSON/HTTP on any transport-level
                     failure; ``"binary"`` requires it (transport failures
                     raise); ``"json"`` never touches the binary port.
                     Server *answers* (including errors) never trigger a
                     fallback — both transports hit the same backend.
        binary_address: ``(host, port)`` of the server's binary listener;
                     ``None`` (default) discovers it from ``/status``.
    """

    def __init__(
        self,
        address: "tuple[str, int] | list[tuple[str, int]]",
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.5,
        deadline: "float | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        transport: str = "auto",
        binary_address: "tuple[str, int] | None" = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0 or backoff_max <= 0:
            raise ValueError("backoff and backoff_max must be positive")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {breaker_cooldown}"
            )
        if transport not in ("auto", "json", "binary"):
            raise ValueError(
                f"transport must be 'auto', 'json' or 'binary', got {transport!r}"
            )
        addresses = (
            [address] if isinstance(address, tuple) else list(address)
        )
        if not addresses:
            raise ValueError("address list must not be empty")
        self._bases = [f"http://{host}:{port}" for host, port in addresses]
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.deadline = deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._jitter_rng = random.Random()
        self.retries_performed = 0
        self.failovers_performed = 0
        # Routing state: _preferred serves reads, _primary (once learned
        # from a successful write) serves writes.  Per-endpoint breaker
        # state lives in parallel lists.
        self._preferred = 0
        self._primary: "int | None" = None
        self._failures = [0] * len(self._bases)
        self._open_until = [0.0] * len(self._bases)
        # Binary-transport state: one persistent connection, lazily opened
        # (and lazily re-discovered after it drops).
        self.transport = transport
        self._binary_address = binary_address
        self._binary_lock = threading.Lock()
        self._binary_conn: "BinaryConnection | None" = None
        self._binary_retry_at = 0.0

    @property
    def endpoints(self) -> "list[str]":
        """Base URLs of the configured replica set, in preference order."""
        return list(self._bases)

    @property
    def _base(self) -> str:
        """Currently preferred base URL (kept for single-endpoint callers)."""
        return self._bases[self._preferred]

    # -- endpoint selection ---------------------------------------------------
    def _pick_endpoint(self, write: bool) -> int:
        """Next endpoint to try: the presumed primary for writes (when
        known), otherwise the preferred read endpoint — skipping endpoints
        whose breaker is open.  When every breaker is open the preferred
        endpoint is probed anyway (half-open), so a fully partitioned
        client still discovers recovery."""
        count = len(self._bases)
        start = (
            self._primary
            if write and self._primary is not None
            else self._preferred
        )
        now = time.monotonic()
        for step in range(count):
            index = (start + step) % count
            if self._open_until[index] <= now:
                return index
        return start

    def _note_success(self, index: int, write: bool) -> None:
        self._failures[index] = 0
        self._open_until[index] = 0.0
        self._preferred = index
        if write:
            self._primary = index

    def _note_failure(self, index: int) -> None:
        self._failures[index] += 1
        if self._failures[index] >= self.breaker_threshold:
            self._open_until[index] = time.monotonic() + self.breaker_cooldown

    # -- transport ------------------------------------------------------------
    def _request_once(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        raw: bool = False,
        index: int = 0,
        timeout: "float | None" = None,
    ) -> "dict | str":
        base = self._bases[index]
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        if timeout is None:
            timeout = self.timeout
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                body = response.read()
                return body.decode("utf-8") if raw else json.loads(body)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except Exception:
                body = None
            detail = body.get("error", "") if isinstance(body, dict) else ""
            message = f"{method} {path} failed with HTTP {exc.code}: {detail}"
            kind = (
                RetryableServiceError
                if exc.code >= 500 or exc.code == 429
                else TerminalServiceError
            )
            error = kind(message)
            error.status = exc.code
            error.body = body
            error.retry_after = _retry_after_hint(exc, body)
            raise error from exc
        except urllib.error.URLError as exc:
            raise RetryableServiceError(
                f"cannot reach prediction service at {base}: {exc.reason}"
            ) from exc
        except TimeoutError as exc:
            raise RetryableServiceError(
                f"{method} {path} timed out after {timeout}s"
            ) from exc

    def _request(
        self,
        method: str,
        path: str,
        payload: "dict | None" = None,
        idempotent: "bool | None" = None,
        raw: bool = False,
        write: bool = False,
        deadline: "float | None" = None,
    ) -> "dict | str":
        if idempotent is None:
            idempotent = method == "GET"
        if deadline is None:
            deadline = self.deadline
        deadline_at = (
            time.monotonic() + deadline if deadline is not None else None
        )
        attempts = self.retries + 1 if idempotent else 1
        delay = self.backoff
        attempt = 0
        redirects = 0
        last_error: "PredictionServiceError | None" = None
        while True:
            timeout = self.timeout
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        f"{method} {path}: deadline of {deadline}s exhausted"
                    ) from last_error
                timeout = min(timeout, remaining)
            index = self._pick_endpoint(write)
            try:
                result = self._request_once(
                    method, path, payload, raw=raw, index=index, timeout=timeout
                )
            except TerminalServiceError as exc:
                body = getattr(exc, "body", None)
                code = body.get("code") if isinstance(body, dict) else None
                if (
                    code in _FENCED_CODES
                    and len(self._bases) > 1
                    and redirects < len(self._bases)
                ):
                    # A fenced 409 guarantees the server applied nothing,
                    # so re-routing the same request — even a keyless
                    # observation POST — is safe, and no backoff sleep is
                    # needed: the replica is healthy, just not primary.
                    redirects += 1
                    self.failovers_performed += 1
                    last_error = exc
                    if write:
                        self._primary = None
                    self._preferred = (index + 1) % len(self._bases)
                    continue
                raise
            except RetryableServiceError as exc:
                # Only transport failures (no HTTP status: refused, reset,
                # timed out) indict the endpoint itself; a 429/503 means
                # the node is alive and shedding, so it keeps its breaker
                # standing and its primary role.
                if getattr(exc, "status", None) is None:
                    self._note_failure(index)
                    if write:
                        self._primary = None
                    if len(self._bases) > 1:
                        # Rotate away from the dead replica right away; the
                        # breaker keeps it deprioritized until it recovers.
                        self._preferred = (index + 1) % len(self._bases)
                        self.failovers_performed += 1
                last_error = exc
                attempt += 1
                if attempt >= attempts:
                    raise
                sleep = min(delay, self.backoff_max) * (
                    1.0 + self.jitter * self._jitter_rng.random()
                )
                # A shedding server knows when capacity returns; its
                # Retry-After is a floor under our own backoff, so a fleet
                # of retrying clients doesn't hammer a rate limiter that
                # already told them when to come back.  Jitter on top of
                # the hint too: every shed client got the same number, and
                # synchronized wake-ups would re-create the very stampede
                # the server shed.
                hint = getattr(exc, "retry_after", None)
                if hint is not None:
                    sleep = max(
                        sleep,
                        hint * (1.0 + self.jitter * self._jitter_rng.random()),
                    )
                if deadline_at is not None and (
                    time.monotonic() + sleep >= deadline_at
                ):
                    # Sleeping would overrun the budget; fail fast with
                    # the real cause chained instead of dozing into it.
                    raise DeadlineExceeded(
                        f"{method} {path}: next retry would exceed the "
                        f"{deadline}s deadline"
                    ) from exc
                time.sleep(sleep)
                delay *= 2.0
                self.retries_performed += 1
            else:
                self._note_success(index, write)
                return result

    # -- the Fig. 3 interface -------------------------------------------------
    def report_observation(
        self,
        user_id: int,
        service_id: int,
        value: float,
        timestamp: float,
        idempotency_key: "str | None" = None,
        deadline: "float | None" = None,
    ) -> float:
        """Upload one observed QoS sample; returns its pre-update error.

        With ``idempotency_key`` set, the POST is retried on transient
        failures like an idempotent request — the server's dedup ledger
        guarantees the sample is applied at most once (see the module
        docstring for the at-least-once contract).  ``deadline`` caps the
        total time spent across retries and failovers for this one call
        (overriding the constructor default); on expiry
        :class:`DeadlineExceeded` is raised.  Returns NaN when the server
        acknowledged without a fresh model update (a deduplicated retry,
        or a sample the outlier gate quarantined).
        """
        payload = {
            "timestamp": timestamp,
            "user_id": user_id,
            "service_id": service_id,
            "value": value,
        }
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        body = self._request(
            "POST",
            "/observations",
            payload,
            idempotent=idempotency_key is not None,
            write=True,
            deadline=deadline,
        )
        error = body.get("sample_error")
        return float(error) if error is not None else float("nan")

    def report_observations(self, observations: "list[dict]") -> int:
        """Upload many samples; returns how many were accepted.

        Bad records no longer abort the batch server-side; use
        :meth:`report_observations_detailed` for per-item outcomes.
        """
        return int(self.report_observations_detailed(observations)["accepted"])

    def report_observations_detailed(self, observations: "list[dict]") -> dict:
        """Upload many samples; returns ``{accepted, rejected, sample_errors}``
        where ``rejected`` lists ``{index, error}`` per refused record."""
        return self._request(
            "POST",
            "/observations/batch",
            {"observations": observations},
            write=True,
        )

    def predict(self, user_id: int, service_id: int) -> float:
        """Predicted QoS for one (user, service) pair."""
        return float(self.predict_detailed(user_id, service_id)["prediction"])

    def predict_detailed(self, user_id: int, service_id: int) -> dict:
        """Prediction plus its provenance: ``{prediction, source,
        expected_error}`` — ``source`` is ``"model"`` or a degraded-mode
        estimator, ``expected_error`` the calibration confidence."""
        query = urllib.parse.urlencode(
            {"user_id": user_id, "service_id": service_id}
        )
        return self._request("GET", f"/predictions?{query}")

    # -- binary transport -----------------------------------------------------
    def _discover_binary_address(self) -> tuple[str, int]:
        if self._binary_address is not None:
            return self._binary_address
        status = self._request("GET", "/status")
        advertised = (status.get("transport") or {}).get("binary_address")
        if not advertised:
            raise ConnectionError("server does not advertise a binary transport")
        return advertised[0], int(advertised[1])

    def _binary_connection(self) -> BinaryConnection:
        """The persistent binary connection, opening (and discovering the
        address) on first use or after a drop."""
        with self._binary_lock:
            if self._binary_conn is not None:
                return self._binary_conn
        address = self._discover_binary_address()
        conn = BinaryConnection(address, timeout=self.timeout)
        conn.connect()
        with self._binary_lock:
            if self._binary_conn is None:
                self._binary_conn = conn
                return conn
        conn.close()  # lost the race; use the one another thread opened
        return self._binary_conn

    def _drop_binary_connection(self) -> None:
        with self._binary_lock:
            conn = self._binary_conn
            self._binary_conn = None
            self._binary_retry_at = time.monotonic() + self.breaker_cooldown
        if conn is not None:
            conn.close()

    def close(self) -> None:
        """Release the persistent binary connection (JSON needs no cleanup)."""
        with self._binary_lock:
            conn = self._binary_conn
            self._binary_conn = None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _binary_server_error(exc: BinaryServerError) -> PredictionServiceError:
        kind = (
            RetryableServiceError
            if exc.status >= 500 or exc.status == 429
            else TerminalServiceError
        )
        error = kind(
            f"PREDICT_BATCH failed with HTTP {exc.status}: "
            f"{exc.payload.get('error', '')}"
        )
        error.status = exc.status
        error.body = exc.payload
        error.retry_after = exc.payload.get("retry_after")
        return error

    def predict_candidates(
        self, user_id: int, service_ids: "list[int]"
    ) -> dict[int, float]:
        """Predicted QoS for a candidate pool, keyed by service id.

        One batched round trip for the whole pool (duplicate ids are
        deduplicated before hitting the wire), over the persistent binary
        connection when the transport allows it — see the constructor's
        ``transport`` parameter.
        """
        return self.predict_candidates_detailed(user_id, service_ids)["predictions"]

    def predict_candidates_detailed(
        self, user_id: int, service_ids: "list[int]"
    ) -> dict:
        """Like :meth:`predict_candidates` but returns ``{predictions,
        sources, transport}`` — per-service fallback-chain provenance plus
        which transport actually answered."""
        unique_ids = list(dict.fromkeys(int(s) for s in service_ids))
        if self.transport != "json":
            may_probe = (
                self.transport == "binary"
                or time.monotonic() >= self._binary_retry_at
            )
            if may_probe:
                try:
                    conn = self._binary_connection()
                    values, sources = conn.predict_batch(user_id, unique_ids)
                except BinaryServerError as exc:
                    # The server *answered*; JSON would answer identically,
                    # so surface it instead of falling back.
                    raise self._binary_server_error(exc) from exc
                except (OSError, ProtocolError, PredictionServiceError) as exc:
                    self._drop_binary_connection()
                    if self.transport == "binary":
                        if isinstance(exc, PredictionServiceError):
                            raise
                        raise RetryableServiceError(
                            f"binary transport unavailable: {exc}"
                        ) from exc
                else:
                    return {
                        "user_id": user_id,
                        "predictions": {
                            sid: float(v) for sid, v in zip(unique_ids, values)
                        },
                        "sources": dict(zip(unique_ids, sources)),
                        "transport": "binary",
                    }
        body = self._request(
            "POST",
            "/predictions/batch",
            {"user_id": user_id, "service_ids": unique_ids},
            idempotent=True,  # predictions don't mutate the model
        )
        return {
            "user_id": user_id,
            "predictions": {int(k): float(v) for k, v in body["predictions"].items()},
            "sources": {int(k): v for k, v in body.get("sources", {}).items()},
            "transport": "json",
        }

    def credence(self, service_ids: "list[int]") -> dict[int, float]:
        """Per-service EMA relative error (credence), keyed by service id.

        A pure read: unknown services report the model's ``init_error``
        and nothing is registered.  The cluster router uses this to merge
        authoritative credence from each service's home shard.
        """
        unique_ids = list(dict.fromkeys(int(s) for s in service_ids))
        query = urllib.parse.urlencode(
            {"service_ids": ",".join(str(s) for s in unique_ids)}
        )
        body = self._request("GET", f"/credence?{query}")
        return {int(k): float(v) for k, v in body["credence"].items()}

    def status(self) -> dict:
        """Server-side model statistics."""
        return self._request("GET", "/status")

    def replication_status(self) -> dict:
        """Replication role/epoch/lag of the currently preferred endpoint
        (``{"replicated": False, ...}`` for an unreplicated server)."""
        return self._request("GET", "/replication/status")

    def metrics(self) -> str:
        """Raw ``/metrics`` body — Prometheus text exposition, not JSON.

        Same typed errors and idempotent-GET retry policy as the JSON
        routes; parse the result with
        :func:`repro.observability.parse_prometheus_text` if structure is
        needed.
        """
        return self._request("GET", "/metrics", raw=True)

    def health(self) -> dict:
        """Liveness/readiness report; ``{"status": "ok" | "unavailable",
        "checks": {...}, ...}``.  A 503 (not ready) returns the body rather
        than raising, so callers can inspect which check failed."""
        try:
            return self._request("GET", "/health", idempotent=False)
        except PredictionServiceError as exc:
            body = getattr(exc, "body", None)
            if getattr(exc, "status", None) == 503 and isinstance(body, dict):
                return body
            raise
