"""Durable observation log and checkpoint store for the prediction server.

A serving deployment of the paper's architecture (Fig. 3) is consulted
exactly when services misbehave, so it cannot afford to lose its model to a
crash.  Durability here is the classic database recipe:

* **Write-ahead log** — every accepted observation is appended to a segment
  file (JSON lines, one record per line) and fsync'd *before* it is applied
  to the model.  Records carry a monotonically increasing sequence number.
* **Checkpoints** — periodically the full model state is written through
  :func:`repro.core.serialization.save_model` (write-temp-then-rename, RNG
  state included) tagged with the highest WAL sequence it covers; older
  segments are then pruned.
* **Recovery** — on restart, load the latest checkpoint and re-apply every
  WAL record with a higher sequence number.  Because observations are
  deterministic given model state + RNG state, the recovered model is
  *bit-exact* with the pre-crash one (see ``tests/test_recovery.py``).

A crash can leave a torn final line in the active segment; replay stops at
the first unparsable line and reports it (``torn_lines``) rather than
guessing — everything before the tear was fsync'd and is intact.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Iterator

from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.serialization import load_model, save_model
from repro.datasets.schema import QoSRecord
from repro.observability import get_registry

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"

# Durability observability: the fsync is the dominant per-observation cost
# of the write path, so its latency distribution is the first thing an
# operator needs; segment counts and torn-tail skips cover the rest.
_METRICS = get_registry()
_WAL_APPENDS = _METRICS.counter(
    "qos_wal_appends_total", "Observations durably appended to the WAL"
)
_WAL_FSYNC_SECONDS = _METRICS.histogram(
    "qos_wal_fsync_seconds", "fsync latency per WAL append"
)
_WAL_SEGMENTS = _METRICS.gauge(
    "qos_wal_segments", "WAL segment files currently on disk"
)
_WAL_TORN_LINES = _METRICS.counter(
    "qos_wal_torn_lines_total",
    "Unparsable (torn) WAL lines skipped during recovery scans",
)
_WAL_APPEND_ERRORS = _METRICS.counter(
    "qos_wal_append_errors_total",
    "WAL appends that failed at the OS layer (full disk, I/O error)",
)
_CHECKPOINT_SAVES = _METRICS.counter(
    "qos_checkpoint_saves_total", "Model checkpoints written"
)
_CHECKPOINT_SAVE_SECONDS = _METRICS.histogram(
    "qos_checkpoint_save_seconds", "Wall-clock seconds per checkpoint save"
)


class WalAppendError(OSError):
    """A WAL append failed at the OS layer (``ENOSPC``, I/O error, ...).

    The log is left in a failed state (``writable`` turns false) because a
    partial line may sit at the tail of the active segment: acknowledging
    further appends after an unflushed write would break the
    log-before-apply ordering durability depends on.  The server maps this
    to read-only degraded mode — predictions keep serving, observation
    writes get a structured 507.  ``errno`` is preserved from the
    underlying :class:`OSError`.
    """

    def __init__(self, message: str, errno: "int | None" = None) -> None:
        super().__init__(message)
        self.errno = errno


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(name: str) -> int:
    return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])


class WriteAheadLog:
    """Append-only, fsync'd, segmented observation log.

    Thread-safe: appends are serialized by an internal lock, but callers
    that need WAL order to match model-apply order (the server's ingest
    path) must hold their own lock around the append+apply pair.

    Args:
        directory:           where segment files live (created if missing).
        segment_max_records: records per segment before rotating to a new
                             file; bounds the cost of pruning and the size
                             of any single file.
        fsync:               fsync after every append (the durability
                             guarantee); disable only for tests/benchmarks.
        fsync_delay:         extra seconds slept after each fsync — a
                             *simulation knob* modeling production disk
                             commit latency (spinning media or networked
                             block storage, typically 1–10 ms) on test
                             hardware whose fsync is near-free.  Scaling
                             benchmarks use it to make ingest honestly
                             disk-bound; it is recorded in any bench
                             output that enables it.  0.0 (default) in
                             production.
    """

    def __init__(
        self,
        directory: str,
        segment_max_records: int = 4096,
        fsync: bool = True,
        fsync_delay: float = 0.0,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError(
                f"segment_max_records must be >= 1, got {segment_max_records}"
            )
        if fsync_delay < 0:
            raise ValueError(f"fsync_delay must be >= 0, got {fsync_delay}")
        self.directory = str(directory)
        self.segment_max_records = segment_max_records
        self.fsync = fsync
        self.fsync_delay = float(fsync_delay)
        self._lock = threading.Lock()
        self._handle = None
        self._closed = False
        self._append_failed: "str | None" = None
        self.torn_lines = 0
        self.appended = 0
        os.makedirs(self.directory, exist_ok=True)
        self._last_seq = self._scan_last_seq()
        self._open_active_segment()
        _WAL_SEGMENTS.set(self.segment_count())

    # -- discovery -----------------------------------------------------------
    def _segment_names(self) -> list[str]:
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
        ]
        return sorted(names, key=_segment_first_seq)

    def _scan_last_seq(self) -> int:
        """Highest sequence number on disk (0 for an empty log).

        Only the final segment needs scanning: earlier segments end where
        their successor begins.  A torn tail line is counted and ignored.
        """
        names = self._segment_names()
        if not names:
            return 0
        last_seq = _segment_first_seq(names[-1]) - 1
        for entry in self._read_segment_entries(names[-1]):
            last_seq = entry[1]
        return last_seq

    def _read_segment_entries(self, name: str) -> Iterator[tuple]:
        """Parse one segment's tagged entries, stopping at the first bad line.

        The log is a tagged union: observation lines
        (``{"seq","t","u","s","v","k"?}``) yield
        ``("obs", seq, record, key)``; lifecycle-event lines
        (``{"seq","ev","d"}``, e.g. entity revivals and memory-pressure
        capacity changes) yield ``("ev", seq, kind, data)``.  Both advance
        the sequence scan — an event at the log tail must count toward
        ``last_seq`` or the next append would reuse its number.

        Read in binary and decode per line: a torn tail can hold arbitrary
        bytes, which must register as a tear (tallied, scan stops) — not
        raise UnicodeDecodeError out of recovery.
        """
        path = os.path.join(self.directory, name)
        with open(path, "rb") as handle:
            for raw in handle:
                try:
                    entry = json.loads(raw.decode("utf-8"))
                    seq = int(entry["seq"])
                    if "ev" in entry:
                        kind = str(entry["ev"])
                        data = entry["d"]
                        if not isinstance(data, dict):
                            raise TypeError("event data must be an object")
                        yield_value = ("ev", seq, kind, data)
                    else:
                        record = QoSRecord(
                            timestamp=float(entry["t"]),
                            user_id=int(entry["u"]),
                            service_id=int(entry["s"]),
                            value=float(entry["v"]),
                        )
                        key = entry.get("k")
                        if key is not None:
                            key = str(key)
                        yield_value = ("obs", seq, record, key)
                except (ValueError, KeyError, TypeError):
                    self.torn_lines += 1
                    _WAL_TORN_LINES.inc()
                    return
                yield yield_value

    def _read_segment(
        self, name: str
    ) -> Iterator[tuple[int, QoSRecord, "str | None"]]:
        """Observation-only view of :meth:`_read_segment_entries`."""
        for entry in self._read_segment_entries(name):
            if entry[0] == "obs":
                yield entry[1], entry[2], entry[3]

    # -- writing -------------------------------------------------------------
    def _open_active_segment(self) -> None:
        names = self._segment_names()
        if names:
            active = names[-1]
            first = _segment_first_seq(active)
            if self._last_seq - first + 1 >= self.segment_max_records:
                active = _segment_name(self._last_seq + 1)
        else:
            active = _segment_name(self._last_seq + 1)
        path = os.path.join(self.directory, active)
        self._handle = open(path, "a", encoding="utf-8")
        self._active_first_seq = _segment_first_seq(active)

    def append(self, record: QoSRecord, key: "str | None" = None) -> int:
        """Durably log one observation; returns its sequence number.

        ``key`` is the caller-supplied idempotency key, if any; it rides in
        the record (``"k"``) so crash recovery rebuilds the dedup ledger
        from the log itself.
        """
        entry = {
            "t": record.timestamp,
            "u": record.user_id,
            "s": record.service_id,
            "v": record.value,
        }
        if key is not None:
            entry["k"] = key
        with self._lock:
            return self._append_locked(entry)

    def append_event(self, kind: str, data: dict) -> int:
        """Durably log one lifecycle event; returns its sequence number.

        Events share the observation sequence space, so recovery replays
        observations and events in their original interleaving.  Current
        kinds (see :meth:`repro.lifecycle.TieredAMF.apply_event`):
        ``revive_user`` / ``revive_service`` (``data = {"id", "p"}``, the
        full spill payload — replay must restore from the log, because the
        spill file reflects crash-time state, not the replayed position)
        and ``pressure`` (``data = {"hu", "hs", "level"}``, a watchdog
        capacity change).  Live entity migration adds ``migration_in``
        (``data = {"mid", "seq", "entities": [[kind, id, payload], ...]}``
        — the full imported batch, logged before the model mutates so
        recovery and standbys replay the exact import) and
        ``migration_out`` (``data = {"entities": [[kind, id], ...]}``,
        the source-side delete after a batch commits remotely).
        Demotions are *not* logged: they are deterministic functions of
        model state and replay identically.
        """
        if not isinstance(data, dict):
            raise TypeError(f"event data must be a dict, got {type(data).__name__}")
        with self._lock:
            return self._append_locked({"ev": str(kind), "d": data})

    def _append_locked(self, entry: dict) -> int:
        """Assign the next sequence number and durably write one entry.

        Caller holds ``self._lock``; ``entry`` is the seq-less body (the
        sequence number is assigned here, under the lock).
        """
        if self._closed:
            raise ValueError("write-ahead log is closed")
        if self._append_failed is not None:
            raise WalAppendError(
                f"write-ahead log is in a failed state: {self._append_failed}"
            )
        seq = self._last_seq + 1
        line = json.dumps({"seq": seq, **entry})
        try:
            if seq - self._active_first_seq >= self.segment_max_records:
                self._handle.close()
                self._active_first_seq = seq
                self._handle = open(
                    os.path.join(self.directory, _segment_name(seq)),
                    "a",
                    encoding="utf-8",
                )
                _WAL_SEGMENTS.set(self.segment_count())
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                fsync_started = time.perf_counter()
                os.fsync(self._handle.fileno())
                if self.fsync_delay:
                    time.sleep(self.fsync_delay)
                _WAL_FSYNC_SECONDS.observe(time.perf_counter() - fsync_started)
        except OSError as exc:
            # A failed write may have left a partial line in the active
            # segment; freeze the log so the failure is sticky and the
            # server can degrade to read-only instead of acknowledging
            # observations that never became durable.
            self._append_failed = f"{type(exc).__name__}: {exc}"
            _WAL_APPEND_ERRORS.inc()
            raise WalAppendError(
                f"WAL append of seq {seq} failed: {exc}",
                errno=getattr(exc, "errno", None),
            ) from exc
        self._last_seq = seq
        self.appended += 1
        _WAL_APPENDS.inc()
        return seq

    # -- reading -------------------------------------------------------------
    def replay(self, after_seq: int = 0) -> Iterator[tuple[int, QoSRecord]]:
        """Yield ``(seq, record)`` for every record with ``seq > after_seq``.

        Segments wholly covered by ``after_seq`` are skipped without being
        read.  Replay stops at the first corrupt line (a torn crash tail).
        """
        for seq, record, __ in self.replay_full(after_seq):
            yield seq, record

    def replay_full(
        self, after_seq: int = 0
    ) -> Iterator[tuple[int, QoSRecord, "str | None"]]:
        """Like :meth:`replay` but also yields each record's idempotency key
        (``None`` when the observation carried none)."""
        names = self._segment_names()
        for index, name in enumerate(names):
            if index + 1 < len(names):
                segment_end = _segment_first_seq(names[index + 1]) - 1
                if segment_end <= after_seq:
                    continue
            for seq, record, key in self._read_segment(name):
                if seq > after_seq:
                    yield seq, record, key

    def replay_entries(self, after_seq: int = 0) -> Iterator[tuple]:
        """Yield every committed entry after ``after_seq``, tagged.

        The full-fidelity recovery stream: ``("obs", seq, record, key)``
        for observations interleaved with ``("ev", seq, kind, data)`` for
        lifecycle events, in sequence order.  :meth:`replay` /
        :meth:`replay_full` remain the observation-only views.
        """
        names = self._segment_names()
        for index, name in enumerate(names):
            if index + 1 < len(names):
                segment_end = _segment_first_seq(names[index + 1]) - 1
                if segment_end <= after_seq:
                    continue
            for entry in self._read_segment_entries(name):
                if entry[1] > after_seq:
                    yield entry

    # -- maintenance ---------------------------------------------------------
    def prune(self, up_to_seq: int) -> int:
        """Delete segments whose every record is covered by a checkpoint.

        The active segment is never deleted.  Returns how many segment
        files were removed.
        """
        with self._lock:
            names = self._segment_names()
            removed = 0
            for index, name in enumerate(names[:-1]):
                segment_end = _segment_first_seq(names[index + 1]) - 1
                if segment_end <= up_to_seq:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
            if removed:
                _WAL_SEGMENTS.set(self.segment_count())
            return removed

    @property
    def last_seq(self) -> int:
        return self._last_seq

    @property
    def writable(self) -> bool:
        """Health probe: the log can accept appends right now."""
        return (
            not self._closed
            and self._append_failed is None
            and self._handle is not None
            and not self._handle.closed
            and os.access(self.directory, os.W_OK)
        )

    @property
    def append_failure(self) -> "str | None":
        """Why the log is frozen (``None`` while healthy)."""
        return self._append_failed

    def read_committed(
        self, after_seq: int = 0, limit: int = 1024
    ) -> list[tuple[int, QoSRecord, "str | None"]]:
        """Read up to ``limit`` committed records with ``seq > after_seq``.

        The replication shipping path: holds the append lock while reading,
        so the active segment cannot gain a half-flushed line mid-scan and
        every returned record is already fsync'd (committed).  Returns
        ``(seq, record, idempotency_key)`` tuples in sequence order.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            batch: list[tuple[int, QoSRecord, "str | None"]] = []
            for seq, record, key in self.replay_full(after_seq):
                if seq > self._last_seq:
                    break
                batch.append((seq, record, key))
                if len(batch) >= limit:
                    break
            return batch

    def read_committed_entries(
        self, after_seq: int = 0, limit: int = 1024
    ) -> list[tuple]:
        """Like :meth:`read_committed` but yields tagged entries — the
        replication shipping path for logs carrying lifecycle events (the
        standby must apply revives and pressure changes in sequence order
        to converge to the primary's tier assignment)."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            batch: list[tuple] = []
            for entry in self.replay_entries(after_seq):
                if entry[1] > self._last_seq:
                    break
                batch.append(entry)
                if len(batch) >= limit:
                    break
            return batch

    def segment_count(self) -> int:
        return len(self._segment_names())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
                self._handle.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CheckpointStore:
    """Atomic full-model checkpoints paired with a WAL position.

    One ``checkpoint.npz`` per directory, written via
    :func:`save_model(..., atomic=True)` so a crash mid-checkpoint leaves
    the previous checkpoint intact.  The covered WAL sequence rides inside
    the archive's ``extra`` dict — checkpoint and position are one file,
    hence atomic together.
    """

    FILENAME = "checkpoint.npz"

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, self.FILENAME)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(
        self,
        model: AdaptiveMatrixFactorization,
        wal_seq: int,
        extra: "dict | None" = None,
    ) -> None:
        payload = dict(extra) if extra else {}
        payload["wal_seq"] = int(wal_seq)
        started = time.perf_counter()
        save_model(model, self.path, extra=payload, atomic=True)
        _CHECKPOINT_SAVE_SECONDS.observe(time.perf_counter() - started)
        _CHECKPOINT_SAVES.inc()

    def load(
        self, rng: "int | None" = None
    ) -> "tuple[AdaptiveMatrixFactorization, int] | None":
        """Return ``(model, covered_wal_seq)``, or ``None`` if no checkpoint.

        ``rng=None`` restores the checkpointed RNG state (exact recovery).
        """
        if not self.exists():
            return None
        model, seq, __ = self.load_full(rng=rng)
        return model, seq

    def load_full(
        self, rng: "int | None" = None
    ) -> "tuple[AdaptiveMatrixFactorization, int, dict] | None":
        """Like :meth:`load` but also returns the checkpoint's ``extra`` dict
        (minus ``wal_seq``) — the server keeps its robustness state there."""
        if not self.exists():
            return None
        model, extra = load_model(self.path, rng=rng, return_extra=True)
        wal_seq = int(extra.pop("wal_seq", 0))
        return model, wal_seq, extra
