"""Background online training: Algorithm 1's outer loop as a real thread.

The paper's Algorithm 1 is an infinite loop — absorb arrivals when they
come, replay existing data otherwise.  The batch drivers in
:mod:`repro.core.online` approximate it for experiments; this module runs
it for real: a :class:`ConcurrentModel` makes one AMF instance safe to
share between threads, and a :class:`BackgroundTrainer` keeps replaying in
a daemon thread while application threads report observations and ask for
predictions.

The lock is coarse (one mutex around every model operation).  AMF updates
are microseconds each, so a coarse lock sustains tens of thousands of
operations per second — far beyond WS-DREAM-scale arrival rates — while
keeping the invariants trivially correct.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.datasets.schema import QoSRecord
from repro.utils.validation import check_positive


class ConcurrentModel:
    """Thread-safe facade over an :class:`AdaptiveMatrixFactorization`.

    Every public method takes the model lock.  The underlying model must
    not be touched directly while a facade wraps it.
    """

    def __init__(self, model: AdaptiveMatrixFactorization) -> None:
        self._model = model
        self._lock = threading.Lock()
        self._latest_timestamp = 0.0

    def observe(self, record: QoSRecord) -> float:
        with self._lock:
            if record.timestamp > self._latest_timestamp:
                self._latest_timestamp = record.timestamp
            return self._model.observe(record)

    @property
    def latest_timestamp(self) -> float:
        """The newest observation timestamp seen (the stream's 'now')."""
        with self._lock:
            return self._latest_timestamp

    def replay_many(
        self, now: float, count: int, kernel: str | None = None
    ) -> tuple[int, int, float]:
        with self._lock:
            return self._model.replay_many(now, count, kernel=kernel)

    def purge_expired(self, now: float) -> int:
        with self._lock:
            return self._model.purge_expired(now)

    def predict(self, user_id: int, service_id: int) -> float:
        with self._lock:
            self._model.ensure_user(user_id)
            self._model.ensure_service(service_id)
            return self._model.predict(user_id, service_id)

    def predict_matrix(self) -> np.ndarray:
        with self._lock:
            return self._model.predict_matrix()

    def training_error(self) -> float:
        with self._lock:
            return self._model.training_error()

    @property
    def n_stored_samples(self) -> int:
        with self._lock:
            return self._model.n_stored_samples

    @property
    def updates_applied(self) -> int:
        with self._lock:
            return self._model.updates_applied

    def locked(self) -> "threading.Lock":
        """The underlying lock, for callers composing larger transactions."""
        return self._lock


class BackgroundTrainer:
    """A daemon thread that replays retained samples continuously.

    Args:
        model:        the shared (thread-safe) model.
        clock:        callable returning the current *stream* time used for
                      expiry decisions.  Defaults to the model's latest
                      observed timestamp — the only base guaranteed to be
                      consistent with the timestamps applications put on
                      their observations.  Pass ``time.monotonic`` (or a
                      simulation clock) only when observations are stamped
                      from the same source.
        batch_size:   replay steps per lock acquisition — large enough to
                      amortize locking (and to give the vectorized kernel
                      full blocks to fuse), small enough to keep arrival
                      latency low.
        idle_sleep:   seconds to sleep when the store is empty.
        kernel:       replay kernel override ("scalar" or "vectorized");
                      ``None`` (default) uses the model's ``config.kernel``.
    """

    def __init__(
        self,
        model: ConcurrentModel,
        clock=None,
        batch_size: int = 256,
        idle_sleep: float = 0.01,
        kernel: str | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        check_positive("idle_sleep", idle_sleep)
        if kernel is not None and kernel not in ("scalar", "vectorized"):
            raise ValueError(
                f"kernel must be 'scalar' or 'vectorized', got {kernel!r}"
            )
        self.model = model
        self.clock = clock if clock is not None else (lambda: model.latest_timestamp)
        self.batch_size = batch_size
        self.idle_sleep = idle_sleep
        self.kernel = kernel
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._replays_applied = 0
        self._expired = 0

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the replay thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="amf-background-trainer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread to exit and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise TimeoutError("background trainer did not stop in time")
            self._thread = None

    def __enter__(self) -> "BackgroundTrainer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- worker --------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            if self.model.n_stored_samples == 0:
                self._stop.wait(self.idle_sleep)
                continue
            applied, expired, __ = self.model.replay_many(
                float(self.clock()), self.batch_size, kernel=self.kernel
            )
            self._replays_applied += applied
            self._expired += expired
            if applied == 0:
                self._stop.wait(self.idle_sleep)

    @property
    def replays_applied(self) -> int:
        """Total replay updates performed by the background thread."""
        return self._replays_applied

    @property
    def expired(self) -> int:
        """Total samples the background thread expired."""
        return self._expired
