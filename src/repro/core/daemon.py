"""Background online training: Algorithm 1's outer loop as a real thread.

The paper's Algorithm 1 is an infinite loop — absorb arrivals when they
come, replay existing data otherwise.  The batch drivers in
:mod:`repro.core.online` approximate it for experiments; this module runs
it for real: a :class:`ConcurrentModel` makes one AMF instance safe to
share between threads, and a :class:`BackgroundTrainer` keeps replaying in
a daemon thread while application threads report observations and ask for
predictions.

The lock is coarse (one mutex around every model operation).  AMF updates
are microseconds each, so a coarse lock sustains tens of thousands of
operations per second — far beyond WS-DREAM-scale arrival rates — while
keeping the invariants trivially correct.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.datasets.schema import QoSRecord
from repro.observability import get_registry
from repro.utils.validation import check_positive

# Background-training observability: is replay keeping up, and is the loop
# crash-looping?  Counters are recorded per batch / per crash; the replay
# lag gauge is computed at scrape time from the most recent trainer.
_METRICS = get_registry()
_BACKGROUND_BATCHES = _METRICS.counter(
    "qos_background_batches_total",
    "Replay batches applied by the background trainer",
)
_BACKGROUND_CRASHES = _METRICS.counter(
    "qos_background_crashes_total",
    "Uncaught exceptions that killed the background replay loop",
)
_BACKGROUND_RESTARTS = _METRICS.counter(
    "qos_background_restarts_total",
    "Times the supervisor restarted a crashed background trainer",
)
_BACKGROUND_REPLAY_LAG = _METRICS.gauge(
    "qos_background_replay_lag_seconds",
    "Seconds since the background trainer last applied a replay batch "
    "(NaN before the first batch)",
)


class ConcurrentModel:
    """Thread-safe facade over an :class:`AdaptiveMatrixFactorization`.

    Every public method takes the model lock.  The underlying model must
    not be touched directly while a facade wraps it.
    """

    def __init__(self, model: AdaptiveMatrixFactorization) -> None:
        self._model = model
        self._lock = threading.Lock()
        self._latest_timestamp = 0.0

    def observe(self, record: QoSRecord) -> float:
        with self._lock:
            if record.timestamp > self._latest_timestamp:
                self._latest_timestamp = record.timestamp
            return self._model.observe(record)

    @property
    def latest_timestamp(self) -> float:
        """The newest observation timestamp seen (the stream's 'now')."""
        with self._lock:
            return self._latest_timestamp

    def replay_many(
        self, now: float, count: int, kernel: str | None = None
    ) -> tuple[int, int, float]:
        with self._lock:
            return self._model.replay_many(now, count, kernel=kernel)

    def purge_expired(self, now: float) -> int:
        with self._lock:
            return self._model.purge_expired(now)

    def predict(self, user_id: int, service_id: int) -> float:
        with self._lock:
            self._model.ensure_user(user_id)
            self._model.ensure_service(service_id)
            return self._model.predict(user_id, service_id)

    def predict_known(self, user_id: int, service_id: int) -> "float | None":
        """Predict without registering entities; ``None`` when either id is
        unknown.  The degraded-mode serving path uses this so hostile or
        cold queries cannot grow the factor matrices."""
        with self._lock:
            if not (
                self._model.knows_user(user_id)
                and self._model.knows_service(service_id)
            ):
                return None
            return self._model.predict(user_id, service_id)

    def predict_batch_known(
        self, user_id: int, service_ids, cache=None
    ) -> tuple[list, int]:
        """Batched :meth:`predict_known` for one user: a single lock
        acquisition and one fused mat-vec for every cache miss.

        Returns ``(values, cache_hits)`` where ``values[i]`` is the
        prediction for ``service_ids[i]`` or ``None`` when the user or that
        service is unknown.  With a
        :class:`~repro.core.online.PredictionCache`, hits are served from
        stamped entries and only misses touch the factors; the stamps are
        read under the same lock the SGD writers take, so a concurrent
        update can never leave a fresh-looking stale entry behind.
        """
        with self._lock:
            model = self._model
            if not model.knows_user(user_id):
                return [None] * len(service_ids), 0
            values: list = [None] * len(service_ids)
            hits = 0
            if cache is None:
                miss_positions = [
                    k
                    for k, sid in enumerate(service_ids)
                    if model.knows_service(sid)
                ]
            else:
                user_version = model.user_version(user_id)
                miss_positions = []
                for k, service_id in enumerate(service_ids):
                    if not model.knows_service(service_id):
                        continue
                    cached = cache.get(
                        user_id,
                        service_id,
                        user_version,
                        model.service_version(service_id),
                    )
                    if cached is None:
                        miss_positions.append(k)
                    else:
                        values[k] = cached
                        hits += 1
            if miss_positions:
                miss_ids = np.asarray(
                    [service_ids[k] for k in miss_positions], dtype=np.intp
                )
                predictions = model.predict_for_user(user_id, miss_ids)
                for k, service_id, value in zip(
                    miss_positions, miss_ids, predictions
                ):
                    value = float(value)
                    values[k] = value
                    # Only finite values are cacheable: a non-finite
                    # prediction signals unhealthy factors, and serving it
                    # from cache would outlive the model being repaired.
                    if cache is not None and np.isfinite(value):
                        cache.put(
                            user_id,
                            int(service_id),
                            value,
                            user_version,
                            model.service_version(int(service_id)),
                        )
            return values, hits

    def expected_error(self, user_id: int, service_id: int) -> float:
        """Anticipated relative error of predicting ``(user_id, service_id)``
        from the EMA error trackers (the calibration confidence signal)."""
        with self._lock:
            return self._model.expected_error(user_id, service_id)

    def is_finite(self) -> bool:
        """Health probe: every initialized factor entry is finite."""
        with self._lock:
            return bool(
                np.all(np.isfinite(self._model._user_factors.view()))
                and np.all(np.isfinite(self._model._service_factors.view()))
            )

    @property
    def n_users(self) -> int:
        with self._lock:
            return self._model.n_users

    @property
    def n_services(self) -> int:
        with self._lock:
            return self._model.n_services

    def user_factors(self) -> np.ndarray:
        with self._lock:
            return self._model.user_factors()

    def service_factors(self) -> np.ndarray:
        with self._lock:
            return self._model.service_factors()

    def with_model(self, fn):
        """Run ``fn(raw_model)`` under the lock; for compound transactions
        (e.g. writing a checkpoint) that need a consistent model state."""
        with self._lock:
            return fn(self._model)

    def note_timestamp(self, timestamp: float) -> None:
        """Advance the stream clock without an observation (e.g. after
        recovery replays a WAL tail whose records carry old timestamps)."""
        with self._lock:
            if timestamp > self._latest_timestamp:
                self._latest_timestamp = timestamp

    def predict_matrix(self) -> np.ndarray:
        with self._lock:
            return self._model.predict_matrix()

    def training_error(self) -> float:
        with self._lock:
            return self._model.training_error()

    @property
    def n_stored_samples(self) -> int:
        with self._lock:
            return self._model.n_stored_samples

    @property
    def updates_applied(self) -> int:
        with self._lock:
            return self._model.updates_applied

    def locked(self) -> "threading.Lock":
        """The underlying lock, for callers composing larger transactions."""
        return self._lock


class BackgroundTrainer:
    """A daemon thread that replays retained samples continuously.

    Args:
        model:        the shared (thread-safe) model.
        clock:        callable returning the current *stream* time used for
                      expiry decisions.  Defaults to the model's latest
                      observed timestamp — the only base guaranteed to be
                      consistent with the timestamps applications put on
                      their observations.  Pass ``time.monotonic`` (or a
                      simulation clock) only when observations are stamped
                      from the same source.
        batch_size:   replay steps per lock acquisition — large enough to
                      amortize locking (and to give the vectorized kernel
                      full blocks to fuse), small enough to keep arrival
                      latency low.
        idle_sleep:   seconds to sleep when the store is empty.
        kernel:       replay kernel override ("scalar", "vectorized" or
                      "parallel" — the latter requires a
                      :class:`~repro.core.parallel.ParallelReplayEngine`
                      attached to the model); ``None`` (default) uses the
                      model's ``config.kernel``.
    """

    def __init__(
        self,
        model: ConcurrentModel,
        clock=None,
        batch_size: int = 256,
        idle_sleep: float = 0.01,
        kernel: str | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        check_positive("idle_sleep", idle_sleep)
        if kernel is not None and kernel not in ("scalar", "vectorized", "parallel"):
            raise ValueError(
                f"kernel must be 'scalar', 'vectorized' or 'parallel', got {kernel!r}"
            )
        self.model = model
        self.clock = clock if clock is not None else (lambda: model.latest_timestamp)
        self.batch_size = batch_size
        self.idle_sleep = idle_sleep
        self.kernel = kernel
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._replays_applied = 0
        self._expired = 0
        self._crash_count = 0
        self._failure: "BaseException | None" = None
        self._last_batch_monotonic: "float | None" = None
        # Most recently constructed trainer owns the scrape-time lag probe.
        _BACKGROUND_REPLAY_LAG.set_function(self.replay_lag_seconds)

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the replay thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="amf-background-trainer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread to exit and join it.

        Safe to call repeatedly and from any state.  If the join times out,
        the thread reference is *abandoned* (the daemon thread will still
        exit as soon as it observes the stop event) and ``TimeoutError`` is
        raised — but the trainer is left in a consistent stopped state:
        ``running`` is False and a further ``stop()`` is a no-op.
        """
        self._stop.set()
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout=timeout)
        self._thread = None
        if thread.is_alive():
            raise TimeoutError(
                "background trainer did not stop in time; thread abandoned "
                "(it exits once it observes the stop signal)"
            )

    def __enter__(self) -> "BackgroundTrainer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- worker --------------------------------------------------------------
    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                if self.model.n_stored_samples == 0:
                    self._stop.wait(self.idle_sleep)
                    continue
                applied, expired, __ = self.model.replay_many(
                    float(self.clock()), self.batch_size, kernel=self.kernel
                )
                self._replays_applied += applied
                self._expired += expired
                self._last_batch_monotonic = time.monotonic()
                _BACKGROUND_BATCHES.inc()
                if applied == 0:
                    self._stop.wait(self.idle_sleep)
        except BaseException as exc:  # noqa: BLE001 — recorded for the supervisor
            self._failure = exc
            self._crash_count += 1
            _BACKGROUND_CRASHES.inc()

    def replay_lag_seconds(self) -> float:
        """Seconds since the last replay batch (NaN before the first).

        The operator-facing "is background training keeping up" signal,
        exposed as the ``qos_background_replay_lag_seconds`` gauge.
        """
        last = self._last_batch_monotonic
        if last is None:
            return float("nan")
        return time.monotonic() - last

    @property
    def replays_applied(self) -> int:
        """Total replay updates performed by the background thread."""
        return self._replays_applied

    @property
    def expired(self) -> int:
        """Total samples the background thread expired."""
        return self._expired

    @property
    def crash_count(self) -> int:
        """How many times the replay loop died on an uncaught exception."""
        return self._crash_count

    @property
    def failure(self) -> "BaseException | None":
        """The most recent uncaught exception from the replay loop, if any."""
        return self._failure


class TrainerSupervisor:
    """Keeps a :class:`BackgroundTrainer` alive across crashes.

    Without supervision, an uncaught exception in the replay loop silently
    stops background training — the served model just quietly stales.  The
    supervisor watches the trainer thread; when it dies with a recorded
    failure, the supervisor waits a capped exponential backoff and restarts
    it, surfacing crash/restart counts for ``/status`` and ``/health``.

    Args:
        trainer:        the trainer to supervise (not yet started).
        check_interval: seconds between liveness checks.
        backoff_base:   first restart delay; doubles per consecutive crash.
        backoff_max:    delay cap.
        backoff_reset:  a trainer that stays alive this long after a restart
                        resets the backoff to ``backoff_base``.
    """

    def __init__(
        self,
        trainer: BackgroundTrainer,
        check_interval: float = 0.05,
        backoff_base: float = 0.1,
        backoff_max: float = 5.0,
        backoff_reset: float = 10.0,
    ) -> None:
        check_positive("check_interval", check_interval)
        check_positive("backoff_base", backoff_base)
        check_positive("backoff_max", backoff_max)
        check_positive("backoff_reset", backoff_reset)
        self.trainer = trainer
        self.check_interval = check_interval
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.backoff_reset = backoff_reset
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._restarts = 0
        # Crash-count baseline taken *before* the trainer ever runs: if the
        # monitor thread snapshotted it after start(), a crash in the gap
        # would look already-handled and the trainer would never restart.
        self._seen_crashes = trainer.crash_count

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the trainer and the monitor thread (idempotent)."""
        self.trainer.start()
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._monitor, name="amf-trainer-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the monitor first (so it cannot resurrect), then the trainer."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
        self.trainer.stop(timeout=timeout)

    def __enter__(self) -> "TrainerSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- monitor -------------------------------------------------------------
    def _monitor(self) -> None:
        backoff = self.backoff_base
        last_restart = float("-inf")
        while not self._stop.wait(self.check_interval):
            if self.trainer.crash_count == self._seen_crashes or self.trainer.running:
                continue
            now = time.monotonic()
            if now - last_restart > self.backoff_reset:
                backoff = self.backoff_base
            if self._stop.wait(backoff):
                return
            self._seen_crashes = self.trainer.crash_count
            self.trainer.start()
            self._restarts += 1
            _BACKGROUND_RESTARTS.inc()
            last_restart = time.monotonic()
            backoff = min(backoff * 2.0, self.backoff_max)

    # -- introspection -------------------------------------------------------
    @property
    def restarts(self) -> int:
        """How many times the supervisor restarted the trainer."""
        return self._restarts

    @property
    def crashes(self) -> int:
        return self.trainer.crash_count

    @property
    def last_failure(self) -> "str | None":
        """Human-readable description of the most recent trainer crash."""
        failure = self.trainer.failure
        if failure is None:
            return None
        return f"{type(failure).__name__}: {failure}"

    def health(self) -> dict:
        """Snapshot for ``/status`` and ``/health`` payloads."""
        return {
            "running": self.trainer.running,
            "supervised": self.running,
            "crashes": self.crashes,
            "restarts": self._restarts,
            "last_failure": self.last_failure,
        }
