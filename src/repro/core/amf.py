"""Adaptive Matrix Factorization (Section IV-C, Algorithm 1).

AMF maintains latent factor matrices ``U`` (users) and ``S`` (services) that
are updated one observation at a time.  Each observed sample
``(t, u, s, R)`` is

1. normalized through Box-Cox + linear scaling (Eqs. 3-4),
2. compared against the sigmoid-linked prediction ``g(U_u . S_s)``,
3. folded into the per-entity error trackers, producing credence weights
   ``(w_u, w_s)`` (Eqs. 12-15), and
4. applied as a weighted SGD step on both factor vectors (Eqs. 16-17).

The model additionally keeps a bounded store of the latest observation per
(user, service) pair so that Algorithm 1's replay loop can re-sample
existing data between arrivals and expire observations older than the
configured time window.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.config import AMFConfig
from repro.core.transform import QoSNormalizer, sigmoid
from repro.core.weights import AdaptiveWeights
from repro.datasets.schema import QoSRecord
from repro.utils.rng import spawn_rng


class _GrowableFactors:
    """Row-growable latent factor matrix with random row initialization."""

    def __init__(self, rank: int, init_scale: float, rng: np.random.Generator) -> None:
        self.rank = rank
        self._init_scale = init_scale
        self._rng = rng
        self._rows = np.empty((16, rank), dtype=float)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def ensure(self, row_id: int) -> None:
        """Make ``row_id`` addressable, randomly initializing new rows."""
        if row_id < 0:
            raise IndexError(f"row id must be non-negative, got {row_id}")
        if row_id >= self._rows.shape[0]:
            new_capacity = max(self._rows.shape[0] * 2, row_id + 1)
            grown = np.empty((new_capacity, self.rank), dtype=float)
            grown[: self._size] = self._rows[: self._size]
            self._rows = grown
        while self._size <= row_id:
            self._rows[self._size] = self._rng.standard_normal(self.rank) * self._init_scale
            self._size += 1

    def row(self, row_id: int) -> np.ndarray:
        """A *view* of the factor vector; mutate in place to update."""
        self.ensure(row_id)
        return self._rows[row_id]

    def reinitialize(self, row_id: int) -> None:
        """Draw a fresh random vector for ``row_id`` (used on entity rejoin)."""
        self.ensure(row_id)
        self._rows[row_id] = self._rng.standard_normal(self.rank) * self._init_scale

    def matrix(self) -> np.ndarray:
        """Copy of all initialized rows, shape ``(size, rank)``."""
        return self._rows[: self._size].copy()


class _SampleStore:
    """Latest observation per (user, service) pair with O(1) random pick.

    Backs Algorithm 1's replay loop: ``random_pick`` implements line 11
    (uniformly pick an existing sample) and ``discard`` implements line 15
    (drop an expired sample, i.e. set ``I_ij = 0``).
    """

    def __init__(self) -> None:
        self._data: dict[tuple[int, int], tuple[float, float]] = {}
        self._keys: list[tuple[int, int]] = []
        self._positions: dict[tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._data

    def put(self, user_id: int, service_id: int, timestamp: float, value: float) -> None:
        key = (user_id, service_id)
        if key not in self._data:
            self._positions[key] = len(self._keys)
            self._keys.append(key)
        self._data[key] = (timestamp, value)

    def get(self, user_id: int, service_id: int) -> tuple[float, float]:
        return self._data[(user_id, service_id)]

    def discard(self, user_id: int, service_id: int) -> None:
        key = (user_id, service_id)
        if key not in self._data:
            return
        # Swap-remove from the key list to keep random_pick O(1).
        position = self._positions.pop(key)
        last_key = self._keys[-1]
        self._keys[position] = last_key
        self._keys.pop()
        if last_key != key:
            self._positions[last_key] = position
        del self._data[key]

    def random_pick(self, rng: np.random.Generator) -> tuple[int, int, float, float]:
        """Return ``(user_id, service_id, timestamp, value)`` uniformly."""
        if not self._keys:
            raise LookupError("sample store is empty")
        # Same sampling primitive as replay_many's batched draw, so one
        # replay_step consumes exactly one uniform from the stream.
        key = self._keys[int(rng.random() * len(self._keys))]
        timestamp, value = self._data[key]
        return key[0], key[1], timestamp, value

    def keys(self) -> list[tuple[int, int]]:
        return list(self._keys)


class AdaptiveMatrixFactorization:
    """Online QoS predictor implementing the paper's AMF model.

    Typical use::

        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time())
        for record in stream:              # observed QoS samples, in order
            model.observe(record)
        estimate = model.predict(user_id=3, service_id=42)

    The model is *incremental*: users and services may appear at any time
    (their factors are randomly initialized and their error trackers start at
    the maximal value), and observations expire after
    ``config.expiry_seconds`` during replay.
    """

    def __init__(
        self,
        config: AMFConfig | None = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else AMFConfig()
        self._rng = spawn_rng(rng)
        self.normalizer = QoSNormalizer(
            alpha=self.config.alpha,
            value_min=self.config.value_min,
            value_max=self.config.value_max,
            floor=self.config.value_floor,
        )
        self.weights = AdaptiveWeights(
            beta=self.config.beta, init_error=self.config.init_error
        )
        self._user_factors = _GrowableFactors(
            self.config.rank, self.config.init_scale, self._rng
        )
        self._service_factors = _GrowableFactors(
            self.config.rank, self.config.init_scale, self._rng
        )
        self._store = _SampleStore()
        self._updates_applied = 0
        # Cache the transform constants: the per-sample hot loop normalizes
        # scalars inline instead of going through the (array-general)
        # QoSNormalizer, which would rebuild its Box-Cox bounds on each call.
        transform = self.normalizer.boxcox
        self._bc_alpha = transform.alpha
        self._bc_floor = transform.floor
        self._bc_low = float(transform.forward(max(self.config.value_min, transform.floor)))
        self._bc_high = float(transform.forward(self.config.value_max))
        self._relative_loss = self.config.loss == "relative"

    def _normalize_scalar(self, value: float) -> float:
        """Scalar fast path of ``self.normalizer.normalize`` (Eqs. 3-4)."""
        value = value if value > self._bc_floor else self._bc_floor
        if abs(self._bc_alpha) < 1e-8:
            transformed = np.log(value)
        else:
            transformed = (value**self._bc_alpha - 1.0) / self._bc_alpha
        r = (transformed - self._bc_low) / (self._bc_high - self._bc_low)
        if r < 0.0:
            return 0.0
        if r > 1.0:
            return 1.0
        return r

    # ------------------------------------------------------------------
    # Entity management
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of user ids the model has allocated factors for."""
        return len(self._user_factors)

    @property
    def n_services(self) -> int:
        """Number of service ids the model has allocated factors for."""
        return len(self._service_factors)

    @property
    def n_stored_samples(self) -> int:
        """Observations currently retained for replay (``I_ij = 1`` count)."""
        return len(self._store)

    @property
    def updates_applied(self) -> int:
        """Total number of SGD steps performed (arrivals + replays)."""
        return self._updates_applied

    def ensure_user(self, user_id: int) -> None:
        """Register a user id, initializing factors and error tracking."""
        self._user_factors.ensure(user_id)
        self.weights.register_user(user_id)

    def ensure_service(self, service_id: int) -> None:
        """Register a service id, initializing factors and error tracking."""
        self._service_factors.ensure(service_id)
        self.weights.register_service(service_id)

    def forget_user(self, user_id: int) -> None:
        """Handle a user leaving: reset its factors/error and drop its samples.

        If the user later rejoins it is treated as new (Algorithm 1 line 5).
        """
        if user_id < self.n_users:
            self._user_factors.reinitialize(user_id)
            self.weights.reset_user(user_id)
            for u, s in self._store.keys():
                if u == user_id:
                    self._store.discard(u, s)

    def forget_service(self, service_id: int) -> None:
        """Handle a service being discontinued; symmetric to ``forget_user``."""
        if service_id < self.n_services:
            self._service_factors.reinitialize(service_id)
            self.weights.reset_service(service_id)
            for u, s in self._store.keys():
                if s == service_id:
                    self._store.discard(u, s)

    # ------------------------------------------------------------------
    # Online updates (Algorithm 1)
    # ------------------------------------------------------------------
    def observe(self, record: QoSRecord) -> float:
        """Ingest a newly observed sample (Algorithm 1 lines 3-9).

        Registers new entities, stores the sample for later replay, applies
        one online SGD step, and returns the sample's relative error ``e_ij``
        *before* the step (a cheap, continuously available accuracy signal).
        """
        self.ensure_user(record.user_id)
        self.ensure_service(record.service_id)
        self._store.put(record.user_id, record.service_id, record.timestamp, record.value)
        return self._online_update(record.user_id, record.service_id, record.value)

    def observe_many(self, records: Iterable[QoSRecord]) -> list[float]:
        """Ingest a batch of samples in order; returns per-sample errors."""
        return [self.observe(record) for record in records]

    def replay_step(self, now: float) -> float | None:
        """One replay iteration (Algorithm 1 lines 11-15).

        Picks a random retained sample; if it has expired relative to ``now``
        it is discarded (``I_ij = 0``) and ``None`` is returned, otherwise an
        online update is applied and the sample's pre-update relative error is
        returned.  Raises ``LookupError`` when no samples are retained.
        """
        user_id, service_id, timestamp, value = self._store.random_pick(self._rng)
        if now - timestamp >= self.config.expiry_seconds:
            self._store.discard(user_id, service_id)
            return None
        return self._online_update(user_id, service_id, value)

    def purge_expired(self, now: float) -> int:
        """Drop every stored sample older than the expiry window.

        Equivalent to what random replay would do lazily (Algorithm 1 line
        15), but in one O(store) sweep — worth doing before a batch of
        replay epochs so the epochs iterate only over live samples instead
        of wasting half their draws discovering stale ones.  Returns the
        number of samples dropped.
        """
        expiry = self.config.expiry_seconds
        stale = [
            key
            for key in self._store.keys()
            if now - self._store.get(key[0], key[1])[0] >= expiry
        ]
        for user_id, service_id in stale:
            self._store.discard(user_id, service_id)
        return len(stale)

    def replay_many(self, now: float, count: int) -> tuple[int, int, float]:
        """Run up to ``count`` replay iterations in a tight loop.

        Equivalent to calling :meth:`replay_step` ``count`` times, but draws
        all random indices in one batch.  Returns ``(applied, expired,
        mean_error)`` where ``mean_error`` is the average pre-update relative
        error of the applied steps (NaN when none applied).  Stops early if
        the store empties.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        store = self._store
        expiry = self.config.expiry_seconds
        uniforms = self._rng.random(count)
        applied = 0
        expired = 0
        error_sum = 0.0
        for k in range(count):
            size = len(store._keys)
            if size == 0:
                break
            key = store._keys[int(uniforms[k] * size)]
            timestamp, value = store._data[key]
            if now - timestamp >= expiry:
                store.discard(key[0], key[1])
                expired += 1
                continue
            error_sum += self._online_update(key[0], key[1], value)
            applied += 1
        mean_error = error_sum / applied if applied else float("nan")
        return applied, expired, mean_error

    def _online_update(self, user_id: int, service_id: int, raw_value: float) -> float:
        """The ``OnlineUpdate`` function of Algorithm 1 (Eqs. 12-17)."""
        config = self.config
        r = self._normalize_scalar(raw_value)
        if r < config.normalized_floor:
            r = config.normalized_floor

        u_vector = self._user_factors.row(user_id)
        s_vector = self._service_factors.row(service_id)
        x = float(u_vector.dot(s_vector))
        # Inline stable sigmoid (scalar hot path).
        if x >= 0:
            g = 1.0 / (1.0 + np.exp(-x))
        else:
            exp_x = np.exp(x)
            g = exp_x / (1.0 + exp_x)
        g_prime = g * (1.0 - g)

        sample_error = abs(r - g) / r  # Eq. 15
        w_u, w_s = self.weights.observe(user_id, service_id, sample_error)

        if self._relative_loss:
            residual = (g - r) * g_prime / (r * r)  # Eq. 6 gradient
        else:
            residual = (g - r) * g_prime  # Eq. 5 gradient (ablation)
        if residual > config.grad_clip:
            residual = config.grad_clip
        elif residual < -config.grad_clip:
            residual = -config.grad_clip
        step_u = config.learning_rate * w_u
        step_s = config.learning_rate * w_s
        # Simultaneous update (Algorithm 1 line 24): both gradients use the
        # pre-step vectors.  The step is rewritten as
        # ``U <- (1 - eta w lambda) U - (eta w residual) S`` so the hot loop
        # does two fused scale-and-subtract passes instead of four temporaries.
        shrink_u = 1.0 - step_u * config.lambda_u
        shrink_s = 1.0 - step_s * config.lambda_s
        new_u = shrink_u * u_vector - (step_u * residual) * s_vector
        s_vector *= shrink_s
        s_vector -= (step_s * residual) * u_vector
        u_vector[:] = new_u

        self._updates_applied += 1
        return sample_error

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_normalized(self, user_id: int, service_id: int) -> float:
        """Predicted value in the normalized ``[0, 1]`` space."""
        if user_id >= self.n_users or service_id >= self.n_services:
            raise KeyError(
                f"unknown entity: user {user_id} (have {self.n_users}), "
                f"service {service_id} (have {self.n_services})"
            )
        u_vector = self._user_factors.row(user_id)
        s_vector = self._service_factors.row(service_id)
        return float(sigmoid(float(u_vector @ s_vector)))

    def predict(self, user_id: int, service_id: int) -> float:
        """Predicted raw QoS value ``R_hat_ij`` (backward-transformed)."""
        return float(self.normalizer.denormalize(self.predict_normalized(user_id, service_id)))

    def predict_matrix(self) -> np.ndarray:
        """Dense prediction matrix over all known users and services."""
        if self.n_users == 0 or self.n_services == 0:
            return np.zeros((self.n_users, self.n_services))
        inner = self._user_factors.matrix() @ self._service_factors.matrix().T
        return np.asarray(self.normalizer.denormalize(sigmoid(inner)), dtype=float)

    def training_error(self) -> float:
        """Mean relative error over all retained samples (convergence signal)."""
        keys = self._store.keys()
        if not keys:
            return float("nan")
        users = np.fromiter((key[0] for key in keys), dtype=np.intp, count=len(keys))
        services = np.fromiter((key[1] for key in keys), dtype=np.intp, count=len(keys))
        values = np.fromiter(
            (self._store.get(key[0], key[1])[1] for key in keys),
            dtype=float,
            count=len(keys),
        )
        r = np.asarray(self.normalizer.normalize(values), dtype=float)
        r = np.maximum(r, self.config.normalized_floor)
        u_rows = self._user_factors.matrix()[users]
        s_rows = self._service_factors.matrix()[services]
        g = np.asarray(sigmoid(np.einsum("ij,ij->i", u_rows, s_rows)))
        return float(np.mean(np.abs(r - g) / r))

    def user_factors(self) -> np.ndarray:
        """Copy of the user factor matrix ``U`` (shape ``n_users x d``)."""
        return self._user_factors.matrix()

    def service_factors(self) -> np.ndarray:
        """Copy of the service factor matrix ``S`` (shape ``n_services x d``)."""
        return self._service_factors.matrix()
