"""Adaptive Matrix Factorization (Section IV-C, Algorithm 1).

AMF maintains latent factor matrices ``U`` (users) and ``S`` (services) that
are updated one observation at a time.  Each observed sample
``(t, u, s, R)`` is

1. normalized through Box-Cox + linear scaling (Eqs. 3-4),
2. compared against the sigmoid-linked prediction ``g(U_u . S_s)``,
3. folded into the per-entity error trackers, producing credence weights
   ``(w_u, w_s)`` (Eqs. 12-15), and
4. applied as a weighted SGD step on both factor vectors (Eqs. 16-17).

The model additionally keeps a bounded store of the latest observation per
(user, service) pair so that Algorithm 1's replay loop can re-sample
existing data between arrivals and expire observations older than the
configured time window.

Replay runs through one of two kernels (``AMFConfig.kernel``):

* ``"scalar"`` — the sequential reference loop, one Python-level SGD step
  per drawn sample, exactly Algorithm 1's order of operations.
* ``"vectorized"`` (default) — draws the whole batch at once, partitions it
  into conflict-free blocks (no user and no service repeated within a
  block; see :mod:`repro.core.kernel`), and executes each block as a single
  fused NumPy pass.  Within a block every sample reads its entities'
  pre-step state, so block execution is semantically equivalent to the
  sequential simultaneous update, at an order of magnitude more steps/sec.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable

import numpy as np

from repro.core.config import AMFConfig
from repro.core.kernel import partition_conflict_free
from repro.core.transform import QoSNormalizer, sigmoid
from repro.core.weights import AdaptiveWeights
from repro.datasets.schema import QoSRecord
from repro.observability import get_registry
from repro.utils.rng import spawn_rng

# Hot-path observability: recorded per arrival and per replay *batch* (never
# per SGD step), so the cost is a handful of lock-protected adds amortized
# over hundreds of updates.  Label children are bound once at import time.
_METRICS = get_registry()
_OBSERVATIONS = _METRICS.counter(
    "qos_amf_observations_total",
    "QoS samples ingested via observe() (arrival SGD steps)",
)
_REPLAY_STEPS = _METRICS.counter(
    "qos_amf_replay_steps_total",
    "Replay SGD steps applied, by kernel",
    labelnames=("kernel",),
)
_REPLAY_EXPIRED = _METRICS.counter(
    "qos_amf_replay_expired_total",
    "Stored samples expired during replay, by kernel",
    labelnames=("kernel",),
)
_REPLAY_BATCHES = _METRICS.counter(
    "qos_amf_replay_batches_total",
    "replay_many() calls, by kernel",
    labelnames=("kernel",),
)
_REPLAY_BATCH_SECONDS = _METRICS.histogram(
    "qos_amf_replay_batch_seconds",
    "Wall-clock seconds per replay_many() call, by kernel",
    labelnames=("kernel",),
)
_KERNEL_HANDLES = {
    kernel: (
        _REPLAY_STEPS.labels(kernel=kernel),
        _REPLAY_EXPIRED.labels(kernel=kernel),
        _REPLAY_BATCHES.labels(kernel=kernel),
        _REPLAY_BATCH_SECONDS.labels(kernel=kernel),
    )
    for kernel in ("scalar", "vectorized", "parallel")
}
_REPLAY_BLOCK_WIDTH = _METRICS.histogram(
    "qos_amf_replay_block_width",
    "Mean conflict-free block width per vectorized replay batch",
)
_REPLAY_FALLBACK_STEPS = _METRICS.counter(
    "qos_amf_replay_scalar_fallback_steps_total",
    "Steps the vectorized kernel executed via the scalar tail-block fallback",
)


class _GrowableFactors:
    """Row-growable latent factor matrix with random row initialization.

    Each row carries a monotonically increasing **version counter**, bumped
    on every write to that row (SGD step, scatter write-back, or
    reinitialization).  Prediction caches stamp entries with the versions
    in force at compute time and treat any mismatch as stale — per-entity
    invalidation without the writer knowing who is caching
    (:class:`repro.core.online.PredictionCache`).
    """

    def __init__(self, rank: int, init_scale: float, rng: np.random.Generator) -> None:
        self.rank = rank
        self._init_scale = init_scale
        self._rng = rng
        self._rows = np.empty((16, rank), dtype=float)
        self._versions = np.zeros(16, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def ensure(self, row_id: int) -> None:
        """Make ``row_id`` addressable, randomly initializing new rows."""
        if row_id < 0:
            raise IndexError(f"row id must be non-negative, got {row_id}")
        if row_id >= self._rows.shape[0]:
            new_capacity = max(self._rows.shape[0] * 2, row_id + 1)
            grown = np.empty((new_capacity, self.rank), dtype=float)
            grown[: self._size] = self._rows[: self._size]
            self._rows = grown
            grown_versions = np.zeros(new_capacity, dtype=np.int64)
            grown_versions[: self._size] = self._versions[: self._size]
            self._versions = grown_versions
        while self._size <= row_id:
            self._rows[self._size] = self._rng.standard_normal(self.rank) * self._init_scale
            self._size += 1

    def row(self, row_id: int) -> np.ndarray:
        """A *view* of the factor vector; mutate in place to update."""
        self.ensure(row_id)
        return self._rows[row_id]

    def version(self, row_id: int) -> int:
        """Write-version of a row; 0 for rows never updated (or unknown)."""
        if row_id < 0:
            raise IndexError(f"row id must be non-negative, got {row_id}")
        if row_id >= self._size:
            return 0
        return int(self._versions[row_id])

    def bump_versions(self, row_ids: np.ndarray) -> None:
        """Advance version counters after a batch of row writes.

        Safe for repeated ids (``np.add.at`` accumulates); the kernels that
        guarantee unique ids per scatter bump ``_versions`` directly.
        """
        np.add.at(self._versions, row_ids, 1)

    def reinitialize(self, row_id: int) -> None:
        """Draw a fresh random vector for ``row_id`` (used on entity rejoin)."""
        self.ensure(row_id)
        self._rows[row_id] = self._rng.standard_normal(self.rank) * self._init_scale
        self._versions[row_id] += 1

    def set_row(self, row_id: int, values) -> None:
        """Overwrite a row with an exact vector (entity revival from spill).

        Unlike :meth:`reinitialize` this consumes no randomness; the version
        counter still advances so prediction-cache entries stamped against
        the row's previous occupant can never be served.
        """
        self.ensure(row_id)
        self._rows[row_id] = np.asarray(values, dtype=float)
        self._versions[row_id] += 1

    def matrix(self) -> np.ndarray:
        """Copy of all initialized rows, shape ``(size, rank)``."""
        return self._rows[: self._size].copy()

    def view(self) -> np.ndarray:
        """Read-only no-copy view of the initialized rows.

        For the read-heavy paths (``training_error``, ``predict_matrix``)
        that previously paid a full-matrix copy per call; use :meth:`matrix`
        when the caller needs an owned snapshot.
        """
        out = self._rows[: self._size]
        out.flags.writeable = False
        return out


class _SampleStore:
    """Latest observation per (user, service) pair with O(1) random pick.

    Backs Algorithm 1's replay loop: ``random_pick`` implements line 11
    (uniformly pick an existing sample) and ``discard`` implements line 15
    (drop an expired sample, i.e. set ``I_ij = 0``).

    Storage is columnar: parallel arrays (user id, service id, timestamp,
    raw value, cached normalized value) indexed by a dense position, plus a
    key -> position dict, so the vectorized replay kernel can gather a whole
    drawn batch with fancy indexing instead of per-sample dict lookups.  The
    normalized value is cached at :meth:`put` time — Box-Cox runs once per
    observation, not once per replay step.  Per-user and per-service key
    indices make entity removal O(degree) instead of O(store).
    """

    def __init__(self) -> None:
        self._keys: list[tuple[int, int]] = []
        self._positions: dict[tuple[int, int], int] = {}
        capacity = 16
        self._users = np.empty(capacity, dtype=np.intp)
        self._services = np.empty(capacity, dtype=np.intp)
        self._timestamps = np.empty(capacity, dtype=float)
        self._values = np.empty(capacity, dtype=float)
        self._norms = np.empty(capacity, dtype=float)
        self._user_index: dict[int, set[int]] = {}
        self._service_index: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._positions

    def _grow(self, needed: int) -> None:
        capacity = max(self._users.size * 2, needed)
        size = len(self._keys)
        for name in ("_users", "_services", "_timestamps", "_values", "_norms"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[:size] = old[:size]
            setattr(self, name, grown)

    def put(
        self,
        user_id: int,
        service_id: int,
        timestamp: float,
        value: float,
        norm: float = float("nan"),
    ) -> None:
        """Insert or refresh the latest sample for ``(user_id, service_id)``.

        ``norm`` caches the normalized value ``r`` so replay never re-runs
        the Box-Cox transform; callers that never replay may omit it.
        """
        key = (user_id, service_id)
        position = self._positions.get(key)
        if position is None:
            position = len(self._keys)
            if position >= self._users.size:
                self._grow(position + 1)
            self._positions[key] = position
            self._keys.append(key)
            self._users[position] = user_id
            self._services[position] = service_id
            self._user_index.setdefault(user_id, set()).add(service_id)
            self._service_index.setdefault(service_id, set()).add(user_id)
        self._timestamps[position] = timestamp
        self._values[position] = value
        self._norms[position] = norm

    def get(self, user_id: int, service_id: int) -> tuple[float, float]:
        position = self._positions[(user_id, service_id)]
        return float(self._timestamps[position]), float(self._values[position])

    def norm(self, user_id: int, service_id: int) -> float:
        """The cached normalized value for a stored pair (NaN if never set)."""
        return float(self._norms[self._positions[(user_id, service_id)]])

    def discard(self, user_id: int, service_id: int) -> None:
        key = (user_id, service_id)
        position = self._positions.pop(key, None)
        if position is None:
            return
        # Swap-remove from the key list to keep random_pick O(1).
        last = len(self._keys) - 1
        if position != last:
            last_key = self._keys[last]
            self._keys[position] = last_key
            self._positions[last_key] = position
            self._users[position] = self._users[last]
            self._services[position] = self._services[last]
            self._timestamps[position] = self._timestamps[last]
            self._values[position] = self._values[last]
            self._norms[position] = self._norms[last]
        self._keys.pop()
        services = self._user_index[user_id]
        services.discard(service_id)
        if not services:
            del self._user_index[user_id]
        users = self._service_index[service_id]
        users.discard(user_id)
        if not users:
            del self._service_index[service_id]

    def drop_user(self, user_id: int) -> int:
        """Discard every sample of ``user_id``; O(degree), not O(store).

        Peers are discarded in sorted order: each discard swap-removes, so
        the store's physical row order would otherwise depend on set
        iteration order — which differs between an organically-built index
        and one rebuilt from a checkpoint, breaking byte-exact archive
        equality between a recovered run and its uninterrupted baseline.
        """
        services = self._user_index.get(user_id)
        if not services:
            return 0
        dropped = 0
        for service_id in sorted(services):
            self.discard(user_id, service_id)
            dropped += 1
        return dropped

    def drop_service(self, service_id: int) -> int:
        """Discard every sample of ``service_id``; symmetric to drop_user."""
        users = self._service_index.get(service_id)
        if not users:
            return 0
        dropped = 0
        for user_id in sorted(users):
            self.discard(user_id, service_id)
            dropped += 1
        return dropped

    def purge_expired(self, now: float, expiry_seconds: float) -> int:
        """Drop every sample older than the expiry window in one sweep.

        Vectorized staleness test over the timestamp column, then a single
        compaction pass rebuilding positions and entity indices — no
        per-key ``get`` calls, no key-list copy.
        """
        size = len(self._keys)
        if size == 0:
            return 0
        stale = (now - self._timestamps[:size]) >= expiry_seconds
        n_stale = int(np.count_nonzero(stale))
        if n_stale == 0:
            return 0
        keep = np.flatnonzero(~stale)
        n_keep = keep.size
        for name in ("_users", "_services", "_timestamps", "_values", "_norms"):
            column = getattr(self, name)
            column[:n_keep] = column[:size][keep]
        old_keys = self._keys
        self._keys = [old_keys[i] for i in keep.tolist()]
        self._positions = {key: i for i, key in enumerate(self._keys)}
        self._user_index = {}
        self._service_index = {}
        for user_id, service_id in self._keys:
            self._user_index.setdefault(user_id, set()).add(service_id)
            self._service_index.setdefault(service_id, set()).add(user_id)
        return n_stale

    def random_pick(self, rng: np.random.Generator) -> tuple[int, int, float, float]:
        """Return ``(user_id, service_id, timestamp, value)`` uniformly."""
        if not self._keys:
            raise LookupError("sample store is empty")
        # Same sampling primitive as replay_many's batched draw, so one
        # replay_step consumes exactly one uniform from the stream.
        position = int(rng.random() * len(self._keys))
        key = self._keys[position]
        return (
            key[0],
            key[1],
            float(self._timestamps[position]),
            float(self._values[position]),
        )

    def keys(self) -> list[tuple[int, int]]:
        return list(self._keys)

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """No-copy views ``(users, services, timestamps, values, norms)``.

        Valid until the next mutating call; fancy-index to keep a snapshot.
        """
        size = len(self._keys)
        return (
            self._users[:size],
            self._services[:size],
            self._timestamps[:size],
            self._values[:size],
            self._norms[:size],
        )


class AdaptiveMatrixFactorization:
    """Online QoS predictor implementing the paper's AMF model.

    Typical use::

        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time())
        for record in stream:              # observed QoS samples, in order
            model.observe(record)
        estimate = model.predict(user_id=3, service_id=42)

    The model is *incremental*: users and services may appear at any time
    (their factors are randomly initialized and their error trackers start at
    the maximal value), and observations expire after
    ``config.expiry_seconds`` during replay.
    """

    def __init__(
        self,
        config: AMFConfig | None = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else AMFConfig()
        self._rng = spawn_rng(rng)
        self.normalizer = QoSNormalizer(
            alpha=self.config.alpha,
            value_min=self.config.value_min,
            value_max=self.config.value_max,
            floor=self.config.value_floor,
        )
        self.weights = AdaptiveWeights(
            beta=self.config.beta, init_error=self.config.init_error
        )
        self._user_factors = _GrowableFactors(
            self.config.rank, self.config.init_scale, self._rng
        )
        self._service_factors = _GrowableFactors(
            self.config.rank, self.config.init_scale, self._rng
        )
        self._store = _SampleStore()
        self._updates_applied = 0
        # Attached by repro.core.parallel.ParallelReplayEngine; enables the
        # "parallel" replay kernel (process-local, never serialized).
        self._parallel_engine = None
        # Cache the transform constants: the per-sample hot loop normalizes
        # scalars inline instead of going through the (array-general)
        # QoSNormalizer, which would rebuild its Box-Cox bounds on each call.
        transform = self.normalizer.boxcox
        self._bc_alpha = transform.alpha
        self._bc_floor = transform.floor
        self._bc_low = float(transform.forward(max(self.config.value_min, transform.floor)))
        self._bc_high = float(transform.forward(self.config.value_max))
        self._relative_loss = self.config.loss == "relative"

    def _normalize_scalar(self, value: float) -> float:
        """Scalar fast path of ``self.normalizer.normalize`` (Eqs. 3-4)."""
        value = value if value > self._bc_floor else self._bc_floor
        if abs(self._bc_alpha) < 1e-8:
            transformed = math.log(value)
        else:
            transformed = (value**self._bc_alpha - 1.0) / self._bc_alpha
        r = (transformed - self._bc_low) / (self._bc_high - self._bc_low)
        if r < 0.0:
            return 0.0
        if r > 1.0:
            return 1.0
        return r

    # ------------------------------------------------------------------
    # Entity management
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of user ids the model has allocated factors for."""
        return len(self._user_factors)

    @property
    def n_services(self) -> int:
        """Number of service ids the model has allocated factors for."""
        return len(self._service_factors)

    @property
    def n_stored_samples(self) -> int:
        """Observations currently retained for replay (``I_ij = 1`` count)."""
        return len(self._store)

    @property
    def updates_applied(self) -> int:
        """Total number of SGD steps performed (arrivals + replays)."""
        return self._updates_applied

    def knows_user(self, user_id: int) -> bool:
        """Whether predictions for ``user_id`` can be served from the model.

        The identity check callers must use instead of comparing against
        ``n_users``: tiered models (:class:`repro.lifecycle.TieredAMF`) keep
        a sparse external-id population whose size is unrelated to the
        allocated row count.
        """
        return 0 <= user_id < self.n_users

    def knows_service(self, service_id: int) -> bool:
        """Whether predictions for ``service_id`` can be served (see
        :meth:`knows_user`)."""
        return 0 <= service_id < self.n_services

    def expected_error(self, user_id: int, service_id: int) -> float:
        """Expected relative error of a prediction for ``(user, service)``.

        Mean of the two entities' EMA error trackers — the confidence signal
        the serving layer attaches to predictions.  A pure read: unknown
        entities report ``init_error``.
        """
        return (
            self.weights.user_error(user_id) + self.weights.service_error(service_id)
        ) / 2.0

    def service_credence(self, service_id: int) -> float:
        """The service's own EMA relative error — the per-service credence
        signal a cluster router merges into ranked candidates.  A pure
        read: unknown services report ``init_error`` without registering.
        """
        return float(self.weights.service_error(service_id))

    def ensure_user(self, user_id: int) -> None:
        """Register a user id, initializing factors and error tracking."""
        self._user_factors.ensure(user_id)
        self.weights.register_user(user_id)

    def ensure_service(self, service_id: int) -> None:
        """Register a service id, initializing factors and error tracking."""
        self._service_factors.ensure(service_id)
        self.weights.register_service(service_id)

    def forget_user(self, user_id: int) -> None:
        """Handle a user leaving: reset its factors/error and drop its samples.

        If the user later rejoins it is treated as new (Algorithm 1 line 5).
        Sample removal is O(user degree) via the store's per-user index.
        """
        if user_id < self.n_users:
            self._user_factors.reinitialize(user_id)
            self.weights.reset_user(user_id)
            self._store.drop_user(user_id)

    def forget_service(self, service_id: int) -> None:
        """Handle a service being discontinued; symmetric to ``forget_user``."""
        if service_id < self.n_services:
            self._service_factors.reinitialize(service_id)
            self.weights.reset_service(service_id)
            self._store.drop_service(service_id)

    def normalize_value(self, value: float) -> float:
        """Map a raw QoS value into normalized ``[floor, 1]`` space.

        The exact mapping ``observe`` applies (Box-Cox + linear, floored at
        ``config.normalized_floor``), exposed so stream sanitizers can
        reason in the model's own residual space
        (:class:`repro.robustness.SanitizerGate`).
        """
        r = self._normalize_scalar(value)
        if r < self.config.normalized_floor:
            r = self.config.normalized_floor
        return r

    def denormalize_value(self, r: float) -> float:
        """Inverse of :meth:`normalize_value`: normalized space back to raw."""
        return float(self.normalizer.denormalize(r))

    # ------------------------------------------------------------------
    # Online updates (Algorithm 1)
    # ------------------------------------------------------------------
    def observe(self, record: QoSRecord) -> float:
        """Ingest a newly observed sample (Algorithm 1 lines 3-9).

        Registers new entities, stores the sample for later replay (caching
        its normalized value so replay never re-runs Box-Cox), applies one
        online SGD step, and returns the sample's relative error ``e_ij``
        *before* the step (a cheap, continuously available accuracy signal).
        """
        self.ensure_user(record.user_id)
        self.ensure_service(record.service_id)
        r = self._normalize_scalar(record.value)
        if r < self.config.normalized_floor:
            r = self.config.normalized_floor
        self._store.put(
            record.user_id, record.service_id, record.timestamp, record.value, r
        )
        _OBSERVATIONS.inc()
        return self._online_update(record.user_id, record.service_id, r)

    def observe_many(self, records: Iterable[QoSRecord]) -> list[float]:
        """Ingest a batch of samples in order; returns per-sample errors."""
        return [self.observe(record) for record in records]

    def replay_step(self, now: float) -> float | None:
        """One replay iteration (Algorithm 1 lines 11-15).

        Picks a random retained sample; if it has expired relative to ``now``
        it is discarded (``I_ij = 0``) and ``None`` is returned, otherwise an
        online update is applied and the sample's pre-update relative error is
        returned.  Raises ``LookupError`` when no samples are retained.
        """
        user_id, service_id, timestamp, __ = self._store.random_pick(self._rng)
        if now - timestamp >= self.config.expiry_seconds:
            self._store.discard(user_id, service_id)
            return None
        return self._online_update(
            user_id, service_id, self._store.norm(user_id, service_id)
        )

    def purge_expired(self, now: float) -> int:
        """Drop every stored sample older than the expiry window.

        Equivalent to what random replay would do lazily (Algorithm 1 line
        15), but in one O(store) sweep — worth doing before a batch of
        replay epochs so the epochs iterate only over live samples instead
        of wasting half their draws discovering stale ones.  Returns the
        number of samples dropped.
        """
        return self._store.purge_expired(now, self.config.expiry_seconds)

    def replay_many(
        self, now: float, count: int, kernel: str | None = None
    ) -> tuple[int, int, float]:
        """Run up to ``count`` replay iterations.

        Equivalent to calling :meth:`replay_step` ``count`` times, but draws
        all random indices in one batch.  Returns ``(applied, expired,
        mean_error)`` where ``mean_error`` is the average pre-update relative
        error of the applied steps (NaN when none applied).  Stops early if
        the store empties.

        ``kernel`` overrides ``config.kernel`` for this call: ``"scalar"``
        executes the sequential reference loop, ``"vectorized"`` the
        conflict-free block kernel, and ``"parallel"`` the multi-process
        engine (requires an attached
        :class:`repro.core.parallel.ParallelReplayEngine`; bit-exact with
        ``"vectorized"``).  All kernels consume the same uniform draws, so
        when no sample expires mid-batch they replay the same sample
        sequence; the batched kernels resolve expiry against the
        pre-batch store rather than interleaved with the updates.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        kernel = self.config.kernel if kernel is None else kernel
        if kernel not in ("scalar", "vectorized", "parallel"):
            raise ValueError(
                f"kernel must be 'scalar', 'vectorized' or 'parallel', got {kernel!r}"
            )
        started = time.perf_counter()
        if kernel == "vectorized":
            result = self._replay_many_vectorized(now, count)
        elif kernel == "parallel":
            if self._parallel_engine is None:
                raise RuntimeError(
                    "kernel 'parallel' requires an attached ParallelReplayEngine "
                    "(see repro.core.parallel)"
                )
            result = self._parallel_engine._replay_batch(now, count)
        else:
            result = self._replay_many_scalar(now, count)
        steps, expired, batches, seconds = _KERNEL_HANDLES[kernel]
        steps.inc(result[0])
        expired.inc(result[1])
        batches.inc()
        seconds.observe(time.perf_counter() - started)
        return result

    def _replay_many_scalar(self, now: float, count: int) -> tuple[int, int, float]:
        """Sequential reference kernel: one Python-level step per draw."""
        store = self._store
        expiry = self.config.expiry_seconds
        uniforms = self._rng.random(count)
        applied = 0
        expired = 0
        error_sum = 0.0
        # Local aliases stay valid across discard(): the store only ever
        # swap-removes inside these same objects during replay (no put, so
        # no reallocation).
        keys = store._keys
        positions = store._positions
        timestamps = store._timestamps
        norms = store._norms
        for k in range(count):
            size = len(keys)
            if size == 0:
                break
            key = keys[int(uniforms[k] * size)]
            position = positions[key]
            if now - timestamps[position] >= expiry:
                store.discard(key[0], key[1])
                expired += 1
                continue
            error_sum += self._online_update(key[0], key[1], float(norms[position]))
            applied += 1
        mean_error = error_sum / applied if applied else float("nan")
        return applied, expired, mean_error

    def _draw_replay_batch(
        self, now: float, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int], int]:
        """Draw, expire, and schedule one replay batch (shared kernel front).

        Everything the batched kernels do *before* executing blocks: consume
        ``count`` uniforms from the model RNG, gather the drawn samples,
        discard the expired ones, partition into conflict-free blocks, and
        permute so each block is one contiguous slice.  Returns
        ``(users, services, r, boundaries, expired)`` where ``boundaries``
        lists each block's exclusive stop index (empty when nothing
        applied).  Both the in-process vectorized kernel and the
        multi-process engine run from this exact schedule, which is what
        makes them bit-exact with each other.
        """
        store = self._store
        uniforms = self._rng.random(count)  # same RNG consumption as scalar
        size = len(store._keys)
        empty = np.empty(0, dtype=np.intp)
        if size == 0 or count == 0:
            return empty, empty, np.empty(0), [], 0
        indices = (uniforms * size).astype(np.intp)
        # Gather the drawn batch before any discard moves rows around.
        users = store._users[indices]
        services = store._services[indices]
        norms = store._norms[indices]
        fresh = (now - store._timestamps[indices]) < self.config.expiry_seconds
        expired = 0
        if not fresh.all():
            stale_positions = np.unique(indices[~fresh])
            stale_keys = [store._keys[i] for i in stale_positions.tolist()]
            for user_id, service_id in stale_keys:
                store.discard(user_id, service_id)
            expired = len(stale_keys)
            users = users[fresh]
            services = services[fresh]
            norms = norms[fresh]
        if users.size == 0:
            return empty, empty, np.empty(0), [], expired

        # Schedule: permute the batch so each conflict-free block is one
        # contiguous slice (blocks stay in order, per-entity draw order is
        # preserved inside the permutation).
        blocks = partition_conflict_free(users, services)
        order = np.argsort(blocks, kind="stable")
        users = users[order]
        services = services[order]
        r = norms[order]
        boundaries = np.cumsum(np.bincount(blocks)).tolist()
        # Replayed entities were registered at observe time; ensure() is a
        # cheap idempotent guard for store states rebuilt by hand.
        self.weights._user_errors.ensure(int(users.max()))
        self.weights._service_errors.ensure(int(services.max()))
        return users, services, r, boundaries, expired

    def _replay_many_vectorized(self, now: float, count: int) -> tuple[int, int, float]:
        """Conflict-free block kernel: the whole batch in fused NumPy passes."""
        users, services, r, boundaries, expired = self._draw_replay_batch(now, count)
        applied = int(users.size)
        if applied == 0:
            return 0, expired, float("nan")
        inv_r = 1.0 / r
        inv_r_sq = inv_r * inv_r

        # Hoist every per-step constant out of the block loop.
        config = self.config
        learning_rate = config.learning_rate
        lambda_u = config.lambda_u
        lambda_s = config.lambda_s
        grad_clip = config.grad_clip
        relative_loss = self._relative_loss
        beta = self.weights.beta
        user_rows = self._user_factors._rows
        service_rows = self._service_factors._rows
        user_versions = self._user_factors._versions
        service_versions = self._service_factors._versions
        user_errors = self.weights._user_errors._values
        service_errors = self.weights._service_errors._values

        error_sum = 0.0
        vectorized_steps = 0
        fallback_steps = 0
        start = 0
        for stop in boundaries:
            width = stop - start
            if width < 6:
                # Tail blocks of a few samples: fixed NumPy dispatch overhead
                # exceeds the scalar step cost, so fall back per sample
                # (_online_update counts its own steps).
                for k in range(start, stop):
                    error_sum += self._online_update(
                        int(users[k]), int(services[k]), float(r[k])
                    )
                fallback_steps += width
                start = stop
                continue
            block = slice(start, stop)
            start = stop
            block_users = users[block]
            block_services = services[block]
            block_r = r[block]
            u_block = user_rows[block_users]
            s_block = service_rows[block_services]
            x = np.einsum("ij,ij->i", u_block, s_block)
            # Stable sigmoid, same branch math as the scalar kernel.
            exp_neg = np.exp(-np.abs(x))
            g = np.where(x >= 0.0, 1.0, exp_neg) / (1.0 + exp_neg)
            g_prime = g * (1.0 - g)

            difference = g - block_r
            sample_errors = np.abs(difference) * inv_r[block]  # Eq. 15
            error_sum += float(sample_errors.sum())

            # Adaptive weights (Eqs. 12-14), inlined from
            # AdaptiveWeights.observe_many: conflict-freedom makes the
            # scatter write-back safe.
            e_u = user_errors[block_users]
            e_s = service_errors[block_services]
            total = e_u + e_s
            if total.min() > 0.0:
                w_u = e_u / total
                w_s = e_s / total
            else:
                safe = np.where(total > 0.0, total, 1.0)
                w_u = np.where(total > 0.0, e_u / safe, 0.5)
                w_s = np.where(total > 0.0, e_s / safe, 0.5)
            ema_u = beta * w_u
            ema_s = beta * w_s
            user_errors[block_users] = ema_u * sample_errors + (1.0 - ema_u) * e_u
            service_errors[block_services] = (
                ema_s * sample_errors + (1.0 - ema_s) * e_s
            )

            if relative_loss:
                residual = difference * g_prime * inv_r_sq[block]  # Eq. 6 gradient
            else:
                residual = difference * g_prime  # Eq. 5 gradient (ablation)
            # min/max ufunc pair: same clamp as np.clip without its
            # fromnumeric wrapper overhead (measurable at this block size).
            np.minimum(residual, grad_clip, out=residual)
            np.maximum(residual, -grad_clip, out=residual)
            step_u = learning_rate * w_u
            step_s = learning_rate * w_s
            # Simultaneous update (Algorithm 1 line 24): both gradients use
            # the pre-step vectors, same rewrite as the scalar kernel's
            # fused scale-and-subtract.
            new_u = (1.0 - step_u * lambda_u)[:, None] * u_block
            new_u -= (step_u * residual)[:, None] * s_block
            new_s = (1.0 - step_s * lambda_s)[:, None] * s_block
            new_s -= (step_s * residual)[:, None] * u_block
            user_rows[block_users] = new_u
            service_rows[block_services] = new_s
            # Conflict-freedom makes the plain scatter increment safe.
            user_versions[block_users] += 1
            service_versions[block_services] += 1
            vectorized_steps += width

        self._updates_applied += vectorized_steps
        _REPLAY_BLOCK_WIDTH.observe(applied / len(boundaries))
        if fallback_steps:
            _REPLAY_FALLBACK_STEPS.inc(fallback_steps)
        return applied, expired, error_sum / applied

    def _online_update(self, user_id: int, service_id: int, r: float) -> float:
        """The ``OnlineUpdate`` function of Algorithm 1 (Eqs. 12-17).

        ``r`` is the sample's normalized value, already floored at
        ``config.normalized_floor`` (cached in the store at observe time).
        """
        config = self.config
        u_vector = self._user_factors.row(user_id)
        s_vector = self._service_factors.row(service_id)
        x = float(u_vector.dot(s_vector))
        # Inline stable sigmoid (scalar hot path).
        if x >= 0:
            g = 1.0 / (1.0 + math.exp(-x))
        else:
            exp_x = math.exp(x)
            g = exp_x / (1.0 + exp_x)
        g_prime = g * (1.0 - g)

        sample_error = abs(r - g) / r  # Eq. 15
        w_u, w_s = self.weights.observe(user_id, service_id, sample_error)

        if self._relative_loss:
            residual = (g - r) * g_prime / (r * r)  # Eq. 6 gradient
        else:
            residual = (g - r) * g_prime  # Eq. 5 gradient (ablation)
        if residual > config.grad_clip:
            residual = config.grad_clip
        elif residual < -config.grad_clip:
            residual = -config.grad_clip
        step_u = config.learning_rate * w_u
        step_s = config.learning_rate * w_s
        # Simultaneous update (Algorithm 1 line 24): both gradients use the
        # pre-step vectors.  The step is rewritten as
        # ``U <- (1 - eta w lambda) U - (eta w residual) S`` so the hot loop
        # does two fused scale-and-subtract passes instead of four temporaries.
        shrink_u = 1.0 - step_u * config.lambda_u
        shrink_s = 1.0 - step_s * config.lambda_s
        new_u = shrink_u * u_vector - (step_u * residual) * s_vector
        s_vector *= shrink_s
        s_vector -= (step_s * residual) * u_vector
        u_vector[:] = new_u

        self._user_factors._versions[user_id] += 1
        self._service_factors._versions[service_id] += 1
        self._updates_applied += 1
        return sample_error

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_normalized(self, user_id: int, service_id: int) -> float:
        """Predicted value in the normalized ``[0, 1]`` space."""
        if user_id >= self.n_users or service_id >= self.n_services:
            raise KeyError(
                f"unknown entity: user {user_id} (have {self.n_users}), "
                f"service {service_id} (have {self.n_services})"
            )
        u_vector = self._user_factors.row(user_id)
        s_vector = self._service_factors.row(service_id)
        return float(sigmoid(float(u_vector @ s_vector)))

    def predict(self, user_id: int, service_id: int) -> float:
        """Predicted raw QoS value ``R_hat_ij`` (backward-transformed)."""
        return float(self.normalizer.denormalize(self.predict_normalized(user_id, service_id)))

    def predict_for_user(self, user_id: int, service_ids) -> np.ndarray:
        """Batched prediction for one user against many candidate services.

        The candidate-ranking primitive: one fused matrix-vector product
        ``S[ids] @ U_u`` plus one vectorized sigmoid + denormalize pass,
        instead of ``len(service_ids)`` per-pair dot products.  Every id
        must already be known to the model (callers route unknown ids
        through their fallback chain); raises :class:`KeyError` otherwise.
        """
        service_ids = np.asarray(service_ids, dtype=np.intp)
        if user_id < 0 or user_id >= self.n_users:
            raise KeyError(f"unknown user {user_id} (have {self.n_users})")
        if service_ids.size == 0:
            return np.empty(0, dtype=float)
        if service_ids.min() < 0 or service_ids.max() >= self.n_services:
            raise KeyError(
                f"unknown service id in batch (have {self.n_services} services)"
            )
        inner = self._service_factors.view()[service_ids] @ self._user_factors.view()[user_id]
        return np.asarray(self.normalizer.denormalize(sigmoid(inner)), dtype=float)

    def rank_candidates(
        self, user_id: int, service_ids, k: "int | None" = None, prefer: str = "min"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-K candidate ranking on the fused batch kernel.

        Returns ``(ordered_ids, predictions)`` — the best ``k`` candidates
        (all when ``k`` is None) sorted best-first.  ``prefer="min"`` ranks
        ascending (response time: lower is better), ``"max"`` descending
        (throughput).  Ties keep the caller's candidate order.
        """
        if prefer not in ("min", "max"):
            raise ValueError(f"prefer must be 'min' or 'max', got {prefer!r}")
        service_ids = np.asarray(service_ids, dtype=np.intp)
        predictions = self.predict_for_user(user_id, service_ids)
        keys = predictions if prefer == "min" else -predictions
        if k is None or k >= service_ids.size:
            order = np.argsort(keys, kind="stable")
        else:
            if k < 1:
                raise ValueError(f"k must be >= 1, got {k}")
            top = np.argpartition(keys, k - 1)[:k]
            order = top[np.argsort(keys[top], kind="stable")]
        return service_ids[order], predictions[order]

    def user_version(self, user_id: int) -> int:
        """Write-version of a user's factor row (prediction-cache stamp)."""
        return self._user_factors.version(user_id)

    def service_version(self, service_id: int) -> int:
        """Write-version of a service's factor row (prediction-cache stamp)."""
        return self._service_factors.version(service_id)

    def predict_matrix(self) -> np.ndarray:
        """Dense prediction matrix over all known users and services."""
        if self.n_users == 0 or self.n_services == 0:
            return np.zeros((self.n_users, self.n_services))
        inner = self._user_factors.view() @ self._service_factors.view().T
        return np.asarray(self.normalizer.denormalize(sigmoid(inner)), dtype=float)

    def training_error(self) -> float:
        """Mean relative error over all retained samples (convergence signal).

        Reads the store's cached normalized column and factor-row views
        directly — no Box-Cox recompute, no matrix copies.
        """
        users, services, __, __, r = self._store.columns()
        if users.size == 0:
            return float("nan")
        u_rows = self._user_factors.view()[users]
        s_rows = self._service_factors.view()[services]
        g = np.asarray(sigmoid(np.einsum("ij,ij->i", u_rows, s_rows)))
        return float(np.mean(np.abs(r - g) / r))

    def user_factors(self) -> np.ndarray:
        """Copy of the user factor matrix ``U`` (shape ``n_users x d``)."""
        return self._user_factors.matrix()

    def service_factors(self) -> np.ndarray:
        """Copy of the service factor matrix ``S`` (shape ``n_services x d``)."""
        return self._service_factors.matrix()
