"""Data transformation pipeline (Section IV-C-1 of the paper).

QoS values are heavily skewed (Fig. 7), which violates the Gaussian noise
assumption behind matrix factorization.  The paper applies a Box-Cox power
transform (Eq. 3) followed by linear normalization into ``[0, 1]`` (Eq. 4);
the factor inner product is then squashed through a sigmoid so predictions
live in the same normalized space.

All functions are vectorized over numpy arrays and also accept scalars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic function ``g(x) = 1 / (1 + exp(-x))``."""
    x = np.asarray(x, dtype=float)
    # Evaluate each branch on clipped input so neither exp overflows.
    positive_branch = 1.0 / (1.0 + np.exp(-np.clip(x, 0.0, None)))
    exp_x = np.exp(np.clip(x, None, 0.0))
    negative_branch = exp_x / (1.0 + exp_x)
    out = np.where(x >= 0, positive_branch, negative_branch)
    return out if out.ndim else float(out)


def sigmoid_derivative(x: np.ndarray | float) -> np.ndarray | float:
    """Derivative ``g'(x) = g(x) (1 - g(x)) = e^x / (e^x + 1)^2``."""
    g = sigmoid(x)
    out = g * (1.0 - g)
    return out if isinstance(out, np.ndarray) and out.ndim else float(out)


def logit(p: np.ndarray | float, eps: float = 1e-12) -> np.ndarray | float:
    """Inverse sigmoid, with clipping away from {0, 1} for stability."""
    p = np.clip(np.asarray(p, dtype=float), eps, 1.0 - eps)
    out = np.log(p / (1.0 - p))
    return out if out.ndim else float(out)


@dataclass(frozen=True, slots=True)
class BoxCoxTransform:
    """The Box-Cox power transform of Eq. 3.

    ``boxcox(x) = (x^alpha - 1) / alpha`` for ``alpha != 0`` and ``log(x)``
    for ``alpha = 0``.  The transform is strictly increasing for every alpha,
    hence rank-preserving.  Inputs are clamped to ``floor`` because the
    transform diverges at 0 when ``alpha <= 0`` (the paper's tuned alphas are
    negative); see DESIGN.md for the substitution note.
    """

    alpha: float = -0.007
    floor: float = 1e-3

    #: Below this magnitude, ``(x^alpha - 1)/alpha`` loses all precision to
    #: cancellation, so the transform switches to its alpha -> 0 limit, log(x).
    _LOG_LIMIT = 1e-8

    def __post_init__(self) -> None:
        check_positive("floor", self.floor)

    def _is_log(self) -> bool:
        return abs(self.alpha) < self._LOG_LIMIT

    def forward(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.maximum(np.asarray(x, dtype=float), self.floor)
        if self._is_log():
            out = np.log(x)
        else:
            out = (np.power(x, self.alpha) - 1.0) / self.alpha
        return out if out.ndim else float(out)

    def inverse(self, y: np.ndarray | float) -> np.ndarray | float:
        """Invert the transform; output is clamped back to ``>= floor``."""
        y = np.asarray(y, dtype=float)
        if self._is_log():
            out = np.exp(y)
        else:
            base = np.maximum(self.alpha * y + 1.0, 0.0)
            with np.errstate(divide="ignore"):
                out = np.power(base, 1.0 / self.alpha)
            # alpha < 0 with base -> 0 yields +inf; the practical codomain of
            # the forward transform keeps base > 0, so only clamp the floor.
            out = np.where(np.isfinite(out), out, np.inf)
        out = np.maximum(out, self.floor)
        return out if isinstance(out, np.ndarray) and out.ndim else float(out)


@dataclass(frozen=True, slots=True)
class QoSNormalizer:
    """Box-Cox + linear normalization into ``[0, 1]`` (Eqs. 3-4) and back.

    ``normalize`` maps raw QoS values to the unit interval the sigmoid-linked
    factor model fits; ``denormalize`` maps model outputs back to raw QoS
    units for reporting and adaptation decisions.
    """

    alpha: float = -0.007
    value_min: float = 0.0
    value_max: float = 20.0
    floor: float = 1e-3

    def __post_init__(self) -> None:
        if self.value_max <= self.value_min:
            raise ValueError(
                f"value_max must exceed value_min, got "
                f"[{self.value_min}, {self.value_max}]"
            )
        check_positive("floor", self.floor)

    @property
    def boxcox(self) -> BoxCoxTransform:
        return BoxCoxTransform(alpha=self.alpha, floor=self.floor)

    def _bounds(self) -> tuple[float, float]:
        transform = self.boxcox
        low = float(transform.forward(max(self.value_min, self.floor)))
        high = float(transform.forward(self.value_max))
        if high <= low:
            raise ValueError(
                "degenerate transformed range; check alpha and value bounds"
            )
        return low, high

    def normalize(self, values: np.ndarray | float) -> np.ndarray | float:
        """Map raw QoS values into ``[0, 1]``.  Values outside
        ``[value_min, value_max]`` are clipped to the unit interval."""
        low, high = self._bounds()
        transformed = self.boxcox.forward(values)
        out = (np.asarray(transformed, dtype=float) - low) / (high - low)
        out = np.clip(out, 0.0, 1.0)
        return out if isinstance(out, np.ndarray) and out.ndim else float(out)

    def denormalize(self, normalized: np.ndarray | float) -> np.ndarray | float:
        """Map normalized values in ``[0, 1]`` back to raw QoS units."""
        low, high = self._bounds()
        normalized = np.clip(np.asarray(normalized, dtype=float), 0.0, 1.0)
        transformed = normalized * (high - low) + low
        out = self.boxcox.inverse(transformed)
        out = np.minimum(out, self.value_max)
        return out if isinstance(out, np.ndarray) and out.ndim else float(out)

    @classmethod
    def linear(cls, value_min: float, value_max: float) -> "QoSNormalizer":
        """Plain linear normalization (``alpha = 1``), as in AMF(alpha=1)."""
        return cls(alpha=1.0, value_min=value_min, value_max=value_max)
