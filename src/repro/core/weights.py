"""Adaptive weights (Section IV-C-3 of the paper).

Each user and each service carries an exponential-moving-average estimate of
its own relative prediction error (``e_u``, ``e_s``).  On every online update
for a sample ``(u, s)``, credence weights

    ``w_u = e_u / (e_u + e_s)``    and    ``w_s = e_s / (e_u + e_s)``

(Eq. 12) split the step between the two factor vectors: the entity with the
larger historical error moves more, so a freshly joined user does not drag a
well-converged service's factors away (and vice versa).  The error trackers
themselves are updated with credence-scaled EMA smoothing (Eqs. 13-14).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive, check_probability


class _GrowableErrors:
    """A float array indexed by entity id that grows on demand.

    New ids are initialized to ``init_error`` (Algorithm 1 line 7 sets the
    EMA error of a new user/service to 1, i.e. maximal uncertainty).
    """

    def __init__(self, init_error: float = 1.0, capacity: int = 16) -> None:
        check_positive("init_error", init_error)
        self._init_error = init_error
        self._values = np.full(max(capacity, 1), init_error, dtype=float)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def ensure(self, entity_id: int) -> None:
        """Make ``entity_id`` addressable, initializing it if new."""
        if entity_id < 0:
            raise IndexError(f"entity id must be non-negative, got {entity_id}")
        if entity_id >= self._values.size:
            new_capacity = max(self._values.size * 2, entity_id + 1)
            grown = np.full(new_capacity, self._init_error, dtype=float)
            grown[: self._values.size] = self._values
            self._values = grown
        if entity_id >= self._size:
            # ids between old size and entity_id keep their init value
            self._size = entity_id + 1

    def get(self, entity_id: int) -> float:
        """Read an entity's error *without* growing the tracker.

        Unknown ids report ``init_error`` (what they would be initialized
        to) but are NOT registered: confidence queries for arbitrary ids —
        the calibration/serving read path — must not inflate the tracked
        population or the serialized checkpoint.  ``observe``/``set``/
        ``ensure`` remain the only growth points.
        """
        if entity_id < 0:
            raise IndexError(f"entity id must be non-negative, got {entity_id}")
        if entity_id >= self._size:
            return self._init_error
        return float(self._values[entity_id])

    def set(self, entity_id: int, value: float) -> None:
        self.ensure(entity_id)
        self._values[entity_id] = value

    def reset(self, entity_id: int) -> None:
        """Reset an entity to the initial (maximal) error, e.g. on rejoin."""
        self.set(entity_id, self._init_error)

    def snapshot(self) -> np.ndarray:
        """Copy of the tracked errors for all known ids."""
        return self._values[: self._size].copy()


class AdaptiveWeights:
    """Per-user/per-service error tracking and credence weights.

    This object is owned by :class:`~repro.core.amf.AdaptiveMatrixFactorization`
    but is independently testable: it knows nothing about latent factors, only
    about error bookkeeping.
    """

    def __init__(self, beta: float = 0.3, init_error: float = 1.0) -> None:
        check_probability("beta", beta)
        check_positive("init_error", init_error)
        self.beta = beta
        self.init_error = init_error
        self._user_errors = _GrowableErrors(init_error)
        self._service_errors = _GrowableErrors(init_error)

    @property
    def n_users(self) -> int:
        return len(self._user_errors)

    @property
    def n_services(self) -> int:
        return len(self._service_errors)

    def register_user(self, user_id: int) -> None:
        """Initialize tracking for a (possibly new) user (Algorithm 1 line 7)."""
        self._user_errors.ensure(user_id)

    def register_service(self, service_id: int) -> None:
        """Initialize tracking for a (possibly new) service."""
        self._service_errors.ensure(service_id)

    def user_error(self, user_id: int) -> float:
        """Current EMA relative error of ``user_id``.

        A pure read: unknown users report ``init_error`` without being
        registered (confidence queries must not grow state).
        """
        return self._user_errors.get(user_id)

    def service_error(self, service_id: int) -> float:
        """Current EMA relative error of ``service_id`` (pure read, like
        :meth:`user_error`)."""
        return self._service_errors.get(service_id)

    def service_error_many(self, service_ids) -> "np.ndarray":
        """EMA relative errors for a batch of services (pure read).

        The batched counterpart of :meth:`service_error`, used by the
        fused candidate-ranking path to report per-prediction expected
        errors without one Python call per service.  Unknown ids report
        ``init_error``, exactly like the scalar read.
        """
        service_ids = np.asarray(service_ids, dtype=np.intp)
        errors = np.full(service_ids.shape, self.init_error, dtype=float)
        if service_ids.size == 0:
            return errors
        if service_ids.min() < 0:
            raise IndexError("service ids must be non-negative")
        known = service_ids < self._service_errors._size
        if known.any():
            errors[known] = self._service_errors._values[service_ids[known]]
        return errors

    def credence(self, user_id: int, service_id: int) -> tuple[float, float]:
        """Return ``(w_u, w_s)`` for a sample between the two entities (Eq. 12).

        The weights are non-negative and sum to 1.  When both errors are 0
        (both entities perfectly converged) the split is even.
        """
        e_u = self._user_errors.get(user_id)
        e_s = self._service_errors.get(service_id)
        total = e_u + e_s
        if total <= 0:
            return 0.5, 0.5
        return e_u / total, e_s / total

    def observe(self, user_id: int, service_id: int, sample_error: float) -> tuple[float, float]:
        """Fold one sample's relative error ``e_ij`` into both trackers.

        Applies the credence-scaled EMA of Eqs. 13-14 and returns the
        ``(w_u, w_s)`` pair that was in force for this sample, i.e. the pair
        the SGD step should use (Algorithm 1 computes weights before the
        error update).
        """
        if sample_error < 0:
            raise ValueError(f"sample_error must be non-negative, got {sample_error}")
        users = self._user_errors
        services = self._service_errors
        users.ensure(user_id)
        services.ensure(service_id)
        # Hot path (one call per SGD step): read/update the trackers directly
        # rather than through get/set, which would re-run ensure().
        e_u = users._values[user_id]
        e_s = services._values[service_id]
        total = e_u + e_s
        if total <= 0:
            w_u = w_s = 0.5
        else:
            w_u = e_u / total
            w_s = e_s / total
        beta = self.beta
        users._values[user_id] = beta * w_u * sample_error + (1.0 - beta * w_u) * e_u
        services._values[service_id] = beta * w_s * sample_error + (1.0 - beta * w_s) * e_s
        return w_u, w_s

    def observe_many(
        self,
        user_ids: np.ndarray,
        service_ids: np.ndarray,
        sample_errors: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`observe` over a conflict-free batch.

        Folds each sample's error into both trackers in one fused pass
        (gather, Eq. 12 weights, Eqs. 13-14 EMA, scatter).  Requires each
        user id and each service id to appear at most once in the batch —
        the scatter write-back would silently drop updates otherwise — which
        is exactly what the replay kernel's conflict-free blocks guarantee.
        Returns the ``(w_u, w_s)`` weight arrays in force for the batch.
        """
        user_ids = np.asarray(user_ids, dtype=np.intp)
        service_ids = np.asarray(service_ids, dtype=np.intp)
        sample_errors = np.asarray(sample_errors, dtype=float)
        if not (user_ids.size == service_ids.size == sample_errors.size):
            raise ValueError(
                f"mismatched batch sizes: {user_ids.size} users, "
                f"{service_ids.size} services, {sample_errors.size} errors"
            )
        if user_ids.size == 0:
            return np.empty(0), np.empty(0)
        if np.any(sample_errors < 0):
            raise ValueError("sample errors must be non-negative")
        self._user_errors.ensure(int(user_ids.max()))
        self._service_errors.ensure(int(service_ids.max()))
        user_values = self._user_errors._values
        service_values = self._service_errors._values
        e_u = user_values[user_ids]
        e_s = service_values[service_ids]
        total = e_u + e_s
        positive = total > 0
        denominator = np.where(positive, total, 1.0)
        w_u = np.where(positive, e_u / denominator, 0.5)
        w_s = np.where(positive, e_s / denominator, 0.5)
        beta = self.beta
        user_values[user_ids] = beta * w_u * sample_errors + (1.0 - beta * w_u) * e_u
        service_values[service_ids] = (
            beta * w_s * sample_errors + (1.0 - beta * w_s) * e_s
        )
        return w_u, w_s

    def set_user_error(self, user_id: int, value: float) -> None:
        """Overwrite a user's EMA error exactly (entity revival from spill)."""
        self._user_errors.set(user_id, float(value))

    def set_service_error(self, service_id: int, value: float) -> None:
        """Overwrite a service's EMA error exactly (entity revival from spill)."""
        self._service_errors.set(service_id, float(value))

    def reset_user(self, user_id: int) -> None:
        """Restore a user's error to the initial value (entity rejoin)."""
        self._user_errors.reset(user_id)

    def reset_service(self, service_id: int) -> None:
        """Restore a service's error to the initial value (entity rejoin)."""
        self._service_errors.reset(service_id)

    def user_error_snapshot(self) -> np.ndarray:
        return self._user_errors.snapshot()

    def service_error_snapshot(self) -> np.ndarray:
        return self._service_errors.snapshot()
