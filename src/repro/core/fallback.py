"""Graceful degradation: a fallback chain behind the AMF model.

The prediction service is consulted exactly when services are failing, so
"the model can't answer" is not an acceptable answer.  When a query names
an entity the model has never seen, or the model itself is unhealthy
(non-finite factors after a poisoning event), predictions degrade through
progressively coarser but always-available estimators:

    AMF model -> user+service running means -> one-sided mean -> global
    mean -> configured prior

Every answer is tagged with its ``source`` so callers (and the paper's
adaptation policies) can weight degraded answers accordingly, and model
answers carry the calibration confidence of
:func:`repro.metrics.calibration.expected_relative_error` — the same
``(e_u + e_s) / 2`` signal AMF's adaptive weights are built on.  Fallback
answers carry no calibration estimate (``expected_error`` is ``None``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PredictionResult:
    """A served prediction plus where it came from.

    Attributes:
        value:          the predicted QoS value.
        source:         which estimator produced it: ``"model"``,
                        ``"user_service_mean"``, ``"user_mean"``,
                        ``"service_mean"``, ``"global_mean"``, or ``"prior"``.
        expected_error: anticipated relative error from the model's EMA
                        trackers; ``None`` for non-model sources.
    """

    value: float
    source: str
    expected_error: "float | None" = None

    @property
    def degraded(self) -> bool:
        return self.source != "model"


class _RunningMean:
    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count


class FallbackPredictor:
    """Per-user / per-service / global running means of observed QoS.

    Thread-safe and O(1) per observation.  This is deliberately the classic
    UMEAN/IMEAN baseline (the weakest predictors in the paper's Table II) —
    the point is availability, not accuracy: it can answer for any entity
    that has ever been observed, and falls through to a configured prior
    even on a completely cold start.
    """

    def __init__(self, prior: float, max_entities: "int | None" = None) -> None:
        if max_entities is not None and max_entities < 1:
            raise ValueError(f"max_entities must be >= 1, got {max_entities}")
        self.prior = float(prior)
        self.max_entities = max_entities
        self._lock = threading.Lock()
        self._users: "OrderedDict[int, _RunningMean]" = OrderedDict()
        self._services: "OrderedDict[int, _RunningMean]" = OrderedDict()
        self._global = _RunningMean()

    def observe(self, user_id: int, service_id: int, value: float) -> None:
        """Fold one observed sample into all three mean levels.

        With ``max_entities`` set, each per-entity map is bounded: the
        least-recently-observed entity's mean is dropped beyond the limit
        (it degrades to the one-sided / global levels).  The bound makes
        the fallback chain safe under the same unbounded-churn streams the
        tiered model handles; the means are advisory serving state, never
        part of the bit-exact checkpoint (they are re-seeded from the
        retained sample store on restart).
        """
        with self._lock:
            for table, entity_id in (
                (self._users, user_id),
                (self._services, service_id),
            ):
                mean = table.get(entity_id)
                if mean is None:
                    mean = table[entity_id] = _RunningMean()
                else:
                    table.move_to_end(entity_id)
                mean.add(value)
                if self.max_entities is not None:
                    while len(table) > self.max_entities:
                        table.popitem(last=False)
            self._global.add(value)

    def predict(self, user_id: int, service_id: int) -> PredictionResult:
        """Best available mean estimate for ``(user_id, service_id)``."""
        with self._lock:
            user = self._users.get(user_id)
            service = self._services.get(service_id)
            if user is not None and service is not None:
                return PredictionResult(
                    (user.mean + service.mean) / 2.0, "user_service_mean"
                )
            if user is not None:
                return PredictionResult(user.mean, "user_mean")
            if service is not None:
                return PredictionResult(service.mean, "service_mean")
            if self._global.count:
                return PredictionResult(self._global.mean, "global_mean")
            return PredictionResult(self.prior, "prior")

    @property
    def observations(self) -> int:
        with self._lock:
            return self._global.count

    def seed_from_samples(self, user_ids, service_ids, values) -> int:
        """Warm the means from retained samples (post-recovery bootstrap).

        A restarted server has no observation history beyond what the model
        retained; seeding from the sample store gives the fallback chain an
        immediate, approximate footing.  Returns how many samples were
        folded in.
        """
        count = 0
        for user_id, service_id, value in zip(user_ids, service_ids, values):
            self.observe(int(user_id), int(service_id), float(value))
            count += 1
        return count
