"""Graceful degradation: a fallback chain behind the AMF model.

The prediction service is consulted exactly when services are failing, so
"the model can't answer" is not an acceptable answer.  When a query names
an entity the model has never seen, or the model itself is unhealthy
(non-finite factors after a poisoning event), predictions degrade through
progressively coarser but always-available estimators:

    AMF model -> user+service running means -> one-sided mean -> global
    mean -> configured prior

Every answer is tagged with its ``source`` so callers (and the paper's
adaptation policies) can weight degraded answers accordingly, and model
answers carry the calibration confidence of
:func:`repro.metrics.calibration.expected_relative_error` — the same
``(e_u + e_s) / 2`` signal AMF's adaptive weights are built on.  Fallback
answers carry no calibration estimate (``expected_error`` is ``None``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PredictionResult:
    """A served prediction plus where it came from.

    Attributes:
        value:          the predicted QoS value.
        source:         which estimator produced it: ``"model"``,
                        ``"user_service_mean"``, ``"user_mean"``,
                        ``"service_mean"``, ``"global_mean"``, or ``"prior"``.
        expected_error: anticipated relative error from the model's EMA
                        trackers; ``None`` for non-model sources.
    """

    value: float
    source: str
    expected_error: "float | None" = None

    @property
    def degraded(self) -> bool:
        return self.source != "model"


class _RunningMean:
    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count


class FallbackPredictor:
    """Per-user / per-service / global running means of observed QoS.

    Thread-safe and O(1) per observation.  This is deliberately the classic
    UMEAN/IMEAN baseline (the weakest predictors in the paper's Table II) —
    the point is availability, not accuracy: it can answer for any entity
    that has ever been observed, and falls through to a configured prior
    even on a completely cold start.
    """

    def __init__(self, prior: float) -> None:
        self.prior = float(prior)
        self._lock = threading.Lock()
        self._users: dict[int, _RunningMean] = {}
        self._services: dict[int, _RunningMean] = {}
        self._global = _RunningMean()

    def observe(self, user_id: int, service_id: int, value: float) -> None:
        """Fold one observed sample into all three mean levels."""
        with self._lock:
            self._users.setdefault(user_id, _RunningMean()).add(value)
            self._services.setdefault(service_id, _RunningMean()).add(value)
            self._global.add(value)

    def predict(self, user_id: int, service_id: int) -> PredictionResult:
        """Best available mean estimate for ``(user_id, service_id)``."""
        with self._lock:
            user = self._users.get(user_id)
            service = self._services.get(service_id)
            if user is not None and service is not None:
                return PredictionResult(
                    (user.mean + service.mean) / 2.0, "user_service_mean"
                )
            if user is not None:
                return PredictionResult(user.mean, "user_mean")
            if service is not None:
                return PredictionResult(service.mean, "service_mean")
            if self._global.count:
                return PredictionResult(self._global.mean, "global_mean")
            return PredictionResult(self.prior, "prior")

    @property
    def observations(self) -> int:
        with self._lock:
            return self._global.count

    def seed_from_samples(self, user_ids, service_ids, values) -> int:
        """Warm the means from retained samples (post-recovery bootstrap).

        A restarted server has no observation history beyond what the model
        retained; seeding from the sample store gives the fallback chain an
        immediate, approximate footing.  Returns how many samples were
        folded in.
        """
        count = 0
        for user_id, service_id, value in zip(user_ids, service_ids, values):
            self.observe(int(user_id), int(service_id), float(value))
            count += 1
        return count
