"""The paper's contribution: Adaptive Matrix Factorization (AMF).

Exports the model, its configuration, the data-transformation pipeline
(Box-Cox + normalization + sigmoid link), the adaptive-weight machinery, and
the Algorithm 1 stream trainer.
"""

from repro.core.config import AMFConfig
from repro.core.transform import (
    BoxCoxTransform,
    QoSNormalizer,
    sigmoid,
    sigmoid_derivative,
)
from repro.core.weights import AdaptiveWeights
from repro.core.kernel import iter_conflict_free_blocks, partition_conflict_free
from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.parallel import ParallelReplayEngine
from repro.core.online import PredictionCache, StreamTrainer, TrainReport
from repro.core.serialization import load_model, save_model
from repro.core.daemon import BackgroundTrainer, ConcurrentModel, TrainerSupervisor
from repro.core.fallback import FallbackPredictor, PredictionResult

__all__ = [
    "AMFConfig",
    "BoxCoxTransform",
    "QoSNormalizer",
    "sigmoid",
    "sigmoid_derivative",
    "AdaptiveWeights",
    "partition_conflict_free",
    "iter_conflict_free_blocks",
    "AdaptiveMatrixFactorization",
    "ParallelReplayEngine",
    "PredictionCache",
    "StreamTrainer",
    "TrainReport",
    "save_model",
    "load_model",
    "ConcurrentModel",
    "BackgroundTrainer",
    "TrainerSupervisor",
    "FallbackPredictor",
    "PredictionResult",
]
