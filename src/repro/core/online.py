"""Algorithm 1 driver: consume an observed QoS stream and replay to
convergence.

The AMF model itself (:mod:`repro.core.amf`) exposes the two primitive
operations of Algorithm 1 — ``observe`` for a newly arrived sample and
``replay_step`` for re-sampling retained data.  :class:`StreamTrainer` wires
them into the outer loop: drain arrivals as they come, then keep replaying
existing samples until the training error stops improving ("if converged:
wait until observing new QoS data").
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.amf import AdaptiveMatrixFactorization
from repro.datasets.schema import QoSRecord
from repro.observability import get_registry
from repro.utils.validation import check_positive

# Trainer observability: how fast replay converges and where wall time goes
# (recorded per training pass, so the per-step hot path stays untouched).
_METRICS = get_registry()
_EPOCHS_HIST = _METRICS.histogram(
    "qos_trainer_epochs",
    "Replay epochs needed per training pass (epochs-to-converge)",
)
_PASSES = _METRICS.counter(
    "qos_trainer_passes_total",
    "Training passes by outcome",
    labelnames=("outcome",),
)
_PHASE_SECONDS = _METRICS.histogram(
    "qos_trainer_phase_seconds",
    "Wall-clock seconds per trainer phase",
    labelnames=("phase",),
)
_PHASE_CONSUME = _PHASE_SECONDS.labels(phase="consume")
_PHASE_REPLAY = _PHASE_SECONDS.labels(phase="replay")
_LAST_EPOCH_ERROR = _METRICS.gauge(
    "qos_trainer_last_epoch_error",
    "Mean replay relative error of the most recent replay epoch",
)
_CACHE_HITS = _METRICS.counter(
    "qos_predict_cache_hits_total",
    "Prediction-cache lookups answered without touching the factors",
)
_CACHE_MISSES = _METRICS.counter(
    "qos_predict_cache_misses_total",
    "Prediction-cache lookups that had to recompute",
    labelnames=("reason",),
)
_CACHE_MISS_COLD = _CACHE_MISSES.labels(reason="cold")
_CACHE_MISS_STALE = _CACHE_MISSES.labels(reason="stale")
_CACHE_EVICTIONS = _METRICS.counter(
    "qos_predict_cache_evictions_total",
    "Prediction-cache entries evicted by the LRU capacity bound",
)
_CACHE_SIZE = _METRICS.gauge(
    "qos_predict_cache_size",
    "Live entries in the prediction cache",
)


class PredictionCache:
    """Version-stamped LRU cache for (user, service) predictions.

    Every SGD write site — scalar online updates, vectorized block
    scatter-writes, parallel-engine copy-out, and row reinitialisation
    (``forget_user``/``forget_service``) — bumps a per-row version counter
    on the factor matrices.  A cache entry stores the prediction together
    with the (user_version, service_version) pair it was computed under;
    a lookup whose stamps no longer match is a *stale* miss, so a stale
    value is never served, without any write-path invalidation hooks.

    The cache holds derived, process-local state: it is never serialized,
    so a model restored from a checkpoint (whose version counters restart
    at zero) simply starts with an empty cache.  Thread-safe; callers that
    pair :meth:`get` with a recompute-and-:meth:`put` sequence should hold
    the model lock across the pair so the stamps match the value.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, int], tuple[float, int, int]] = (
            OrderedDict()
        )
        # Secondary key-set indexes so per-entity invalidation (hot/cold
        # tiering demotes and revives an entity's whole row/column of
        # entries) is O(entity's entries), not O(cache).
        self._by_user: dict[int, set[tuple[int, int]]] = {}
        self._by_service: dict[int, set[tuple[int, int]]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _CACHE_SIZE.set_function(lambda: float(len(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)

    def _unindex(self, key: tuple[int, int]) -> None:
        """Drop ``key`` from both secondary indexes (entry already removed)."""
        user_id, service_id = key
        keys = self._by_user.get(user_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_user[user_id]
        keys = self._by_service.get(service_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_service[service_id]

    def get(
        self,
        user_id: int,
        service_id: int,
        user_version: int,
        service_version: int,
    ) -> float | None:
        """The cached prediction, or ``None`` on a cold or stale miss."""
        key = (user_id, service_id)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _CACHE_MISS_COLD.inc()
                return None
            value, cached_user_version, cached_service_version = entry
            if (
                cached_user_version != user_version
                or cached_service_version != service_version
            ):
                # The factors moved under this entry; drop it so the slot
                # doesn't pin a dead value in the LRU order.
                del self._entries[key]
                self._unindex(key)
                self.misses += 1
                _CACHE_MISS_STALE.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _CACHE_HITS.inc()
            return value

    def put(
        self,
        user_id: int,
        service_id: int,
        value: float,
        user_version: int,
        service_version: int,
    ) -> None:
        key = (user_id, service_id)
        with self._lock:
            self._entries[key] = (value, user_version, service_version)
            self._entries.move_to_end(key)
            self._by_user.setdefault(user_id, set()).add(key)
            self._by_service.setdefault(service_id, set()).add(key)
            while len(self._entries) > self.capacity:
                evicted_key, __ = self._entries.popitem(last=False)
                self._unindex(evicted_key)
                self.evictions += 1
                _CACHE_EVICTIONS.inc()

    def invalidate_user(self, user_id: int) -> int:
        """Drop every entry involving ``user_id``; returns the count dropped.

        The explicit invalidation hook for entity lifecycle transitions:
        version stamps alone cannot protect across a demote/revive cycle,
        because a recycled factor *slot* restarts its version counter on a
        different entity and could coincide with a stale stamp.  Dropped
        entries count as evictions (they were pushed out by a write-side
        event, not by a failed lookup).
        """
        with self._lock:
            keys = self._by_user.pop(user_id, None)
            if not keys:
                return 0
            for key in keys:
                del self._entries[key]
                service_keys = self._by_service.get(key[1])
                if service_keys is not None:
                    service_keys.discard(key)
                    if not service_keys:
                        del self._by_service[key[1]]
            dropped = len(keys)
            self.evictions += dropped
            _CACHE_EVICTIONS.inc(dropped)
            return dropped

    def invalidate_service(self, service_id: int) -> int:
        """Drop every entry involving ``service_id`` (see
        :meth:`invalidate_user`)."""
        with self._lock:
            keys = self._by_service.pop(service_id, None)
            if not keys:
                return 0
            for key in keys:
                del self._entries[key]
                user_keys = self._by_user.get(key[0])
                if user_keys is not None:
                    user_keys.discard(key)
                    if not user_keys:
                        del self._by_user[key[0]]
            dropped = len(keys)
            self.evictions += dropped
            _CACHE_EVICTIONS.inc(dropped)
            return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_user.clear()
            self._by_service.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def _record_replay_pass(report: "TrainReport") -> None:
    """Fold one replay pass's outcome into the trainer metrics."""
    _PHASE_REPLAY.observe(report.wall_seconds)
    _EPOCHS_HIST.observe(report.epochs)
    _PASSES.labels(outcome="converged" if report.converged else "capped").inc()
    if report.error_trace:
        _LAST_EPOCH_ERROR.set(report.error_trace[-1])


@dataclass
class TrainReport:
    """Outcome of one training pass.

    Attributes:
        arrivals:        number of newly observed samples consumed.
        replays:         number of replay SGD steps applied.
        expired:         number of stored samples dropped for staleness.
        epochs:          replay epochs executed (one epoch visits roughly the
                         whole retained store once).
        converged:       whether the convergence criterion was met before
                         ``max_epochs`` ran out.
        final_error:     mean training relative error after the pass.
        error_trace:     mean replay error per epoch (for convergence plots).
        wall_seconds:    wall-clock time spent in this pass.
        quarantined:     arrivals diverted into the sanitizer gate's
                         quarantine (0 without a gate).
    """

    arrivals: int = 0
    replays: int = 0
    expired: int = 0
    epochs: int = 0
    converged: bool = False
    final_error: float = float("nan")
    error_trace: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    quarantined: int = 0


class StreamTrainer:
    """Runs Algorithm 1's outer loop over an AMF model.

    Args:
        model:        the AMF model to train.
        tolerance:    relative improvement threshold; an epoch whose mean
                      replay error improves on the previous epoch by less
                      than this fraction counts toward convergence.
        patience:     number of consecutive low-improvement epochs required
                      to declare convergence.
        min_epochs:   epochs to run before the plateau check may fire.  A
                      cold start sits in the bilinear saddle (both factor
                      matrices near zero) for its first few epochs, where
                      per-epoch improvements are tiny; without this floor
                      the plateau detector occasionally mistakes the saddle
                      for convergence and returns an underfit model.
        max_epochs:   hard cap on replay epochs per :meth:`process` call.
        kernel:       replay kernel override ("scalar", "vectorized" or
                      "parallel") passed to every :meth:`replay_many` call;
                      ``None`` (default) uses the model's ``config.kernel``.
                      "parallel" requires a
                      :class:`~repro.core.parallel.ParallelReplayEngine`
                      attached to the model.
        gate:         optional :class:`repro.robustness.SanitizerGate`;
                      when set, :meth:`consume` routes every arrival
                      through it, so outliers are clipped or quarantined
                      before they reach the model.
    """

    def __init__(
        self,
        model: AdaptiveMatrixFactorization,
        tolerance: float = 5e-2,
        patience: int = 2,
        min_epochs: int = 5,
        max_epochs: int = 100,
        kernel: str | None = None,
        gate=None,
    ) -> None:
        check_positive("tolerance", tolerance)
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_epochs < 1:
            raise ValueError(f"min_epochs must be >= 1, got {min_epochs}")
        if max_epochs < min_epochs:
            raise ValueError(
                f"max_epochs ({max_epochs}) must be >= min_epochs ({min_epochs})"
            )
        if kernel is not None and kernel not in ("scalar", "vectorized", "parallel"):
            raise ValueError(
                f"kernel must be 'scalar', 'vectorized' or 'parallel', got {kernel!r}"
            )
        self.model = model
        self.tolerance = tolerance
        self.patience = patience
        self.min_epochs = min_epochs
        self.max_epochs = max_epochs
        self.kernel = kernel
        self.gate = gate

    def consume(self, records: Iterable[QoSRecord]) -> TrainReport:
        """Feed newly observed samples without any replay.

        With a gate attached, each arrival may be admitted as-is, admitted
        clipped, quarantined (counted in ``report.quarantined``, not
        applied), or trigger the release of previously quarantined samples.
        """
        report = TrainReport()
        started = time.perf_counter()
        if self.gate is None:
            for record in records:
                self.model.observe(record)
                report.arrivals += 1
        else:
            from repro.robustness.gate import apply_observation

            for record in records:
                action, __ = apply_observation(self.model, self.gate, record)
                if action == "quarantine":
                    report.quarantined += 1
                report.arrivals += 1
        report.final_error = self.model.training_error()
        report.wall_seconds = time.perf_counter() - started
        _PHASE_CONSUME.observe(report.wall_seconds)
        return report

    def replay_until_converged(self, now: float) -> TrainReport:
        """Replay retained samples until the error plateaus (or caps out).

        ``now`` is the current stream time, used for expiring stale samples.
        """
        report = TrainReport()
        started = time.perf_counter()
        # Sweep out everything already stale so the epochs below iterate
        # only over live samples (random replay would discard these lazily,
        # wasting a draw per stale sample per epoch).
        report.expired += self.model.purge_expired(now)
        best_error = float("inf")
        stable_epochs = 0
        for __ in range(self.max_epochs):
            store_size = self.model.n_stored_samples
            if store_size == 0:
                break
            applied, expired, epoch_error = self.model.replay_many(
                now, store_size, kernel=self.kernel
            )
            report.replays += applied
            report.expired += expired
            if applied == 0:
                # A batch that applied nothing (every draw expired, or the
                # store emptied) is not a replay epoch; counting it skewed
                # the epochs-to-converge numbers (Fig. 13 protocol).
                break
            report.epochs += 1
            report.error_trace.append(epoch_error)
            # Converged = no epoch has beaten the best error by more than
            # ``tolerance`` (relative) for ``patience`` consecutive epochs,
            # once past the min_epochs saddle guard.  Comparing against the
            # best (not the previous) epoch keeps the sampling noise of
            # randomized replay from stalling the check.
            if epoch_error < best_error * (1.0 - self.tolerance):
                best_error = epoch_error
                stable_epochs = 0
            else:
                best_error = min(best_error, epoch_error)
                stable_epochs += 1
                if report.epochs >= self.min_epochs and stable_epochs >= self.patience:
                    report.converged = True
                    break
        report.final_error = self.model.training_error()
        report.wall_seconds = time.perf_counter() - started
        _record_replay_pass(report)
        return report

    def replay_until_error(
        self,
        now: float,
        target_error: float,
        max_epochs: int | None = None,
    ) -> TrainReport:
        """Replay until the training error reaches ``target_error``.

        The time-to-accuracy protocol used by the efficiency experiment
        (Fig. 13): "converged" means the model is back at the error level
        established during the initial full training — a warm model is
        usually there after zero or one epoch, a cold one needs the full
        climb.  Stops at ``max_epochs`` (defaults to the trainer's cap) if
        the target is unreachable, with ``converged=False``.
        """
        check_positive("target_error", target_error)
        cap = self.max_epochs if max_epochs is None else max_epochs
        report = TrainReport()
        started = time.perf_counter()
        report.expired += self.model.purge_expired(now)
        current = self.model.training_error()
        while current > target_error and report.epochs < cap:
            store_size = self.model.n_stored_samples
            if store_size == 0:
                break
            applied, expired, epoch_error = self.model.replay_many(
                now, store_size, kernel=self.kernel
            )
            report.replays += applied
            report.expired += expired
            if applied == 0:
                # Same rule as replay_until_converged: only epochs that
                # applied at least one replay step count.
                break
            report.epochs += 1
            report.error_trace.append(epoch_error)
            current = self.model.training_error()
        report.converged = current <= target_error
        report.final_error = current
        report.wall_seconds = time.perf_counter() - started
        _record_replay_pass(report)
        return report

    def process(self, records: Iterable[QoSRecord], now: float | None = None) -> TrainReport:
        """Consume arrivals, then replay to convergence.

        ``now`` defaults to the latest arrival timestamp (or 0 when no
        arrivals were provided), matching a live system where replay runs
        between arrivals at the current time.
        """
        records = list(records)
        consume_report = self.consume(records)
        if now is None:
            now = max((record.timestamp for record in records), default=0.0)
        replay_report = self.replay_until_converged(now)
        return TrainReport(
            arrivals=consume_report.arrivals,
            replays=replay_report.replays,
            expired=replay_report.expired,
            epochs=replay_report.epochs,
            converged=replay_report.converged,
            final_error=replay_report.final_error,
            error_trace=replay_report.error_trace,
            wall_seconds=consume_report.wall_seconds + replay_report.wall_seconds,
            quarantined=consume_report.quarantined,
        )
