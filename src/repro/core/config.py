"""Configuration for the AMF model.

Default values follow Section V-C of the paper: ``d = 10``,
``lambda_u = lambda_s = 0.001``, ``beta = 0.3``, ``eta = 0.8``, and
``alpha = -0.007`` for response time (``-0.05`` for throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True, slots=True)
class AMFConfig:
    """Hyper-parameters of Adaptive Matrix Factorization.

    Attributes:
        rank:          dimensionality ``d`` of the latent factor space.
        learning_rate: SGD step size ``eta`` (Eqs. 16-17).
        lambda_u:      regularization strength on user factors.
        lambda_s:      regularization strength on service factors.
        beta:          EMA smoothing factor for per-entity error tracking
                       (Eqs. 13-14).
        alpha:         Box-Cox transformation exponent; ``alpha = 1``
                       degenerates to plain linear normalization, ``alpha = 0``
                       is the log transform.
        value_min:     smallest raw QoS value (``Rmin``; paper uses 0).
        value_max:     largest raw QoS value (``Rmax``; paper uses 20 s for RT
                       and 7000 kbps for TP).
        value_floor:   positive clamp applied before Box-Cox, since the
                       transform diverges at exactly 0 for negative alpha.
        expiry_seconds: observations older than this are discarded during
                       replay (Algorithm 1 line 12; paper uses 15 minutes).
        init_scale:    scale of the random initialization of latent factors.
        init_error:    initial per-entity EMA error for new users/services
                       (Algorithm 1 line 7 initializes it to 1).
        normalized_floor: lower clamp on normalized values ``r`` so the
                       relative-error division ``1 / r^2`` stays finite.
        grad_clip:     cap on the magnitude of the per-sample residual scalar
                       ``(g - r) g' / r^2``.  The relative-error loss blows up
                       when ``r`` is near 0 (e.g. with alpha = 1, where linear
                       normalization leaves most values tiny); clipping keeps
                       single samples from catapulting factors into sigmoid
                       saturation.  With the paper's tuned alphas the residual
                       stays far below the default, so clipping is inert there.
        loss:          "relative" (the paper's Eq. 6, errors divided by r) or
                       "absolute" (plain squared error, Eq. 5) — the latter
                       exists for the ablation benches that quantify how much
                       of AMF's MRE/NPRE advantage the relative loss buys.
        kernel:        replay execution strategy.  "vectorized" (default)
                       partitions each replay batch into conflict-free blocks
                       (no user or service repeated within a block) and runs
                       each block as one fused NumPy pass — an order of
                       magnitude more replay steps/sec with statistically
                       identical accuracy.  "scalar" runs the sequential
                       reference loop, bit-exactly reproducing Algorithm 1's
                       one-sample-at-a-time order of operations.
    """

    rank: int = 10
    learning_rate: float = 0.8
    lambda_u: float = 0.001
    lambda_s: float = 0.001
    beta: float = 0.3
    alpha: float = -0.007
    value_min: float = 0.0
    value_max: float = 20.0
    value_floor: float = 1e-3
    expiry_seconds: float = 900.0
    init_scale: float = 0.1
    init_error: float = 1.0
    normalized_floor: float = 1e-6
    grad_clip: float = 25.0
    loss: str = "relative"
    kernel: str = "vectorized"

    # Conventional presets matching the paper's tuned parameters.
    @classmethod
    def for_response_time(cls, **overrides: object) -> "AMFConfig":
        """Paper's tuned configuration for response-time data."""
        config = cls(alpha=-0.007, value_min=0.0, value_max=20.0)
        return replace(config, **overrides) if overrides else config

    @classmethod
    def for_throughput(cls, **overrides: object) -> "AMFConfig":
        """Paper's tuned configuration for throughput data."""
        config = cls(alpha=-0.05, value_min=0.0, value_max=7000.0)
        return replace(config, **overrides) if overrides else config

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        check_positive("learning_rate", self.learning_rate)
        if self.lambda_u < 0 or self.lambda_s < 0:
            raise ValueError(
                f"regularization must be non-negative, got "
                f"lambda_u={self.lambda_u}, lambda_s={self.lambda_s}"
            )
        check_probability("beta", self.beta)
        if self.value_max <= self.value_min:
            raise ValueError(
                f"value_max must exceed value_min, got "
                f"[{self.value_min}, {self.value_max}]"
            )
        check_positive("value_floor", self.value_floor)
        check_positive("expiry_seconds", self.expiry_seconds)
        check_positive("init_scale", self.init_scale)
        check_positive("init_error", self.init_error)
        check_positive("normalized_floor", self.normalized_floor)
        check_positive("grad_clip", self.grad_clip)
        if self.loss not in ("relative", "absolute"):
            raise ValueError(
                f"loss must be 'relative' or 'absolute', got {self.loss!r}"
            )
        if self.kernel not in ("scalar", "vectorized"):
            raise ValueError(
                f"kernel must be 'scalar' or 'vectorized', got {self.kernel!r}"
            )

    def with_updates(self, **overrides: object) -> "AMFConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
