"""Conflict-free block scheduling for the vectorized replay kernel.

The replay loop of Algorithm 1 applies per-sample SGD steps whose state is
strictly per-entity: a step on sample ``(u, s)`` reads and writes only the
factor row of user ``u``, the factor row of service ``s``, and the two EMA
error trackers of the same entities.  Two samples that share neither a user
nor a service therefore commute exactly — executing them in one fused NumPy
pass (gather, batched math, scatter) produces bit-for-bit the state some
sequential order would, up to floating-point summation order inside the dot
products.

:func:`partition_conflict_free` turns a drawn replay batch into such a
schedule: it assigns every sample a block id so that

* no user id and no service id appears twice within a block, and
* samples sharing an entity keep their relative draw order across blocks
  (sample ``k`` lands in a strictly later block than any earlier sample
  touching the same user or service),

which makes "run the blocks in order, each block as one vectorized pass"
semantically equivalent to sequential replay of the same draw sequence.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np


class _LastBlockTable(dict):
    """Sparse last-block table: unknown ids read as -1 (never scheduled).

    ``dict`` with ``__missing__`` so the scheduling loop can index dense
    list tables and sparse dict tables with identical syntax.
    """

    __slots__ = ()

    def __missing__(self, key: int) -> int:
        return -1


def partition_conflict_free(
    users: "Sequence[int] | np.ndarray",
    services: "Sequence[int] | np.ndarray",
    tables: str = "auto",
) -> np.ndarray:
    """Assign each ``(users[k], services[k])`` sample a conflict-free block id.

    Greedy one-pass schedule: each sample goes into the block right after the
    latest block already containing its user or its service.  This keeps
    per-entity draw order (the property batched simultaneous updates need)
    and produces block ids that are dense in ``0..n_blocks-1`` with block 0
    non-empty.  Runs in O(n) time; ids must be non-negative (as everywhere
    in the model).

    ``tables`` picks the last-block bookkeeping structure: ``"dense"``
    allocates ``max_id + 1`` list slots per axis (fastest on the compact id
    ranges replay batches draw from), ``"dict"`` allocates O(distinct ids)
    (required when one sparse large id — e.g. a 1e9 user id — would
    otherwise allocate gigabytes), and ``"auto"`` (default) chooses per
    axis by comparing the id range against the batch size.  Both structures
    produce identical block assignments.

    Returns an ``np.intp`` array of block ids, one per sample.
    """
    if tables not in ("auto", "dense", "dict"):
        raise ValueError(
            f"tables must be 'auto', 'dense', or 'dict', got {tables!r}"
        )
    n = len(users)
    if n != len(services):
        raise ValueError(
            f"users and services must have equal length, got {n} != {len(services)}"
        )
    if n == 0:
        return np.empty(0, dtype=np.intp)
    # tolist() converts numpy scalars to plain ints once, keeping the loop
    # free of per-element numpy boxing.
    users_list = users.tolist() if isinstance(users, np.ndarray) else list(users)
    services_list = (
        services.tolist() if isinstance(services, np.ndarray) else list(services)
    )
    # Dense tables are only worth their allocation when the id range is on
    # the order of the batch itself.
    dense_limit = max(4 * n, 1024) if tables == "auto" else None

    def make_table(max_id: int) -> "list[int] | _LastBlockTable":
        if tables == "dense" or (tables == "auto" and max_id < dense_limit):
            return [-1] * (max_id + 1)
        return _LastBlockTable()

    last_user_block = make_table(max(users_list))
    last_service_block = make_table(max(services_list))
    blocks = [0] * n
    for k, (u, s) in enumerate(zip(users_list, services_list)):
        last_u = last_user_block[u]
        last_s = last_service_block[s]
        block = (last_u if last_u >= last_s else last_s) + 1
        blocks[k] = block
        last_user_block[u] = block
        last_service_block[s] = block
    return np.array(blocks, dtype=np.intp)


def iter_conflict_free_blocks(
    users: np.ndarray, services: np.ndarray
) -> "Iterator[np.ndarray]":
    """Yield index arrays, one per block, in block order.

    Each yielded array selects a conflict-free subset of the batch; the
    concatenation of all yielded arrays is a permutation of ``0..n-1``.
    """
    if users.size == 0:
        return
    blocks = partition_conflict_free(users, services)
    order = np.argsort(blocks, kind="stable")
    boundaries = np.cumsum(np.bincount(blocks))
    start = 0
    for stop in boundaries.tolist():
        yield order[start:stop]
        start = stop
