"""Save/load AMF model state.

A deployed QoS prediction service (Fig. 3) must survive restarts without
retraining from the full history.  ``save_model``/``load_model`` persist the
complete mutable state — latent factors, per-entity error trackers, the
retained-sample store, and the configuration — into a single ``.npz``
archive.  The RNG state is not persisted: a restored model continues with a
fresh stream seeded by the caller, which only affects future random
initializations and replay order, never existing parameters.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.config import AMFConfig

#: Bump when the archive layout changes; load_model refuses newer versions.
FORMAT_VERSION = 1


def save_model(model: AdaptiveMatrixFactorization, path: str) -> None:
    """Persist a model's full state to ``path`` (a ``.npz`` archive).

    The store's cached normalized values are *not* persisted: they are a
    pure function of the raw values and the config, so :func:`load_model`
    recomputes them in one vectorized pass, keeping the archive format
    stable.
    """
    users, services, timestamps, values, __ = model._store.columns()
    store_users = np.asarray(users, dtype=np.int64)
    store_services = np.asarray(services, dtype=np.int64)
    store_timestamps = np.array(timestamps, dtype=float)
    store_values = np.array(values, dtype=float)

    config_json = json.dumps(
        {field: getattr(model.config, field) for field in model.config.__dataclass_fields__}
    )
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        config_json=np.array(config_json),
        user_factors=model.user_factors(),
        service_factors=model.service_factors(),
        user_errors=model.weights.user_error_snapshot(),
        service_errors=model.weights.service_error_snapshot(),
        store_users=store_users,
        store_services=store_services,
        store_timestamps=store_timestamps,
        store_values=store_values,
        updates_applied=np.int64(model.updates_applied),
    )


def load_model(
    path: str,
    rng: "int | np.random.Generator | None" = None,
) -> AdaptiveMatrixFactorization:
    """Restore a model saved by :func:`save_model`.

    ``rng`` seeds the restored model's *future* randomness (new-entity
    initialization, replay sampling); all persisted parameters are restored
    exactly.
    """
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version > FORMAT_VERSION:
            raise ValueError(
                f"model archive format v{version} is newer than supported "
                f"v{FORMAT_VERSION}"
            )
        config = AMFConfig(**json.loads(str(archive["config_json"])))
        model = AdaptiveMatrixFactorization(config, rng=rng)

        user_factors = archive["user_factors"]
        service_factors = archive["service_factors"]
        if user_factors.size:
            model._user_factors.ensure(user_factors.shape[0] - 1)
            model._user_factors._rows[: user_factors.shape[0]] = user_factors
        if service_factors.size:
            model._service_factors.ensure(service_factors.shape[0] - 1)
            model._service_factors._rows[: service_factors.shape[0]] = service_factors

        user_errors = archive["user_errors"]
        service_errors = archive["service_errors"]
        for user_id, error in enumerate(user_errors):
            model.weights.register_user(user_id)
            model.weights._user_errors.set(user_id, float(error))
        for service_id, error in enumerate(service_errors):
            model.weights.register_service(service_id)
            model.weights._service_errors.set(service_id, float(error))

        store_values = archive["store_values"]
        if store_values.size:
            # Rebuild the replay kernel's normalized-value cache in one
            # vectorized pass (matches what observe() caches per sample).
            norms = np.maximum(
                np.asarray(model.normalizer.normalize(store_values), dtype=float),
                config.normalized_floor,
            )
        else:
            norms = store_values
        for user_id, service_id, timestamp, value, norm in zip(
            archive["store_users"],
            archive["store_services"],
            archive["store_timestamps"],
            store_values,
            norms,
        ):
            model._store.put(
                int(user_id), int(service_id), float(timestamp), float(value), float(norm)
            )
        model._updates_applied = int(archive["updates_applied"])
    return model
