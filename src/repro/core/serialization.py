"""Save/load AMF model state.

A deployed QoS prediction service (Fig. 3) must survive restarts without
retraining from the full history.  ``save_model``/``load_model`` persist the
complete mutable state — latent factors, per-entity error trackers, the
retained-sample store, the configuration, and (since format v2) the RNG
state — into a single ``.npz`` archive.  With the RNG state restored, a
reloaded model is *bit-exact*: replaying the same observation sequence
against it produces the same factors as an uninterrupted run, which is what
the write-ahead-log recovery path (:mod:`repro.server.wal`) relies on.

``atomic=True`` writes through a temporary file and ``os.replace``, so a
crash mid-save can never leave a torn archive where a valid checkpoint used
to be.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.core.config import AMFConfig

#: Bump when the archive layout changes; load_model refuses newer versions.
#: v2 adds ``rng_state_json`` and ``extra_json`` (both optional on load, so
#: v1 archives remain readable).  v3 reserves ``extra_json`` keys under
#: ``robustness`` for the outlier gate / dedup-ledger / timestamp-policy
#: state the prediction server checkpoints alongside the model.  v4
#: reserves ``extra_json`` keys under ``replication`` for the fencing
#: token a replicated server persists (``{"epoch": int, "role": str}``) —
#: control-plane state that legitimately differs between a promoted
#: standby and a never-failed baseline, which is why
#: :func:`archive_digest` can exclude it.  v5 reserves ``extra_json``
#: keys under ``lifecycle`` for the hot/cold tiering state of
#: :class:`repro.lifecycle.TieredAMF` (external-id <-> slot maps, free
#: lists, touch ticks, capacities, spilled-entity sets): the factor/error
#: arrays are saved in *slot* space, so a tiered checkpoint is unreadable
#: as a flat model without this mapping.  ``extra_json`` keys under
#: ``migration`` are additionally reserved (no version bump — the key is
#: optional) for the per-migration import dedup ledger
#: (``{mid: high_seq}``) a shard persists after receiving migrated
#: entities; a resumed coordinator may skip batch sequence numbers, so
#: the migration chaos drill digests with ``ignore_extra=("migration",)``.
#: The array layout is unchanged at every bump, so v1-v4 archives remain
#: readable.
FORMAT_VERSION = 5

_EXTRA_MEMBER = "extra_json.npy"


def archive_digest(path: str, ignore_extra: "tuple[str, ...]" = ()) -> str:
    """Content digest of a saved model archive, stable across re-saves.

    ``np.savez_compressed`` embeds wall-clock timestamps in its zip member
    headers, so two byte-identical model states produce different archive
    *files*.  This hashes the sorted member names and their decompressed
    contents instead — equal digests mean equal persisted state, which is
    how the recovery tests assert byte-identical checkpoints.

    ``ignore_extra`` names top-level ``extra`` keys excluded from the
    digest: the ``extra_json`` member is parsed, the named keys dropped,
    and the remainder hashed in canonical (sorted-key) JSON form.  The
    failover drill uses ``ignore_extra=("replication",)`` so the fencing
    epoch — which *must* differ after a promotion — doesn't mask data-plane
    equality between a promoted standby and a never-failed baseline.
    """
    digest = hashlib.sha256()
    with zipfile.ZipFile(path) as archive:
        for name in sorted(archive.namelist()):
            digest.update(name.encode())
            digest.update(b"\0")
            if ignore_extra and name == _EXTRA_MEMBER:
                with np.load(path, allow_pickle=False) as arrays:
                    extra = json.loads(str(arrays["extra_json"]))
                for key in ignore_extra:
                    extra.pop(key, None)
                digest.update(json.dumps(extra, sort_keys=True).encode())
            else:
                digest.update(archive.read(name))
    return digest.hexdigest()


def save_model(
    model: AdaptiveMatrixFactorization,
    path: str,
    extra: "dict | None" = None,
    atomic: bool = False,
) -> None:
    """Persist a model's full state to ``path`` (a ``.npz`` archive).

    The store's cached normalized values are *not* persisted: they are a
    pure function of the raw values and the config, so :func:`load_model`
    recomputes them in one vectorized pass, keeping the archive format
    stable.

    ``extra`` is an arbitrary JSON-serializable dict stored alongside the
    model (e.g. the WAL sequence number a checkpoint covers).  ``atomic``
    writes to ``path + ".tmp"`` first, fsyncs, and renames into place, so
    readers never observe a half-written archive.
    """
    users, services, timestamps, values, __ = model._store.columns()
    store_users = np.asarray(users, dtype=np.int64)
    store_services = np.asarray(services, dtype=np.int64)
    store_timestamps = np.array(timestamps, dtype=float)
    store_values = np.array(values, dtype=float)

    config_json = json.dumps(
        {field: getattr(model.config, field) for field in model.config.__dataclass_fields__}
    )
    payload = dict(
        format_version=np.int64(FORMAT_VERSION),
        config_json=np.array(config_json),
        rng_state_json=np.array(json.dumps(model._rng.bit_generator.state)),
        extra_json=np.array(json.dumps(extra if extra is not None else {})),
        user_factors=model.user_factors(),
        service_factors=model.service_factors(),
        user_errors=model.weights.user_error_snapshot(),
        service_errors=model.weights.service_error_snapshot(),
        store_users=store_users,
        store_services=store_services,
        store_timestamps=store_timestamps,
        store_values=store_values,
        updates_applied=np.int64(model.updates_applied),
    )
    if not atomic:
        np.savez_compressed(path, **payload)
        return
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        np.savez_compressed(handle, **payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def load_model(
    path: str,
    rng: "int | np.random.Generator | None" = None,
    return_extra: bool = False,
) -> "AdaptiveMatrixFactorization | tuple[AdaptiveMatrixFactorization, dict]":
    """Restore a model saved by :func:`save_model`.

    ``rng`` seeds the restored model's *future* randomness (new-entity
    initialization, replay sampling).  When ``rng`` is ``None`` and the
    archive carries a saved RNG state (format v2+), that state is restored,
    making the reloaded model continue the exact random stream of the saved
    one — required for bit-exact WAL-tail recovery.  Pass an explicit ``rng``
    to override.  ``return_extra=True`` additionally returns the ``extra``
    dict stored at save time (``{}`` for v1 archives).
    """
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version > FORMAT_VERSION:
            raise ValueError(
                f"model archive format v{version} is newer than supported "
                f"v{FORMAT_VERSION}"
            )
        config = AMFConfig(**json.loads(str(archive["config_json"])))
        model = AdaptiveMatrixFactorization(config, rng=rng)
        extra = (
            json.loads(str(archive["extra_json"]))
            if "extra_json" in archive.files
            else {}
        )

        user_factors = archive["user_factors"]
        service_factors = archive["service_factors"]
        if user_factors.size:
            model._user_factors.ensure(user_factors.shape[0] - 1)
            model._user_factors._rows[: user_factors.shape[0]] = user_factors
        if service_factors.size:
            model._service_factors.ensure(service_factors.shape[0] - 1)
            model._service_factors._rows[: service_factors.shape[0]] = service_factors

        user_errors = archive["user_errors"]
        service_errors = archive["service_errors"]
        for user_id, error in enumerate(user_errors):
            model.weights.register_user(user_id)
            model.weights._user_errors.set(user_id, float(error))
        for service_id, error in enumerate(service_errors):
            model.weights.register_service(service_id)
            model.weights._service_errors.set(service_id, float(error))

        store_values = archive["store_values"]
        if store_values.size:
            # Rebuild the replay kernel's normalized-value cache in one
            # vectorized pass (matches what observe() caches per sample).
            norms = np.maximum(
                np.asarray(model.normalizer.normalize(store_values), dtype=float),
                config.normalized_floor,
            )
        else:
            norms = store_values
        for user_id, service_id, timestamp, value, norm in zip(
            archive["store_users"],
            archive["store_services"],
            archive["store_timestamps"],
            store_values,
            norms,
        ):
            model._store.put(
                int(user_id), int(service_id), float(timestamp), float(value), float(norm)
            )
        model._updates_applied = int(archive["updates_applied"])
        # Restore the RNG state LAST: rebuilding the factor matrices above
        # goes through ensure(), which draws (discarded) init vectors —
        # restoring earlier would let those draws consume the saved stream
        # and desynchronize every post-load entity initialization.
        if rng is None and "rng_state_json" in archive.files:
            state = json.loads(str(archive["rng_state_json"]))
            if state.get("bit_generator") == type(model._rng.bit_generator).__name__:
                model._rng.bit_generator.state = state
    if return_extra:
        return model, extra
    return model
