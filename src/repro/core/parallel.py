"""Multi-core replay: entity-partitioned workers over conflict-free blocks.

The vectorized kernel (:meth:`AdaptiveMatrixFactorization._replay_many_vectorized`)
executes each conflict-free block as one fused NumPy pass on a single core.
Within a block no user and no service repeats, so every *row* of the block
computation is independent of every other row — which means a block can be
split across workers with **bit-exact** results, as long as each worker runs
the identical elementwise arithmetic on its slice.

:class:`ParallelReplayEngine` does exactly that:

* the factor matrices and EMA error trackers are staged into
  ``multiprocessing.shared_memory`` buffers (copy-in per batch, copy-out
  after — the model object itself is never shared, so checkpointing and
  serialization are untouched);
* a pool of persistent worker *processes* attaches the buffers by name; each
  worker owns the slice of every block whose ``user_id % n_workers`` equals
  its index (entity partitioning: a user's row is only ever written by one
  worker, so scatter write-backs never race);
* blocks execute in schedule order behind a cyclic barrier shared by the
  workers and the parent — the same block-by-block sequential semantics as
  the single-core kernel, with the *inside* of each wide block parallel;
* blocks narrower than the vectorized kernel's scalar-fallback threshold
  are executed by the parent with the exact scalar arithmetic of
  ``_online_update`` (the two code paths round differently, and parity with
  the single-core kernel requires replicating its mixed execution).

The batch *schedule* (RNG draws, expiry, partitioning) comes from the same
:meth:`~AdaptiveMatrixFactorization._draw_replay_batch` the vectorized
kernel uses, so the engine consumes the model RNG identically — replay
recovery and cross-kernel parity both hold.  ``mean_error`` aggregates
per-worker partial sums, so it can differ from the single-core kernel in
the last bits (summation order); factors, error trackers, counters, and
RNG state are bit-identical.

Usage::

    model = AdaptiveMatrixFactorization(AMFConfig.for_response_time())
    ...
    with ParallelReplayEngine(model, n_workers=4) as engine:
        model.replay_many(now, count, kernel="parallel")
        # or: engine.replay_many(now, count)

Scaling requires physical cores; on a single-CPU host the engine is
correct but slower than the in-process kernel (IPC + staging overhead).
``scripts/bench_trajectory.py --workers`` records the actual curve.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.core.amf import AdaptiveMatrixFactorization
from repro.observability import get_registry

#: Blocks narrower than this run scalar in the parent — must match the
#: vectorized kernel's fallback threshold or parity breaks.
MIN_PARALLEL_WIDTH = 6

_METRICS = get_registry()
_WORKER_STEPS = _METRICS.counter(
    "qos_replay_worker_steps_total",
    "Replay SGD steps executed per parallel-replay worker",
    labelnames=("worker",),
)
_PARALLEL_SCALAR_STEPS = _METRICS.counter(
    "qos_replay_parallel_scalar_steps_total",
    "Steps the parallel engine executed via the parent's scalar fallback",
)


class _SharedArray:
    """A NumPy array backed by a named shared-memory segment (parent side)."""

    def __init__(self, shape: tuple, dtype) -> None:
        self.shape = tuple(int(dim) for dim in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=self.shm.buf)

    def spec(self) -> tuple:
        """(name, shape, dtype-str) — everything a worker needs to attach."""
        return (self.shm.name, self.shape, self.dtype.str)

    def destroy(self) -> None:
        # Drop the array view before closing: an exported buffer keeps the
        # mmap alive and SharedMemory.close() would raise.
        self.array = None
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def _scalar_shared_update(
    user_rows: np.ndarray,
    service_rows: np.ndarray,
    user_errors: np.ndarray,
    service_errors: np.ndarray,
    user_id: int,
    service_id: int,
    r: float,
    params: dict,
) -> float:
    """``_online_update``'s exact arithmetic against the shared buffers.

    Bit-for-bit the scalar kernel: ``math.exp`` sigmoid, scalar credence
    weights and EMA (AdaptiveWeights.observe), ``(g-r)*g'/(r*r)`` residual,
    fused scale-and-subtract.  The parent runs this for blocks below
    :data:`MIN_PARALLEL_WIDTH`, mirroring the vectorized kernel's fallback.
    """
    u_vector = user_rows[user_id]
    s_vector = service_rows[service_id]
    x = float(u_vector.dot(s_vector))
    if x >= 0:
        g = 1.0 / (1.0 + math.exp(-x))
    else:
        exp_x = math.exp(x)
        g = exp_x / (1.0 + exp_x)
    g_prime = g * (1.0 - g)

    sample_error = abs(r - g) / r
    e_u = user_errors[user_id]
    e_s = service_errors[service_id]
    total = e_u + e_s
    if total <= 0:
        w_u = w_s = 0.5
    else:
        w_u = e_u / total
        w_s = e_s / total
    beta = params["beta"]
    user_errors[user_id] = beta * w_u * sample_error + (1.0 - beta * w_u) * e_u
    service_errors[service_id] = (
        beta * w_s * sample_error + (1.0 - beta * w_s) * e_s
    )

    if params["relative_loss"]:
        residual = (g - r) * g_prime / (r * r)
    else:
        residual = (g - r) * g_prime
    grad_clip = params["grad_clip"]
    if residual > grad_clip:
        residual = grad_clip
    elif residual < -grad_clip:
        residual = -grad_clip
    step_u = params["learning_rate"] * w_u
    step_s = params["learning_rate"] * w_s
    shrink_u = 1.0 - step_u * params["lambda_u"]
    shrink_s = 1.0 - step_s * params["lambda_s"]
    new_u = shrink_u * u_vector - (step_u * residual) * s_vector
    s_vector *= shrink_s
    s_vector -= (step_s * residual) * u_vector
    u_vector[:] = new_u
    return sample_error


def _block_slice_update(
    user_rows: np.ndarray,
    service_rows: np.ndarray,
    user_errors: np.ndarray,
    service_errors: np.ndarray,
    block_users: np.ndarray,
    block_services: np.ndarray,
    block_r: np.ndarray,
    params: dict,
) -> float:
    """One worker's slice of one wide block — the vectorized kernel's exact
    elementwise arithmetic, so the union of all slices is bit-identical to
    the single-core block pass.  Returns the slice's error sum."""
    u_block = user_rows[block_users]
    s_block = service_rows[block_services]
    x = np.einsum("ij,ij->i", u_block, s_block)
    exp_neg = np.exp(-np.abs(x))
    g = np.where(x >= 0.0, 1.0, exp_neg) / (1.0 + exp_neg)
    g_prime = g * (1.0 - g)

    difference = g - block_r
    inv_r = 1.0 / block_r
    sample_errors = np.abs(difference) * inv_r
    error_sum = float(sample_errors.sum())

    e_u = user_errors[block_users]
    e_s = service_errors[block_services]
    total = e_u + e_s
    if total.min() > 0.0:
        w_u = e_u / total
        w_s = e_s / total
    else:
        safe = np.where(total > 0.0, total, 1.0)
        w_u = np.where(total > 0.0, e_u / safe, 0.5)
        w_s = np.where(total > 0.0, e_s / safe, 0.5)
    beta = params["beta"]
    ema_u = beta * w_u
    ema_s = beta * w_s
    user_errors[block_users] = ema_u * sample_errors + (1.0 - ema_u) * e_u
    service_errors[block_services] = ema_s * sample_errors + (1.0 - ema_s) * e_s

    if params["relative_loss"]:
        inv_r_sq = inv_r * inv_r
        residual = difference * g_prime * inv_r_sq
    else:
        residual = difference * g_prime
    np.minimum(residual, params["grad_clip"], out=residual)
    np.maximum(residual, -params["grad_clip"], out=residual)
    learning_rate = params["learning_rate"]
    step_u = learning_rate * w_u
    step_s = learning_rate * w_s
    new_u = (1.0 - step_u * params["lambda_u"])[:, None] * u_block
    new_u -= (step_u * residual)[:, None] * s_block
    new_s = (1.0 - step_s * params["lambda_s"])[:, None] * s_block
    new_s -= (step_s * residual)[:, None] * u_block
    user_rows[block_users] = new_u
    service_rows[block_services] = new_s
    return error_sum


def _attach_arrays(specs: dict, cache: dict) -> dict:
    """Attach (or reuse) the shared segments named in ``specs``.

    ``cache`` maps segment name -> SharedMemory across batches so a
    persistent worker re-attaches nothing; segments retired by a parent
    reallocation (growth) are closed.
    """
    wanted = {spec[0] for spec in specs.values()}
    for name in [n for n in cache if n not in wanted]:
        cache.pop(name).close()
    arrays = {}
    for key, (name, shape, dtype) in specs.items():
        shm = cache.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            cache[name] = shm
        arrays[key] = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    return arrays


def _worker_main(worker_id, n_workers, conn, barrier, params, timeout):
    """Persistent worker loop: one message per batch, barriers inside."""
    cache: dict = {}
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            try:
                arrays = _attach_arrays(message["specs"], cache)
                user_rows = arrays["user_rows"]
                service_rows = arrays["service_rows"]
                user_errors = arrays["user_errors"]
                service_errors = arrays["service_errors"]
                n = message["n"]
                users = arrays["users"][:n]
                services = arrays["services"][:n]
                r = arrays["r"][:n]
                boundaries = arrays["boundaries"][: message["n_blocks"]]
                stats = arrays["stats"]
                steps = 0
                error_sum = 0.0
                for kind, first, last in message["plan"]:
                    if kind == "S":
                        # Parent executes these blocks scalar; we just keep
                        # the barrier schedule in lock-step.
                        barrier.wait(timeout)
                        continue
                    for block_id in range(first, last + 1):
                        start = 0 if block_id == 0 else int(boundaries[block_id - 1])
                        stop = int(boundaries[block_id])
                        mine = start + np.flatnonzero(
                            users[start:stop] % n_workers == worker_id
                        )
                        if mine.size:
                            error_sum += _block_slice_update(
                                user_rows,
                                service_rows,
                                user_errors,
                                service_errors,
                                users[mine],
                                services[mine],
                                r[mine],
                                params,
                            )
                            steps += int(mine.size)
                        barrier.wait(timeout)
                stats[worker_id, 0] = steps
                stats[worker_id, 1] = error_sum
                barrier.wait(timeout)
            except Exception:  # noqa: BLE001 — shipped to the parent
                try:
                    conn.send(traceback.format_exc())
                except Exception:  # noqa: BLE001
                    pass
                barrier.abort()
                return
    except (EOFError, OSError):
        return
    finally:
        for shm in cache.values():
            shm.close()


class ParallelReplayEngine:
    """Entity-partitioned multi-process executor for the replay kernel.

    Attaching an engine to a model enables ``kernel="parallel"`` on
    :meth:`AdaptiveMatrixFactorization.replay_many` (and therefore on
    :class:`~repro.core.online.StreamTrainer` /
    :class:`~repro.core.daemon.BackgroundTrainer`).  The engine is
    process-local runtime state: it is never serialized, and a model
    restored from a checkpoint starts without one.

    Args:
        model:       the model to accelerate (one engine per model).
        n_workers:   worker processes; defaults to ``os.cpu_count()``.
        start_method: multiprocessing start method; default ``"fork"``
                     when available (cheapest), else the platform default.
                     Create the engine *before* starting server threads —
                     forking a process with running threads is undefined.
        barrier_timeout: seconds any party waits at a block barrier before
                     declaring the batch broken.
    """

    def __init__(
        self,
        model: AdaptiveMatrixFactorization,
        n_workers: "int | None" = None,
        start_method: "str | None" = None,
        barrier_timeout: float = 60.0,
    ) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if barrier_timeout <= 0:
            raise ValueError(f"barrier_timeout must be positive, got {barrier_timeout}")
        if getattr(model, "_parallel_engine", None) is not None:
            raise RuntimeError("model already has a ParallelReplayEngine attached")
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._model = model
        self.n_workers = n_workers
        self._timeout = barrier_timeout
        self._lock = threading.Lock()
        self._closed = False
        self._broken: "str | None" = None
        config = model.config
        self._params = {
            "learning_rate": config.learning_rate,
            "lambda_u": config.lambda_u,
            "lambda_s": config.lambda_s,
            "grad_clip": config.grad_clip,
            "relative_loss": model._relative_loss,
            "beta": model.weights.beta,
        }
        self._step_handles = [
            _WORKER_STEPS.labels(worker=str(index)) for index in range(n_workers)
        ]

        self._ctx = multiprocessing.get_context(start_method)
        self._barrier = self._ctx.Barrier(n_workers + 1)
        self._stats = _SharedArray((n_workers, 2), np.float64)
        # Factor/error staging grows on demand; batch staging likewise.
        self._buffers: dict[str, _SharedArray] = {"stats": self._stats}
        self._conns = []
        self._processes = []
        for worker_id in range(n_workers):
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    n_workers,
                    child_conn,
                    self._barrier,
                    self._params,
                    barrier_timeout,
                ),
                name=f"amf-replay-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        model._parallel_engine = self

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "ParallelReplayEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the workers and release every shared segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for conn in self._conns:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for process in self._processes:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            for conn in self._conns:
                conn.close()
            for buffer in self._buffers.values():
                buffer.destroy()
            self._buffers = {}
            if getattr(self._model, "_parallel_engine", None) is self:
                self._model._parallel_engine = None

    # -- staging -------------------------------------------------------------
    def _buffer(self, key: str, shape: tuple, dtype) -> _SharedArray:
        """A shared buffer of at least ``shape``, reallocating to grow.

        Growth allocates a fresh (fresh-named) segment; workers notice the
        new name in the next batch's specs and drop the stale attachment.
        """
        existing = self._buffers.get(key)
        if existing is not None and all(
            have >= need for have, need in zip(existing.shape, shape)
        ):
            return existing
        if existing is None:
            grown_shape = tuple(shape)
        else:
            # Double only the dimensions that ran out (amortized growth);
            # sufficient dimensions (e.g. the factor rank) stay put.
            grown_shape = tuple(
                have if have >= need else max(need, 2 * have)
                for need, have in zip(shape, existing.shape)
            )
        replacement = _SharedArray(grown_shape, dtype)
        if existing is not None:
            existing.destroy()
        self._buffers[key] = replacement
        return replacement

    # -- execution -----------------------------------------------------------
    def replay_many(self, now: float, count: int) -> tuple[int, int, float]:
        """Convenience wrapper: ``model.replay_many(..., kernel="parallel")``
        (records the per-kernel replay metrics like any other kernel)."""
        return self._model.replay_many(now, count, kernel="parallel")

    def _replay_batch(self, now: float, count: int) -> tuple[int, int, float]:
        """Execute one replay batch across the worker pool.

        Called by ``AdaptiveMatrixFactorization.replay_many`` under
        ``kernel="parallel"``; callers go through that entry point.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ParallelReplayEngine is closed")
            if self._broken is not None:
                raise RuntimeError(
                    f"ParallelReplayEngine is broken by an earlier failure:\n"
                    f"{self._broken}"
                )
            model = self._model
            users, services, r, boundaries, expired = model._draw_replay_batch(
                now, count
            )
            applied = int(users.size)
            if applied == 0:
                return 0, expired, float("nan")

            # Segment plan: consecutive wide blocks run parallel ("P"),
            # consecutive narrow blocks run scalar in the parent ("S").
            plan: list[tuple[str, int, int]] = []
            widths = []
            start = 0
            for stop in boundaries:
                widths.append(stop - start)
                start = stop
            for block_id, width in enumerate(widths):
                kind = "P" if width >= MIN_PARALLEL_WIDTH else "S"
                if plan and plan[-1][0] == kind:
                    plan[-1] = (kind, plan[-1][1], block_id)
                else:
                    plan.append((kind, block_id, block_id))

            # Copy-in: factors, error trackers, and the batch schedule.
            user_factors = model._user_factors
            service_factors = model._service_factors
            user_errors = model.weights._user_errors
            service_errors = model.weights._service_errors
            n_u, n_s = len(user_factors), len(service_factors)
            n_ue, n_se = user_errors._size, service_errors._size
            rank = user_factors.rank
            uf = self._buffer("user_rows", (max(n_u, 1), rank), np.float64)
            sf = self._buffer("service_rows", (max(n_s, 1), rank), np.float64)
            ue = self._buffer("user_errors", (max(n_ue, 1),), np.float64)
            se = self._buffer("service_errors", (max(n_se, 1),), np.float64)
            bu = self._buffer("users", (applied,), np.int64)
            bs = self._buffer("services", (applied,), np.int64)
            br = self._buffer("r", (applied,), np.float64)
            bb = self._buffer("boundaries", (len(boundaries),), np.int64)
            uf.array[:n_u] = user_factors._rows[:n_u]
            sf.array[:n_s] = service_factors._rows[:n_s]
            ue.array[:n_ue] = user_errors._values[:n_ue]
            se.array[:n_se] = service_errors._values[:n_se]
            bu.array[:applied] = users
            bs.array[:applied] = services
            br.array[:applied] = r
            bb.array[: len(boundaries)] = boundaries
            self._stats.array[:] = 0.0

            message = {
                "specs": {
                    "user_rows": uf.spec(),
                    "service_rows": sf.spec(),
                    "user_errors": ue.spec(),
                    "service_errors": se.spec(),
                    "users": bu.spec(),
                    "services": bs.spec(),
                    "r": br.spec(),
                    "boundaries": bb.spec(),
                    "stats": self._stats.spec(),
                },
                "n": applied,
                "n_blocks": len(boundaries),
                "plan": plan,
            }
            for conn in self._conns:
                conn.send(message)

            scalar_error_sum = 0.0
            scalar_steps = 0
            try:
                for kind, first, last in plan:
                    if kind == "P":
                        # Workers split each block; the parent only keeps
                        # the per-block barrier schedule.
                        for __ in range(first, last + 1):
                            self._barrier.wait(self._timeout)
                        continue
                    for block_id in range(first, last + 1):
                        block_start = (
                            0 if block_id == 0 else boundaries[block_id - 1]
                        )
                        for k in range(block_start, boundaries[block_id]):
                            scalar_error_sum += _scalar_shared_update(
                                uf.array,
                                sf.array,
                                ue.array,
                                se.array,
                                int(users[k]),
                                int(services[k]),
                                float(r[k]),
                                self._params,
                            )
                            scalar_steps += 1
                    self._barrier.wait(self._timeout)
                self._barrier.wait(self._timeout)  # workers publish stats
            except threading.BrokenBarrierError:
                self._broken = self._collect_failures()
                raise RuntimeError(
                    f"parallel replay batch failed:\n{self._broken}"
                ) from None

            # Copy-out: the staged buffers are now the post-batch state.
            user_factors._rows[:n_u] = uf.array[:n_u]
            service_factors._rows[:n_s] = sf.array[:n_s]
            user_errors._values[:n_ue] = ue.array[:n_ue]
            service_errors._values[:n_se] = se.array[:n_se]
            user_factors.bump_versions(users)
            service_factors.bump_versions(services)
            model._updates_applied += applied

            worker_steps = self._stats.array[:, 0]
            error_sum = scalar_error_sum + float(self._stats.array[:, 1].sum())
            for index, handle in enumerate(self._step_handles):
                steps = int(worker_steps[index])
                if steps:
                    handle.inc(steps)
            if scalar_steps:
                _PARALLEL_SCALAR_STEPS.inc(scalar_steps)
            return applied, expired, error_sum / applied

    def _collect_failures(self) -> str:
        """Drain worker tracebacks after a broken barrier."""
        failures = []
        for index, conn in enumerate(self._conns):
            try:
                while conn.poll(0.1):
                    failures.append(f"[worker {index}] {conn.recv()}")
            except (EOFError, OSError):
                failures.append(f"[worker {index}] connection lost")
        for index, process in enumerate(self._processes):
            if not process.is_alive():
                failures.append(
                    f"[worker {index}] exited with code {process.exitcode}"
                )
        return "\n".join(failures) if failures else "no worker diagnostics"
