"""Common interface for offline (batch) QoS predictors.

All baselines follow the paper's offline protocol: ``fit`` on one slice's
sparse training matrix, then produce a dense prediction matrix whose entries
at test positions are scored.  AMF itself does not implement this interface
— it is an online model — but the experiment harness adapts it.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.datasets.schema import QoSMatrix


class MatrixPredictor(abc.ABC):
    """Fit on a sparse :class:`QoSMatrix`, predict every entry."""

    _fitted: bool = False

    @abc.abstractmethod
    def fit(self, matrix: QoSMatrix) -> "MatrixPredictor":
        """Train on the observed entries of ``matrix``; returns ``self``."""

    @abc.abstractmethod
    def predict_matrix(self) -> np.ndarray:
        """Dense predictions with the training matrix's shape."""

    def predict_entries(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Predictions at specific (row, col) positions."""
        return self.predict_matrix()[rows, cols]

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() before predicting"
            )
