"""Biased matrix factorization — a stronger batch baseline (extension).

The PMF baseline of the paper models the QoS matrix purely as a low-rank
product.  Real QoS matrices have strong additive structure (slow users,
slow services), which a bias-augmented factorization captures directly:

    ``r_hat_ij = g(mu + b_i + c_j + U_i . S_j)``

with a global offset ``mu``, per-user bias ``b``, per-service bias ``c``,
and the same sigmoid link on normalized values.  This is the standard
Koren-style extension; it is not in the paper's comparison but gives the
reproduction a tougher modern comparator for Table I-style sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import MatrixPredictor
from repro.core.transform import logit, sigmoid
from repro.datasets.schema import QoSMatrix
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True, slots=True)
class BiasedMFConfig:
    """Hyper-parameters for the biased-MF baseline."""

    rank: int = 10
    learning_rate: float = 2.0
    regularization: float = 0.001
    bias_regularization: float = 0.001
    momentum: float = 0.8
    max_iters: int = 300
    tolerance: float = 1e-6
    init_scale: float = 0.1
    value_min: float = 0.0
    value_max: float = 20.0

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        check_positive("learning_rate", self.learning_rate)
        if self.regularization < 0 or self.bias_regularization < 0:
            raise ValueError("regularization terms must be non-negative")
        check_probability("momentum", self.momentum)
        if self.max_iters < 1:
            raise ValueError(f"max_iters must be >= 1, got {self.max_iters}")
        check_positive("tolerance", self.tolerance)
        check_positive("init_scale", self.init_scale)
        if self.value_max <= self.value_min:
            raise ValueError(
                f"value_max must exceed value_min, got "
                f"[{self.value_min}, {self.value_max}]"
            )


class BiasedMF(MatrixPredictor):
    """Sigmoid-linked MF with global/user/service biases."""

    def __init__(
        self,
        config: BiasedMFConfig | None = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else BiasedMFConfig()
        self._rng = spawn_rng(rng)
        self._mu = 0.0
        self._user_bias: np.ndarray | None = None
        self._service_bias: np.ndarray | None = None
        self._U: np.ndarray | None = None
        self._S: np.ndarray | None = None
        self._loss_trace: list[float] = []
        self._iterations_run = 0

    def _normalize(self, values: np.ndarray) -> np.ndarray:
        config = self.config
        return np.clip(
            (values - config.value_min) / (config.value_max - config.value_min),
            0.0,
            1.0,
        )

    def _denormalize(self, normalized: np.ndarray) -> np.ndarray:
        config = self.config
        return normalized * (config.value_max - config.value_min) + config.value_min

    def _inner(self) -> np.ndarray:
        return (
            self._mu
            + self._user_bias[:, None]
            + self._service_bias[None, :]
            + self._U @ self._S.T
        )

    def _loss(self, r: np.ndarray, mask: np.ndarray) -> float:
        config = self.config
        g = sigmoid(self._inner())
        squared_error = 0.5 * float(np.sum(((r - g) * mask) ** 2))
        penalty = 0.5 * config.regularization * (
            float(np.sum(self._U**2)) + float(np.sum(self._S**2))
        ) + 0.5 * config.bias_regularization * (
            float(np.sum(self._user_bias**2)) + float(np.sum(self._service_bias**2))
        )
        return squared_error + penalty

    def fit(self, matrix: QoSMatrix) -> "BiasedMF":
        if matrix.observed_values().size == 0:
            raise ValueError("cannot fit BiasedMF on an empty matrix")
        config = self.config
        mask = matrix.mask.astype(float)
        r = self._normalize(np.where(matrix.mask, matrix.values, 0.0)) * mask

        n_users, n_services = matrix.shape
        observed_mean = float(matrix.observed_values().mean())
        # Start the global offset at the logit of the normalized mean so the
        # factors and biases only need to model deviations.
        self._mu = float(logit(self._normalize(np.array(observed_mean))))
        self._user_bias = np.zeros(n_users)
        self._service_bias = np.zeros(n_services)
        self._U = self._rng.standard_normal((n_users, config.rank)) * config.init_scale
        self._S = self._rng.standard_normal((n_services, config.rank)) * config.init_scale

        velocity_u = np.zeros_like(self._U)
        velocity_s = np.zeros_like(self._S)
        velocity_bu = np.zeros_like(self._user_bias)
        velocity_bs = np.zeros_like(self._service_bias)

        self._loss_trace = [self._loss(r, mask)]
        self._iterations_run = 0
        learning_rate = config.learning_rate
        for __ in range(config.max_iters):
            g = sigmoid(self._inner())
            residual = (g - r) * g * (1.0 - g) * mask
            grad_u = residual @ self._S + config.regularization * self._U
            grad_s = residual.T @ self._U + config.regularization * self._S
            grad_bu = residual.sum(axis=1) + config.bias_regularization * self._user_bias
            grad_bs = residual.sum(axis=0) + config.bias_regularization * self._service_bias
            grad_mu = float(residual.sum())

            velocity_u = config.momentum * velocity_u - learning_rate * grad_u
            velocity_s = config.momentum * velocity_s - learning_rate * grad_s
            velocity_bu = config.momentum * velocity_bu - learning_rate * grad_bu
            velocity_bs = config.momentum * velocity_bs - learning_rate * grad_bs

            saved = (
                self._U,
                self._S,
                self._user_bias,
                self._service_bias,
                self._mu,
            )
            self._U = self._U + velocity_u
            self._S = self._S + velocity_s
            self._user_bias = self._user_bias + velocity_bu
            self._service_bias = self._service_bias + velocity_bs
            self._mu = self._mu - learning_rate * grad_mu
            self._iterations_run += 1

            previous = self._loss_trace[-1]
            loss = self._loss(r, mask)
            if not np.isfinite(loss) or loss > previous * 1.05:
                # Diverging step: back off, reset momentum, retry.
                (self._U, self._S, self._user_bias, self._service_bias, self._mu) = saved
                velocity_u = np.zeros_like(velocity_u)
                velocity_s = np.zeros_like(velocity_s)
                velocity_bu = np.zeros_like(velocity_bu)
                velocity_bs = np.zeros_like(velocity_bs)
                learning_rate *= 0.5
                self._loss_trace.append(previous)
                continue
            self._loss_trace.append(loss)
            if previous > 0 and abs(previous - loss) / previous < config.tolerance:
                break
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return self._denormalize(np.asarray(sigmoid(self._inner())))

    @property
    def loss_trace(self) -> list[float]:
        """Training loss per iteration (index 0 is pre-training)."""
        return list(self._loss_trace)

    @property
    def iterations_run(self) -> int:
        return self._iterations_run
