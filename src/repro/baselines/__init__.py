"""Baseline QoS predictors the paper compares against (Section V-C):
UPCC, IPCC, UIPCC (neighborhood collaborative filtering) and PMF (batch
matrix factorization), plus trivial mean predictors for sanity floors."""

from repro.baselines.base import MatrixPredictor
from repro.baselines.biased_mf import BiasedMF, BiasedMFConfig
from repro.baselines.means import GlobalMean, ItemMean, UserMean
from repro.baselines.neighborhood import IPCC, UIPCC, UPCC, pcc_similarity_matrix
from repro.baselines.pmf import PMF, PMFConfig
from repro.baselines.timeseries import (
    EWMAPredictor,
    LastValuePredictor,
    MovingAveragePredictor,
)

__all__ = [
    "MatrixPredictor",
    "GlobalMean",
    "UserMean",
    "ItemMean",
    "UPCC",
    "IPCC",
    "UIPCC",
    "pcc_similarity_matrix",
    "PMF",
    "PMFConfig",
    "BiasedMF",
    "BiasedMFConfig",
    "LastValuePredictor",
    "EWMAPredictor",
    "MovingAveragePredictor",
]
