"""Per-pair time-series predictors for *working* services.

The paper contrasts its contribution (predicting QoS of *candidate*
services the user has not invoked) with prior work that monitors *working*
services via time-series analysis of their own history (references [6],
[8]).  These predictors implement that prior-work capability: they forecast
a (user, service) pair only from that pair's own past observations, and
therefore cannot say anything about never-invoked candidates — exactly the
gap AMF fills.  They are used by the selection-quality experiment to show
that gap quantitatively.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.datasets.schema import QoSRecord
from repro.utils.validation import check_probability


class LastValuePredictor:
    """Forecast a pair's next QoS as its most recent observation."""

    def __init__(self) -> None:
        self._latest: dict[tuple[int, int], float] = {}

    def observe(self, record: QoSRecord) -> None:
        self._latest[(record.user_id, record.service_id)] = record.value

    def can_predict(self, user_id: int, service_id: int) -> bool:
        """Only previously invoked pairs are predictable."""
        return (user_id, service_id) in self._latest

    def predict(self, user_id: int, service_id: int) -> float:
        if not self.can_predict(user_id, service_id):
            raise KeyError(
                f"pair ({user_id}, {service_id}) has no invocation history — "
                f"time-series predictors cannot score candidate services"
            )
        return self._latest[(user_id, service_id)]


class EWMAPredictor:
    """Exponentially weighted moving average per (user, service) pair.

    The standard lightweight forecaster for working-service monitoring:
    ``estimate <- beta * observation + (1 - beta) * estimate``.
    """

    def __init__(self, beta: float = 0.3) -> None:
        check_probability("beta", beta)
        self.beta = beta
        self._estimates: dict[tuple[int, int], float] = {}

    def observe(self, record: QoSRecord) -> None:
        key = (record.user_id, record.service_id)
        if key in self._estimates:
            self._estimates[key] = (
                self.beta * record.value + (1.0 - self.beta) * self._estimates[key]
            )
        else:
            self._estimates[key] = record.value

    def can_predict(self, user_id: int, service_id: int) -> bool:
        return (user_id, service_id) in self._estimates

    def predict(self, user_id: int, service_id: int) -> float:
        if not self.can_predict(user_id, service_id):
            raise KeyError(
                f"pair ({user_id}, {service_id}) has no invocation history — "
                f"time-series predictors cannot score candidate services"
            )
        return self._estimates[(user_id, service_id)]


class MovingAveragePredictor:
    """Plain moving average over each pair's last ``window`` observations."""

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._history: dict[tuple[int, int], deque[float]] = {}

    def observe(self, record: QoSRecord) -> None:
        key = (record.user_id, record.service_id)
        if key not in self._history:
            self._history[key] = deque(maxlen=self.window)
        self._history[key].append(record.value)

    def can_predict(self, user_id: int, service_id: int) -> bool:
        return (user_id, service_id) in self._history

    def predict(self, user_id: int, service_id: int) -> float:
        if not self.can_predict(user_id, service_id):
            raise KeyError(
                f"pair ({user_id}, {service_id}) has no invocation history — "
                f"time-series predictors cannot score candidate services"
            )
        return float(np.mean(self._history[(user_id, service_id)]))
