"""Probabilistic Matrix Factorization baseline (the paper's reference [21]).

Salakhutdinov & Mnih's PMF, as used in the paper's Section IV-B and the
Table I comparison: QoS values are linearly normalized into ``[0, 1]``,
fitted by a sigmoid-linked low-rank factorization under squared loss with
Frobenius regularization (Eq. 5), trained by full-batch gradient descent
with momentum.  This is the *offline* model whose limitations (retraining
cost, absolute-error objective, fixed matrix size) motivate AMF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import MatrixPredictor
from repro.core.transform import sigmoid
from repro.datasets.schema import QoSMatrix
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True, slots=True)
class PMFConfig:
    """Hyper-parameters for the PMF baseline.

    Defaults match the paper's shared settings where stated (rank 10) and
    standard PMF practice elsewhere.
    """

    rank: int = 10
    learning_rate: float = 2.0
    # 0.01 is the tuned value: with the sum-form loss, weaker penalties let
    # the factors run into sigmoid saturation and overfit badly at higher
    # densities (the paper tunes every baseline "to achieve their optimal
    # accuracy").
    regularization: float = 0.01
    momentum: float = 0.8
    max_iters: int = 300
    tolerance: float = 1e-6           # relative loss improvement to stop at
    init_scale: float = 0.1
    value_min: float = 0.0
    value_max: float = 20.0

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        check_positive("learning_rate", self.learning_rate)
        if self.regularization < 0:
            raise ValueError(
                f"regularization must be non-negative, got {self.regularization}"
            )
        check_probability("momentum", self.momentum)
        if self.max_iters < 1:
            raise ValueError(f"max_iters must be >= 1, got {self.max_iters}")
        check_positive("tolerance", self.tolerance)
        check_positive("init_scale", self.init_scale)
        if self.value_max <= self.value_min:
            raise ValueError(
                f"value_max must exceed value_min, got "
                f"[{self.value_min}, {self.value_max}]"
            )


class PMF(MatrixPredictor):
    """Batch matrix factorization with a sigmoid link (Eq. 5 of the paper)."""

    def __init__(
        self,
        config: PMFConfig | None = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else PMFConfig()
        self._rng = spawn_rng(rng)
        self._U: np.ndarray | None = None
        self._S: np.ndarray | None = None
        self._loss_trace: list[float] = []
        self._iterations_run = 0

    def _normalize(self, values: np.ndarray) -> np.ndarray:
        config = self.config
        return np.clip(
            (values - config.value_min) / (config.value_max - config.value_min),
            0.0,
            1.0,
        )

    def _denormalize(self, normalized: np.ndarray) -> np.ndarray:
        config = self.config
        return normalized * (config.value_max - config.value_min) + config.value_min

    def _loss(self, r: np.ndarray, mask: np.ndarray) -> float:
        config = self.config
        g = sigmoid(self._U @ self._S.T)
        squared_error = 0.5 * float(np.sum(((r - g) * mask) ** 2))
        penalty = 0.5 * config.regularization * (
            float(np.sum(self._U**2)) + float(np.sum(self._S**2))
        )
        return squared_error + penalty

    def fit(self, matrix: QoSMatrix) -> "PMF":
        if matrix.observed_values().size == 0:
            raise ValueError("cannot fit PMF on an empty matrix")
        config = self.config
        mask = matrix.mask.astype(float)
        r = self._normalize(np.where(matrix.mask, matrix.values, 0.0)) * mask

        n_users, n_services = matrix.shape
        self._U = self._rng.standard_normal((n_users, config.rank)) * config.init_scale
        self._S = self._rng.standard_normal((n_services, config.rank)) * config.init_scale
        # Seed the first latent dimension so the initial inner products sit
        # at the logit of the mean normalized value instead of 0.  Heavily
        # skewed attributes (throughput: mean ~11 of a 7000 range) need
        # inner products around -6; pure random init would have to build
        # that offset against the regularizer and rarely gets there.  This
        # is initialization only — the model stays a plain factorization.
        from repro.core.transform import logit

        mean_logit = float(logit(self._normalize(np.array(matrix.observed_values().mean()))))
        magnitude = np.sqrt(abs(mean_logit))
        if magnitude > 0:
            self._U[:, 0] += np.sign(mean_logit) * magnitude
            self._S[:, 0] += magnitude
        velocity_u = np.zeros_like(self._U)
        velocity_s = np.zeros_like(self._S)

        self._loss_trace = [self._loss(r, mask)]
        self._iterations_run = 0
        learning_rate = config.learning_rate
        for __ in range(config.max_iters):
            inner = self._U @ self._S.T
            g = sigmoid(inner)
            g_prime = g * (1.0 - g)
            # Exact gradient of the sum-form loss (Eq. 5): data term summed
            # over observed entries, plus the Frobenius penalty.
            residual = (g - r) * g_prime * mask
            grad_u = residual @ self._S + config.regularization * self._U
            grad_s = residual.T @ self._U + config.regularization * self._S
            velocity_u = config.momentum * velocity_u - learning_rate * grad_u
            velocity_s = config.momentum * velocity_s - learning_rate * grad_s
            candidate_u = self._U + velocity_u
            candidate_s = self._S + velocity_s
            self._iterations_run += 1

            previous = self._loss_trace[-1]
            saved_u, saved_s = self._U, self._S
            self._U, self._S = candidate_u, candidate_s
            loss = self._loss(r, mask)
            if not np.isfinite(loss) or loss > previous * 1.05:
                # Diverging step: back off the rate, reset momentum, retry.
                self._U, self._S = saved_u, saved_s
                velocity_u = np.zeros_like(velocity_u)
                velocity_s = np.zeros_like(velocity_s)
                learning_rate *= 0.5
                self._loss_trace.append(previous)
                continue
            self._loss_trace.append(loss)
            if previous > 0 and abs(previous - loss) / previous < config.tolerance:
                break
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return self._denormalize(np.asarray(sigmoid(self._U @ self._S.T)))

    @property
    def loss_trace(self) -> list[float]:
        """Training loss per iteration (index 0 is the pre-training loss)."""
        return list(self._loss_trace)

    @property
    def iterations_run(self) -> int:
        """Gradient steps actually taken before convergence/cap."""
        return self._iterations_run
