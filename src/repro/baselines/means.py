"""Trivial mean predictors.

Not part of the paper's comparison table, but standard sanity floors: a
collaborative-filtering model that cannot beat the row/column mean is broken.
Used by tests and the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MatrixPredictor
from repro.datasets.schema import QoSMatrix


class GlobalMean(MatrixPredictor):
    """Predict the mean of all observed training entries everywhere."""

    def __init__(self) -> None:
        self._mean = 0.0
        self._shape: tuple[int, int] = (0, 0)

    def fit(self, matrix: QoSMatrix) -> "GlobalMean":
        observed = matrix.observed_values()
        if observed.size == 0:
            raise ValueError("cannot fit GlobalMean on an empty matrix")
        self._mean = float(observed.mean())
        self._shape = matrix.shape
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return np.full(self._shape, self._mean)


class UserMean(MatrixPredictor):
    """Predict each user's mean observed value; global mean for empty rows."""

    def __init__(self) -> None:
        self._row_means: np.ndarray | None = None
        self._n_services = 0

    def fit(self, matrix: QoSMatrix) -> "UserMean":
        observed = matrix.observed_values()
        if observed.size == 0:
            raise ValueError("cannot fit UserMean on an empty matrix")
        global_mean = float(observed.mean())
        counts = matrix.mask.sum(axis=1)
        sums = np.where(matrix.mask, matrix.values, 0.0).sum(axis=1)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), global_mean)
        self._row_means = means
        self._n_services = matrix.n_services
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return np.repeat(self._row_means[:, None], self._n_services, axis=1)


class ItemMean(MatrixPredictor):
    """Predict each service's mean observed value; global mean for empty cols."""

    def __init__(self) -> None:
        self._col_means: np.ndarray | None = None
        self._n_users = 0

    def fit(self, matrix: QoSMatrix) -> "ItemMean":
        observed = matrix.observed_values()
        if observed.size == 0:
            raise ValueError("cannot fit ItemMean on an empty matrix")
        global_mean = float(observed.mean())
        counts = matrix.mask.sum(axis=0)
        sums = np.where(matrix.mask, matrix.values, 0.0).sum(axis=0)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), global_mean)
        self._col_means = means
        self._n_users = matrix.n_users
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return np.repeat(self._col_means[None, :], self._n_users, axis=0)
