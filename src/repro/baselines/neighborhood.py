"""Neighborhood collaborative filtering baselines: UPCC, IPCC, UIPCC.

These follow Zheng et al., "QoS-aware Web service recommendation by
collaborative filtering" (the paper's reference [17]):

* **UPCC** predicts from users with similar invocation histories,
* **IPCC** predicts from services with similar observed QoS profiles,
* **UIPCC** linearly blends the two with a confidence parameter ``lam``.

Similarities are Pearson correlation coefficients (PCC) computed over the
*co-observed* entries of each pair, fully vectorized with masked matrix
products so the full paper-scale matrices remain tractable.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MatrixPredictor
from repro.datasets.schema import QoSMatrix
from repro.utils.validation import check_probability


def pcc_similarity_matrix(
    values: np.ndarray,
    mask: np.ndarray,
    min_overlap: int = 2,
    eps: float = 1e-12,
) -> np.ndarray:
    """Pairwise PCC between the *rows* of a masked matrix.

    For each row pair ``(a, b)`` the correlation is computed over the columns
    both rows observe, using the co-observed means (the exact definition of
    reference [17], not the whole-row-mean approximation).  Pairs with fewer
    than ``min_overlap`` co-observed columns, or with degenerate variance,
    get similarity 0.  The diagonal is 0 so an entity is never its own
    neighbor.

    Vectorization: with ``X`` holding values (zeros where unobserved) and
    ``M`` the mask,

    ``N = M M^T`` (overlap counts), ``S = X X^T`` (co-observed product sums),
    ``A = X M^T`` / ``B = M X^T`` (co-observed row sums), ``Q = X^2 M^T``
    (co-observed square sums), giving covariance ``S - A B / N`` and
    variances ``Q - A^2 / N`` / ``Q^T - B^2 / N``.
    """
    if min_overlap < 1:
        raise ValueError(f"min_overlap must be >= 1, got {min_overlap}")
    mask = np.asarray(mask, dtype=bool)
    X = np.where(mask, np.asarray(values, dtype=float), 0.0)
    M = mask.astype(float)

    N = M @ M.T
    S = X @ X.T
    A = X @ M.T
    B = A.T  # M @ X.T
    Q = (X * X) @ M.T

    with np.errstate(divide="ignore", invalid="ignore"):
        safe_n = np.maximum(N, 1.0)
        cov = S - A * B / safe_n
        var_a = Q - A * A / safe_n
        var_b = Q.T - B * B / safe_n
        denominator = np.sqrt(np.maximum(var_a, 0.0) * np.maximum(var_b, 0.0))
        similarity = np.where(denominator > eps, cov / np.maximum(denominator, eps), 0.0)

    similarity[N < min_overlap] = 0.0
    np.fill_diagonal(similarity, 0.0)
    return np.clip(similarity, -1.0, 1.0)


def _top_k_positive(similarity: np.ndarray, top_k: int) -> np.ndarray:
    """Zero out everything except each row's top-k positive similarities."""
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    pruned = np.where(similarity > 0.0, similarity, 0.0)
    if top_k >= pruned.shape[1]:
        return pruned
    # Keep the k largest entries per row.
    threshold_idx = np.argpartition(-pruned, top_k - 1, axis=1)[:, :top_k]
    keep = np.zeros_like(pruned, dtype=bool)
    np.put_along_axis(keep, threshold_idx, True, axis=1)
    return np.where(keep, pruned, 0.0)


def _neighborhood_predict(
    values: np.ndarray,
    mask: np.ndarray,
    weights: np.ndarray,
    eps: float = 1e-12,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean-centered weighted-neighbor prediction over the rows.

    Returns ``(predictions, supported)`` where ``supported`` marks entries
    that had at least one contributing neighbor.  Unsupported entries fall
    back to the row mean (or the global mean for empty rows).
    """
    M = mask.astype(float)
    X = np.where(mask, values, 0.0)
    observed = values[mask]
    global_mean = float(observed.mean()) if observed.size else 0.0
    row_counts = mask.sum(axis=1)
    row_means = np.where(
        row_counts > 0,
        X.sum(axis=1) / np.maximum(row_counts, 1),
        global_mean,
    )

    deviations = (X - row_means[:, None]) * M
    numerator = weights @ deviations
    denominator = np.abs(weights) @ M
    supported = denominator > eps
    adjustment = np.where(supported, numerator / np.maximum(denominator, eps), 0.0)
    predictions = row_means[:, None] + adjustment
    return predictions, supported


class UPCC(MatrixPredictor):
    """User-based PCC collaborative filtering (reference [17]).

    Args:
        top_k:       neighborhood size (similar users per prediction).
        min_overlap: minimum co-invoked services for a similarity to count.
    """

    def __init__(self, top_k: int = 10, min_overlap: int = 2) -> None:
        self.top_k = top_k
        self.min_overlap = min_overlap
        self._predictions: np.ndarray | None = None
        self._supported: np.ndarray | None = None

    def fit(self, matrix: QoSMatrix) -> "UPCC":
        if matrix.observed_values().size == 0:
            raise ValueError("cannot fit UPCC on an empty matrix")
        similarity = pcc_similarity_matrix(
            matrix.values, matrix.mask, min_overlap=self.min_overlap
        )
        weights = _top_k_positive(similarity, self.top_k)
        self._predictions, self._supported = _neighborhood_predict(
            matrix.values, matrix.mask, weights
        )
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return self._predictions.copy()

    def supported_mask(self) -> np.ndarray:
        """True where at least one similar user contributed."""
        self._require_fitted()
        return self._supported.copy()


class IPCC(MatrixPredictor):
    """Item(service)-based PCC collaborative filtering (reference [17])."""

    def __init__(self, top_k: int = 10, min_overlap: int = 2) -> None:
        self.top_k = top_k
        self.min_overlap = min_overlap
        self._predictions: np.ndarray | None = None
        self._supported: np.ndarray | None = None

    def fit(self, matrix: QoSMatrix) -> "IPCC":
        if matrix.observed_values().size == 0:
            raise ValueError("cannot fit IPCC on an empty matrix")
        similarity = pcc_similarity_matrix(
            matrix.values.T, matrix.mask.T, min_overlap=self.min_overlap
        )
        weights = _top_k_positive(similarity, self.top_k)
        predictions_t, supported_t = _neighborhood_predict(
            matrix.values.T, matrix.mask.T, weights
        )
        self._predictions = predictions_t.T
        self._supported = supported_t.T
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return self._predictions.copy()

    def supported_mask(self) -> np.ndarray:
        """True where at least one similar service contributed."""
        self._require_fitted()
        return self._supported.copy()


class UIPCC(MatrixPredictor):
    """Hybrid of UPCC and IPCC (reference [17]).

    Blends the two predictions with weight ``lam`` on the user-based side.
    Entries supported by only one of the two models use that model alone;
    entries supported by neither keep the blended mean-based fallbacks.
    """

    def __init__(self, lam: float = 0.5, top_k: int = 10, min_overlap: int = 2) -> None:
        check_probability("lam", lam)
        self.lam = lam
        self.user_model = UPCC(top_k=top_k, min_overlap=min_overlap)
        self.item_model = IPCC(top_k=top_k, min_overlap=min_overlap)
        self._predictions: np.ndarray | None = None

    def fit(self, matrix: QoSMatrix) -> "UIPCC":
        self.user_model.fit(matrix)
        self.item_model.fit(matrix)
        user_pred = self.user_model.predict_matrix()
        item_pred = self.item_model.predict_matrix()
        user_ok = self.user_model.supported_mask()
        item_ok = self.item_model.supported_mask()

        blended = self.lam * user_pred + (1.0 - self.lam) * item_pred
        predictions = np.where(user_ok & item_ok, blended, 0.0)
        predictions = np.where(user_ok & ~item_ok, user_pred, predictions)
        predictions = np.where(~user_ok & item_ok, item_pred, predictions)
        predictions = np.where(~user_ok & ~item_ok, blended, predictions)
        self._predictions = predictions
        self._fitted = True
        return self

    def predict_matrix(self) -> np.ndarray:
        self._require_fitted()
        return self._predictions.copy()
