"""Rolling stream-accuracy monitor: live MAE/MRE/NPRE against arrivals.

The paper evaluates prediction quality offline with MAE, MRE, and NPRE
(Section V-B).  A serving deployment needs the same signal *online*: every
arriving observation is also a ground-truth label for the prediction the
model would have served a moment earlier, so comparing the pre-update
prediction against the observed value yields a continuously updated
accuracy estimate — exactly the drift signal outlier-resilient QoS work
shows live streams need.

:class:`StreamAccuracyMonitor` keeps a bounded window of
``(predicted, actual)`` pairs and computes the three Section V-B metrics
over it on demand.  The formulas intentionally mirror
:mod:`repro.metrics.errors` (floor-clamped relative errors) but are inlined
here so the observability layer stays free of intra-repo dependencies.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

#: Same zero-guard as repro.metrics.errors.relative_errors.
_RELATIVE_FLOOR = 1e-9


class StreamAccuracyMonitor:
    """Windowed MAE/MRE/NPRE of the live observation stream.

    Args:
        window:     how many most-recent ``(predicted, actual)`` pairs to
                    score; bounds memory and makes the metrics *drift*
                    metrics (old accuracy ages out).
        percentile: the NPRE percentile (the paper uses 90).
    """

    def __init__(self, window: int = 512, percentile: float = 90.0) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not (0.0 < percentile < 100.0):
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        self.window = window
        self.percentile = percentile
        self._lock = threading.Lock()
        self._predicted: deque[float] = deque(maxlen=window)
        self._actual: deque[float] = deque(maxlen=window)
        self._recorded = 0

    def record(self, predicted: float, actual: float) -> None:
        """Score one arrival against the prediction that preceded it.

        Non-finite pairs are ignored — a poisoned model is the health
        system's problem; here it would only corrupt the accuracy window.
        """
        predicted = float(predicted)
        actual = float(actual)
        if not (np.isfinite(predicted) and np.isfinite(actual)):
            return
        with self._lock:
            self._predicted.append(predicted)
            self._actual.append(actual)
            self._recorded += 1

    @property
    def recorded(self) -> int:
        """Total pairs ever recorded (not just the current window)."""
        with self._lock:
            return self._recorded

    def snapshot(self) -> dict[str, float]:
        """Current windowed metrics: ``{window, mae, mre, npre}``.

        The error metrics are NaN while the window is empty.
        """
        with self._lock:
            predicted = np.array(self._predicted, dtype=float)
            actual = np.array(self._actual, dtype=float)
        if predicted.size == 0:
            return {
                "window": 0,
                "mae": float("nan"),
                "mre": float("nan"),
                "npre": float("nan"),
            }
        absolute = np.abs(predicted - actual)
        relative = absolute / np.maximum(np.abs(actual), _RELATIVE_FLOOR)
        return {
            "window": int(predicted.size),
            "mae": float(absolute.mean()),
            "mre": float(np.median(relative)),
            "npre": float(np.percentile(relative, self.percentile)),
        }

    def bind(self, registry, prefix: str = "qos_stream") -> None:
        """Expose the windowed metrics as scrape-time gauges on ``registry``.

        Registers ``{prefix}_mae`` / ``_mre`` / ``_npre`` / ``_window_size``
        gauges whose values are computed from the monitor at read time.
        """
        specs = {
            "mae": "Windowed mean absolute error of served predictions vs arrivals",
            "mre": "Windowed median relative error of served predictions vs arrivals",
            "npre": "Windowed 90th-percentile relative error vs arrivals",
        }
        for key, help_text in specs.items():
            gauge = registry.gauge(f"{prefix}_{key}", help_text)
            gauge.set_function(lambda key=key: self.snapshot()[key])
        size = registry.gauge(
            f"{prefix}_window_size",
            "Number of (prediction, observation) pairs in the accuracy window",
        )
        size.set_function(lambda: self.snapshot()["window"])
