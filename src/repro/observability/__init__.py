"""Observability for the online-prediction loop (extension).

A QoS manager adapting at runtime (Section III of the paper) needs to see
how the predictor behind it is doing: replay throughput and convergence,
WAL/checkpoint latency, crash/restart churn, which fallback sources are
serving, and whether live accuracy is drifting.  This package provides a
dependency-free metrics layer for all of that:

* :mod:`repro.observability.registry` — thread-safe counters, gauges, and
  bounded histograms in a get-or-create :class:`MetricsRegistry`, rendered
  in the Prometheus text exposition format (and strictly re-parsable via
  :func:`parse_prometheus_text`).
* :mod:`repro.observability.timing` — ``with time_block(hist)`` /
  ``@timed(hist)`` wall-clock helpers.
* :mod:`repro.observability.drift` — :class:`StreamAccuracyMonitor`, the
  windowed live MAE/MRE/NPRE (Section V-B metrics computed online).

Every instrumented module records into the shared default registry
(:func:`get_registry`), which ``GET /metrics`` on the prediction server
renders.  Recording is cheap enough to stay on by default;
:func:`set_enabled` exists so benchmarks can quantify the overhead.
"""

from repro.observability.drift import StreamAccuracyMonitor
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    is_enabled,
    parse_prometheus_text,
    set_enabled,
)
from repro.observability.timing import time_block, timed

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StreamAccuracyMonitor",
    "get_registry",
    "is_enabled",
    "parse_prometheus_text",
    "set_enabled",
    "time_block",
    "timed",
]
