"""Thread-safe, dependency-free metrics primitives with Prometheus output.

The serving stack (Fig. 3 of the paper) is consulted by a QoS manager that
must *see* the predictor: replay throughput, convergence behavior, WAL
latency, how often degraded fallbacks are served.  This module provides the
minimal metric vocabulary for that, using only the standard library:

* :class:`Counter` — monotonically increasing total.
* :class:`Gauge` — a value that goes up and down, or is computed at scrape
  time via :meth:`Gauge.set_function` (e.g. "seconds since the trainer last
  applied a batch").
* :class:`Histogram` — exact count/sum plus a *bounded* reservoir of the
  most recent observations from which quantiles are computed at read time.
  Memory is O(window) regardless of traffic, and the hot-path cost of
  :meth:`Histogram.observe` is one lock and one deque append.

All metrics hang off a :class:`MetricsRegistry`; :func:`get_registry`
returns the process-wide default every instrumented module shares, so one
``GET /metrics`` scrape covers the model core, the trainers, and the
durability layer at once.  :meth:`MetricsRegistry.render` emits the
Prometheus text exposition format (version 0.0.4); histograms render as
``summary`` families with quantile lines.  :func:`parse_prometheus_text`
is the matching strict parser, used by tests and the chaos drill to fail
on malformed output.

Instrumentation is designed to stay on in production; :func:`set_enabled`
exists so the benchmark harness can measure its overhead (recorded in
``BENCH_replay.json``; the budget is < 5% of replay throughput).
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import deque
from collections.abc import Iterator

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class _Switch:
    """Process-wide instrumentation on/off flag (a plain attribute read in
    the hot path, shared by every metric instance)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


_SWITCH = _Switch()


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable metric recording (scrapes keep working)."""
    _SWITCH.enabled = bool(enabled)


def is_enabled() -> bool:
    return _SWITCH.enabled


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class Counter:
    """A monotonically increasing total; thread-safe."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        if not _SWITCH.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up, down, or be computed at scrape time."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = None

    def set(self, value: float) -> None:
        if not _SWITCH.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _SWITCH.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn) -> None:
        """Compute the gauge lazily: ``fn()`` is called at every read.

        The callback must be cheap and must not raise; a raising callback
        reads as NaN rather than failing the whole scrape.
        """
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:  # noqa: BLE001 — a broken probe must not kill a scrape
            return float("nan")

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._fn = None


class _Timer:
    """Context manager that observes its wall-clock duration on exit."""

    __slots__ = ("_metric", "_start")

    def __init__(self, metric: "Histogram") -> None:
        self._metric = metric
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._metric.observe(time.perf_counter() - self._start)


class Histogram:
    """Exact count/sum plus bounded recent-window quantiles.

    ``window`` bounds memory: quantiles summarize the most recent
    observations only, which is the right semantics for drift-style
    monitoring (old latencies should age out).  ``quantiles`` are the
    summary points rendered on a scrape (nearest-rank over the window).
    """

    __slots__ = ("_lock", "_window", "_count", "_sum", "quantiles")

    def __init__(
        self,
        window: int = 1024,
        quantiles: tuple[float, ...] = (0.5, 0.9, 0.99),
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        for q in quantiles:
            if not (0.0 < q < 1.0):
                raise ValueError(f"quantiles must be in (0, 1), got {q}")
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self.quantiles = tuple(quantiles)

    def observe(self, value: float) -> None:
        if not _SWITCH.enabled:
            return
        value = float(value)
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value

    def time(self) -> _Timer:
        """``with hist.time(): ...`` observes the block's duration."""
        return _Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile_values(self) -> dict[float, float]:
        """Nearest-rank quantiles over the bounded window (NaN when empty)."""
        with self._lock:
            data = sorted(self._window)
        if not data:
            return {q: float("nan") for q in self.quantiles}
        n = len(data)
        return {
            q: data[min(n - 1, max(0, math.ceil(q * n) - 1))]
            for q in self.quantiles
        }

    def _reset(self) -> None:
        with self._lock:
            self._window.clear()
            self._count = 0
            self._sum = 0.0


class _Family:
    """One named metric family: help text, type, and labeled children."""

    def __init__(self, name: str, help: str, kind: str, labelnames, factory) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = factory()

    def labels(self, **labels):
        """The child metric for one label-value combination (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory()
                self._children[key] = child
            return child

    @property
    def unlabeled(self):
        return self._children[()]

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def _label_string(self, key: tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render_lines(self) -> Iterator[str]:
        exposition_type = "summary" if self.kind == "histogram" else self.kind
        if self.help:
            yield f"# HELP {self.name} {_escape_help(self.help)}"
        yield f"# TYPE {self.name} {exposition_type}"
        for key, metric in self.children():
            if self.kind in ("counter", "gauge"):
                yield f"{self.name}{self._label_string(key)} {_format_value(metric.value)}"
                continue
            for q, value in metric.quantile_values().items():
                if math.isnan(value):
                    continue
                labels = self._label_string(key, extra=f'quantile="{q}"')
                yield f"{self.name}{labels} {_format_value(value)}"
            labels = self._label_string(key)
            yield f"{self.name}_sum{labels} {_format_value(metric.sum)}"
            yield f"{self.name}_count{labels} {_format_value(metric.count)}"


class MetricsRegistry:
    """Get-or-create registry of metric families with Prometheus rendering.

    Creation is idempotent: asking twice for the same name returns the same
    object, so instrumented modules can bind handles at import time and
    tests can look the same metric up by name.  Re-registering a name with
    a different type or label set is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, name: str, help: str, kind: str, labelnames, factory):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help, kind, labelnames, factory)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} with "
                    f"labels {family.labelnames}; cannot re-register as {kind} "
                    f"with labels {tuple(labelnames)}"
                )
        return family if family.labelnames else family.unlabeled

    def counter(self, name: str, help: str = "", labelnames=()) -> "Counter | _Family":
        """A counter (or, with ``labelnames``, a family of counters)."""
        return self._get_or_create(name, help, "counter", labelnames, Counter)

    def gauge(self, name: str, help: str = "", labelnames=()) -> "Gauge | _Family":
        return self._get_or_create(name, help, "gauge", labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        window: int = 1024,
        quantiles: tuple[float, ...] = (0.5, 0.9, 0.99),
    ) -> "Histogram | _Family":
        return self._get_or_create(
            name,
            help,
            "histogram",
            labelnames,
            lambda: Histogram(window=window, quantiles=quantiles),
        )

    def families(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            lines.extend(family.render_lines())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every metric in place (test isolation).

        Metric objects keep their identity — module-level handles bound at
        import time stay valid — but values, histogram windows, and gauge
        callbacks are cleared.
        """
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for __, metric in family.children():
                metric._reset()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all instrumented modules share."""
    return _DEFAULT_REGISTRY


_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+\d+)?$"  # optional timestamp
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Strictly parse Prometheus text exposition; raise ``ValueError`` on
    malformed input.

    Returns ``{family_name: {"type": ..., "samples": {(name, labels): value}}}``
    where ``labels`` is a sorted tuple of ``(label, value)`` pairs.  Every
    sample must belong to a family declared by a preceding ``# TYPE`` line
    (``summary`` families also own their ``_sum``/``_count`` series).
    """
    families: dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line: {raw!r}")
            __, __, name, kind = parts
            if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            families[name] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {raw!r}")
        name = match.group("name")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: malformed sample value {value_text!r}"
            ) from exc
        family_name = name
        if family_name not in families:
            for suffix in ("_sum", "_count", "_bucket"):
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    family_name = name[: -len(suffix)]
                    break
        family = families.get(family_name)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding TYPE declaration"
            )
        labels_text = match.group("labels") or ""
        labels = []
        if labels_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(labels_text):
                labels.append((pair.group(1), pair.group(2)))
                consumed = pair.end()
            remainder = labels_text[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(
                    f"line {lineno}: malformed label set {labels_text!r}"
                )
        family["samples"][(name, tuple(sorted(labels)))] = value
    return families
