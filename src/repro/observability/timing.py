"""Trace/timing helpers over the metric primitives.

Thin sugar so instrumented code reads as *what* is being timed rather than
perf_counter arithmetic: ``with time_block(histogram): ...`` and the
``@timed(histogram)`` decorator observe wall-clock durations into any
object with an ``observe(seconds)`` method (normally a
:class:`~repro.observability.registry.Histogram`).
"""

from __future__ import annotations

import functools
import time


class time_block:  # noqa: N801 — used as `with time_block(...)`, reads as a verb
    """Context manager observing the block's wall-clock duration.

    ``metric`` is anything with ``observe(seconds)``.  The elapsed time is
    also available afterwards as ``.elapsed``.
    """

    __slots__ = ("_metric", "_start", "elapsed")

    def __init__(self, metric) -> None:
        self._metric = metric
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "time_block":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._metric.observe(self.elapsed)


def timed(metric):
    """Decorator: observe every call's duration into ``metric``."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                metric.observe(time.perf_counter() - started)

        return wrapper

    return decorate
