"""Admission-control tests: token bucket, shedding, and client retry hints.

Three layers:

* :class:`TokenBucket` / :class:`AdmissionController` mechanics on a fake
  clock (deterministic rate math, no sleeps);
* server-level shedding over real HTTP — 429/503 with ``Retry-After`` in
  both header and body, deadline budgets, batch cost accounting, and the
  invariant that predictions are never shed;
* :class:`PredictionClient` behavior — honoring server retry hints, and
  retrying observation POSTs only under an idempotency key.
"""

import email.message
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.robustness import (
    AdmissionConfig,
    AdmissionController,
    Overloaded,
    RateLimited,
    TokenBucket,
)
from repro.server import PredictionClient, PredictionServer
from repro.server.client import RetryableServiceError, _retry_after_hint


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.try_acquire(5.0) == 0.0  # full burst passes
        assert bucket.try_acquire(1.0) == pytest.approx(0.1)  # 1 token / 10 per s
        clock.advance(0.1)
        assert bucket.try_acquire(1.0) == 0.0

    def test_failed_acquire_leaves_bucket_untouched(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=FakeClock())
        assert bucket.try_acquire(3.0) == pytest.approx(1.0)
        assert bucket.available == pytest.approx(2.0)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_rate_limit_sheds_with_hint(self):
        clock = FakeClock()
        controller = AdmissionController(
            AdmissionConfig(rate=10.0, burst=2.0, retry_after_floor=0.05),
            clock=clock,
        )
        with controller.admit():
            pass
        with controller.admit():
            pass
        with pytest.raises(RateLimited) as exc:
            controller.admit()
        assert exc.value.status == 429
        assert exc.value.retry_after == pytest.approx(0.1)  # 1 token at 10/s
        assert controller.counts["rate_limited"] == 1

    def test_retry_after_floor(self):
        controller = AdmissionController(
            AdmissionConfig(rate=1e6, burst=1.0, retry_after_floor=0.25),
            clock=FakeClock(),
        )
        controller.admit().__exit__()
        with pytest.raises(RateLimited) as exc:
            controller.admit()
        assert exc.value.retry_after == 0.25

    def test_bounded_pending_sheds_503(self):
        controller = AdmissionController(
            AdmissionConfig(rate=100.0, burst=50.0, max_pending=1, deadline=0.5),
            clock=FakeClock(),
        )
        slot = controller.admit()
        assert controller.pending == 1
        with pytest.raises(Overloaded) as exc:
            controller.admit()
        assert exc.value.status == 503
        assert exc.value.retry_after == pytest.approx(0.5)  # the deadline
        assert controller.counts["overloaded"] == 1
        with slot:
            pass  # releasing the slot reopens the door
        assert controller.pending == 0
        with controller.admit():
            assert controller.pending == 1

    def test_deadline_exceeded_is_counted_not_raised(self):
        controller = AdmissionController(
            AdmissionConfig(deadline=0.3), clock=FakeClock()
        )
        exc = controller.note_deadline_exceeded()
        assert isinstance(exc, Overloaded)
        assert exc.retry_after == pytest.approx(0.3)
        assert controller.counts["deadline"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionConfig(max_pending=0)
        with pytest.raises(ValueError, match="deadline"):
            AdmissionConfig(deadline=0.0)


def post_raw(address, payload):
    """POST an observation with stdlib urllib, returning
    ``(status, body, headers)`` — the client hides headers, and header
    checks are the point here."""
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}/observations",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def observation(t, user=0, service=0, value=1.0):
    return {"timestamp": t, "user_id": user, "service_id": service, "value": value}


class TestServerShedding:
    def test_rate_limit_429_with_retry_after(self):
        admission = AdmissionConfig(rate=0.5, burst=1.0, retry_after_floor=0.05)
        with PredictionServer(
            rng=0, background_replay=False, admission=admission
        ) as server:
            status, __, __ = post_raw(server.address, observation(0.0))
            assert status == 200
            status, body, headers = post_raw(server.address, observation(1.0))
            assert status == 429
            assert body["retry_after"] > 0
            # RFC 9110 header: integer seconds, rounded up, never 0.
            assert int(headers["Retry-After"]) >= 1
            # Predictions are never shed: the read path stays available
            # with the observation bucket empty.
            client = PredictionClient(server.address)
            assert client.predict(0, 0) > 0
            counts = client.status()["robustness"]["admission"]
            assert counts["rate_limited"] == 1

    def test_deadline_shed_503_while_predictions_serve(self):
        admission = AdmissionConfig(
            rate=100.0, burst=50.0, max_pending=4, deadline=0.15
        )
        with PredictionServer(
            rng=0, background_replay=False, admission=admission
        ) as server:
            client = PredictionClient(server.address)
            client.report_observation(0, 0, 1.0, 0.0)
            server._ingest_lock.acquire()  # a stuck checkpoint, in effect
            try:
                results = {}

                def blocked_post():
                    results["observation"] = post_raw(
                        server.address, observation(1.0)
                    )

                poster = threading.Thread(target=blocked_post)
                poster.start()
                # The read path must not be behind the ingest lock.
                assert client.predict(0, 0) > 0
                poster.join(timeout=5.0)
            finally:
                server._ingest_lock.release()
            status, body, headers = results["observation"]
            assert status == 503
            assert "deadline" in body["error"]
            assert body["retry_after"] > 0
            assert int(headers["Retry-After"]) >= 1
            assert server.admission.counts["deadline"] == 1
            # The lock is free again: ingestion resumes.
            client.report_observation(0, 0, 1.0, 2.0)

    def test_batch_charged_by_item_count(self):
        admission = AdmissionConfig(rate=0.5, burst=5.0)
        with PredictionServer(
            rng=0, background_replay=False, admission=admission
        ) as server:
            client = PredictionClient(server.address)
            oversized = [observation(float(k), service=k) for k in range(10)]
            with pytest.raises(RetryableServiceError) as exc:
                client.report_observations_detailed(oversized)
            assert exc.value.status == 429
            assert server.model.updates_applied == 0
            # A batch within the burst passes whole.
            affordable = [observation(float(k), service=k) for k in range(5)]
            result = client.report_observations_detailed(affordable)
            assert result["accepted"] == 5


class TestClientRetryBehavior:
    def test_retry_after_hint_prefers_body(self):
        headers = email.message.Message()
        headers["Retry-After"] = "3"
        exc = urllib.error.HTTPError("http://x", 429, "shed", headers, None)
        assert _retry_after_hint(exc, {"retry_after": 0.4}) == 0.4
        assert _retry_after_hint(exc, {}) == 3.0
        assert _retry_after_hint(exc, None) == 3.0
        headers.replace_header("Retry-After", "soon")
        assert _retry_after_hint(exc, None) is None

    def test_retry_after_http_date_form(self):
        # RFC 9110 allows Retry-After as an HTTP-date; proxies commonly
        # rewrite delay-seconds into it.  The hint must survive the trip.
        from datetime import datetime, timedelta, timezone
        from email.utils import format_datetime

        headers = email.message.Message()
        future = datetime.now(timezone.utc) + timedelta(seconds=30)
        headers["Retry-After"] = format_datetime(future, usegmt=True)
        exc = urllib.error.HTTPError("http://x", 429, "shed", headers, None)
        hint = _retry_after_hint(exc, None)
        assert hint is not None
        assert 25.0 < hint <= 30.5

    def test_retry_after_http_date_in_past_clamps_to_zero(self):
        from datetime import datetime, timedelta, timezone
        from email.utils import format_datetime

        headers = email.message.Message()
        past = datetime.now(timezone.utc) - timedelta(seconds=60)
        headers["Retry-After"] = format_datetime(past, usegmt=True)
        exc = urllib.error.HTTPError("http://x", 503, "shed", headers, None)
        assert _retry_after_hint(exc, None) == 0.0

    def test_retry_after_garbage_still_none(self):
        headers = email.message.Message()
        headers["Retry-After"] = "next tuesday-ish"
        exc = urllib.error.HTTPError("http://x", 429, "shed", headers, None)
        assert _retry_after_hint(exc, None) is None

    def test_keyed_observation_post_is_retried_past_shedding(self):
        admission = AdmissionConfig(rate=5.0, burst=1.0, retry_after_floor=0.05)
        with PredictionServer(
            rng=0, background_replay=False, admission=admission
        ) as server:
            client = PredictionClient(
                server.address, retries=4, backoff=0.01, jitter=0.0
            )
            client.report_observation(0, 0, 1.0, 0.0, idempotency_key="k:0")
            # Bucket empty: the first attempt sheds, the retry honors the
            # server's hint and lands once a token accrues.
            client.report_observation(0, 0, 1.0, 1.0, idempotency_key="k:1")
            assert client.retries_performed >= 1
            assert server.model.updates_applied == 2
            assert server.admission.counts["rate_limited"] >= 1

    def test_retry_after_sleeps_are_jittered(self, monkeypatch):
        # Every shed client receives the same Retry-After number; if the
        # backoff honored it verbatim, the whole fleet would wake in the
        # same instant and re-create the stampede.  The hint must act as
        # a floor with jitter spread *above* it.
        client = PredictionClient(
            ("localhost", 1),
            retries=8,
            backoff=0.001,
            backoff_max=0.002,
            jitter=0.5,
        )
        exc = RetryableServiceError("shedding")
        exc.status = 429
        exc.retry_after = 0.5

        def always_shed(*args, **kwargs):
            raise exc

        sleeps: list = []
        monkeypatch.setattr(client, "_request_once", always_shed)
        monkeypatch.setattr(
            "repro.server.client.time.sleep", sleeps.append
        )
        with pytest.raises(RetryableServiceError):
            client.predict(0, 0)
        assert len(sleeps) == 8
        # Floor respected, ceiling bounded by the jitter factor...
        assert all(0.5 <= s <= 0.5 * 1.5 for s in sleeps)
        # ...and genuinely spread, not 8 identical wake-ups.
        assert len({round(s, 6) for s in sleeps}) > 1
        assert max(sleeps) - min(sleeps) > 0.01

    def test_bare_observation_post_is_never_retried(self):
        admission = AdmissionConfig(rate=5.0, burst=1.0)
        with PredictionServer(
            rng=0, background_replay=False, admission=admission
        ) as server:
            client = PredictionClient(server.address, retries=4, backoff=0.01)
            client.report_observation(0, 0, 1.0, 0.0)
            with pytest.raises(RetryableServiceError) as exc:
                client.report_observation(0, 0, 1.0, 1.0)
            assert exc.value.status == 429
            assert client.retries_performed == 0
            assert server.model.updates_applied == 1
