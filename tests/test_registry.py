"""Tests for the service registry and user manager."""

import pytest

from repro.adaptation import ServiceEntry, ServiceRegistry, UserManager


class TestServiceEntry:
    def test_default_name(self):
        entry = ServiceEntry(service_id=3, task_type="weather")
        assert entry.name == "weather-3"

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            ServiceEntry(service_id=-1, task_type="x")

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            ServiceEntry(service_id=0, task_type="")


class TestServiceRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        registry.register(0, "weather")
        assert 0 in registry
        assert registry.get(0).task_type == "weather"
        assert len(registry) == 1

    def test_double_register_rejected(self):
        registry = ServiceRegistry()
        registry.register(0, "weather")
        with pytest.raises(ValueError, match="already"):
            registry.register(0, "payment")

    def test_candidates_filtered_by_type(self):
        registry = ServiceRegistry()
        registry.register(0, "weather")
        registry.register(1, "payment")
        registry.register(2, "weather")
        assert registry.candidates_for("weather") == [0, 2]

    def test_candidates_exclude(self):
        registry = ServiceRegistry()
        registry.register(0, "weather")
        registry.register(1, "weather")
        assert registry.candidates_for("weather", exclude={0}) == [1]

    def test_deregister_hides_from_candidates(self):
        registry = ServiceRegistry()
        registry.register(0, "weather")
        registry.deregister(0)
        assert registry.candidates_for("weather") == []
        assert not registry.is_available(0)
        assert 0 in registry  # history retained

    def test_reinstate(self):
        registry = ServiceRegistry()
        registry.register(0, "weather")
        registry.deregister(0)
        registry.reinstate(0)
        assert registry.is_available(0)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            ServiceRegistry().get(7)

    def test_task_types(self):
        registry = ServiceRegistry()
        registry.register(0, "a")
        registry.register(1, "b")
        assert registry.task_types() == {"a", "b"}

    def test_all_ids_availability_filter(self):
        registry = ServiceRegistry()
        registry.register(0, "a")
        registry.register(1, "a")
        registry.deregister(0)
        assert registry.all_ids() == [1]
        assert registry.all_ids(include_unavailable=True) == [0, 1]

    def test_unavailable_id_not_available(self):
        assert not ServiceRegistry().is_available(3)


class TestUserManager:
    def test_join_and_active(self):
        users = UserManager()
        users.join(3, at=5.0)
        assert 3 in users
        assert users.is_active(3)
        assert users.active_users() == [3]

    def test_leave(self):
        users = UserManager()
        users.join(3)
        users.leave(3)
        assert not users.is_active(3)
        assert users.active_users() == []

    def test_rejoin_reactivates(self):
        users = UserManager()
        users.join(3)
        users.leave(3)
        users.join(3)
        assert users.is_active(3)

    def test_leave_unknown_raises(self):
        with pytest.raises(KeyError):
            UserManager().leave(9)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            UserManager().join(-1)

    def test_len_counts_all_known(self):
        users = UserManager()
        users.join(1)
        users.join(2)
        users.leave(1)
        assert len(users) == 2
