"""Prediction-cache correctness: a stale entry must never be served.

Staleness in the cache (:class:`repro.core.online.PredictionCache`) is
detected by comparing the per-row version stamps the SGD write sites bump;
the explicit ``invalidate_user``/``invalidate_service`` hooks exist only
for hot/cold tiering transitions, where slot recycling makes version
stamps insufficient.  These tests drive every write site (scalar online
updates, vectorized replay scatter, parallel-engine copy-out, row
reinitialisation) plus the two restart-shaped paths (checkpoint restore,
standby catch-up) and assert the served values always match a cache-free
recomputation — and that the eviction counter/size gauge stay truthful
under demote/revive churn.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveMatrixFactorization,
    AMFConfig,
    ConcurrentModel,
    ParallelReplayEngine,
    PredictionCache,
)
from repro.datasets.schema import QoSRecord
from repro.server.app import PredictionServer
from repro.server.client import PredictionClient


def _feed(model, n=300, n_users=15, n_services=25, seed=3):
    rng = np.random.default_rng(seed)
    for k in range(n):
        model.observe(
            QoSRecord(
                timestamp=float(k),
                user_id=int(rng.integers(0, n_users)),
                service_id=int(rng.integers(0, n_services)),
                value=float(rng.random() * 10 + 0.1),
            )
        )


class TestCacheUnit:
    def test_cold_then_hit_then_stale(self):
        cache = PredictionCache(capacity=8)
        assert cache.get(1, 2, 10, 20) is None  # cold
        cache.put(1, 2, 3.5, 10, 20)
        assert cache.get(1, 2, 10, 20) == 3.5  # hit
        assert cache.get(1, 2, 11, 20) is None  # user moved
        cache.put(1, 2, 3.5, 10, 20)
        assert cache.get(1, 2, 10, 21) is None  # service moved
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 3

    def test_lru_eviction(self):
        cache = PredictionCache(capacity=2)
        cache.put(0, 0, 1.0, 0, 0)
        cache.put(0, 1, 2.0, 0, 0)
        assert cache.get(0, 0, 0, 0) == 1.0  # refresh 0 -> 1 is now LRU
        cache.put(0, 2, 3.0, 0, 0)
        assert cache.get(0, 1, 0, 0) is None
        assert cache.get(0, 0, 0, 0) == 1.0
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            PredictionCache(capacity=0)

    def test_clear(self):
        cache = PredictionCache()
        cache.put(0, 0, 1.0, 0, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(0, 0, 0, 0) is None


class TestVersionStamps:
    def test_observe_bumps_both_entities(self):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        _feed(model, n=50)
        user_before = model.user_version(3)
        service_before = model.service_version(4)
        other_user = model.user_version(5)
        model.observe(
            QoSRecord(timestamp=100.0, user_id=3, service_id=4, value=2.0)
        )
        assert model.user_version(3) == user_before + 1
        assert model.service_version(4) == service_before + 1
        assert model.user_version(5) == other_user

    @pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
    def test_replay_bumps_touched_rows(self, kernel):
        model = AdaptiveMatrixFactorization(
            AMFConfig.for_response_time(kernel=kernel), rng=0
        )
        _feed(model, n=300)
        before = [model.user_version(u) for u in range(model.n_users)]
        applied, __, __ = model.replay_many(300.0, 200)
        assert applied == 200
        after = [model.user_version(u) for u in range(model.n_users)]
        assert sum(after) == sum(before) + applied

    def test_parallel_replay_bumps_touched_rows(self):
        model = AdaptiveMatrixFactorization(
            AMFConfig.for_response_time(kernel="vectorized"), rng=0
        )
        _feed(model, n=300)
        before = sum(model.user_version(u) for u in range(model.n_users))
        with ParallelReplayEngine(model, n_workers=2):
            applied, __, __ = model.replay_many(300.0, 200, kernel="parallel")
        after = sum(model.user_version(u) for u in range(model.n_users))
        assert applied == 200
        assert after == before + applied

    def test_forget_bumps_versions(self):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        _feed(model, n=100)
        user_before = model.user_version(2)
        service_before = model.service_version(2)
        model.forget_user(2)
        model.forget_service(2)
        assert model.user_version(2) > user_before
        assert model.service_version(2) > service_before


class TestBatchPathAgainstCache:
    def _batch_equals_per_pair(self, cm, cache, user_id, service_ids):
        values, __ = cm.predict_batch_known(user_id, service_ids, cache)
        for service_id, value in zip(service_ids, values):
            expected = cm.predict_known(user_id, service_id)
            if expected is None:
                assert value is None
            else:
                assert value == pytest.approx(expected, abs=0.0)

    def test_cached_batch_matches_per_pair_predictions(self):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        _feed(model)
        cm = ConcurrentModel(model)
        cache = PredictionCache()
        ids = list(range(10)) + [999]
        # Twice: first pass fills the cache, second serves from it.
        self._batch_equals_per_pair(cm, cache, 1, ids)
        self._batch_equals_per_pair(cm, cache, 1, ids)
        assert cache.stats()["hits"] > 0

    def test_no_stale_serving_after_every_write_kind(self):
        model = AdaptiveMatrixFactorization(
            AMFConfig.for_response_time(kernel="vectorized"), rng=0
        )
        _feed(model)
        cm = ConcurrentModel(model)
        cache = PredictionCache()
        ids = list(range(12))
        self._batch_equals_per_pair(cm, cache, 0, ids)
        # Online SGD write.
        model.observe(QoSRecord(timestamp=301.0, user_id=0, service_id=3, value=9.0))
        self._batch_equals_per_pair(cm, cache, 0, ids)
        # Vectorized replay.
        model.replay_many(301.0, 150)
        self._batch_equals_per_pair(cm, cache, 0, ids)
        # Parallel replay.
        with ParallelReplayEngine(model, n_workers=2):
            model.replay_many(301.0, 150, kernel="parallel")
        self._batch_equals_per_pair(cm, cache, 0, ids)
        # Row reinitialisation.
        model.forget_user(0)
        self._batch_equals_per_pair(cm, cache, 0, ids)

    def test_unknown_user_returns_all_none_without_caching(self):
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        _feed(model)
        cm = ConcurrentModel(model)
        cache = PredictionCache()
        values, hits = cm.predict_batch_known(10_000, [0, 1], cache)
        assert values == [None, None]
        assert hits == 0
        assert len(cache) == 0


class TestServerCacheInvalidation:
    def _predictions(self, client, user_id, ids):
        return client.predict_candidates(user_id, ids)

    def test_stale_never_served_after_observation(self, tmp_path):
        with PredictionServer(
            rng=0, background_replay=False, data_dir=str(tmp_path)
        ) as server:
            client = PredictionClient(server.address)
            for k in range(100):
                client.report_observation(
                    k % 4, k % 6, value=2.0 + (k % 3), timestamp=float(k)
                )
            ids = list(range(6))
            first = self._predictions(client, 0, ids)
            again = self._predictions(client, 0, ids)
            assert first == again  # cache serves, values stable
            hits_before = server._predict_cache.stats()["hits"]
            assert hits_before > 0
            # Teach the model something new about user 0, then re-ask: the
            # answers must reflect the write immediately.
            client.report_observation(0, 2, value=15.0, timestamp=200.0)
            after = self._predictions(client, 0, ids)
            assert after != first
            uncached = {
                sid: server.model.predict_known(0, sid) for sid in ids
            }
            for sid in ids:
                assert after[sid] == pytest.approx(uncached[sid], abs=0.0)
            client.close()

    def test_stale_never_served_after_background_replay(self, tmp_path):
        with PredictionServer(
            rng=0, background_replay=True, data_dir=str(tmp_path)
        ) as server:
            client = PredictionClient(server.address)
            for k in range(200):
                client.report_observation(
                    k % 5, k % 7, value=1.0 + (k % 4), timestamp=float(k)
                )
            ids = list(range(7))
            replays_before = server.trainer.replays_applied
            self._predictions(client, 1, ids)
            # Wait for background replay to touch the factors.
            deadline = 5.0
            import time

            start = time.monotonic()
            while (
                server.trainer.replays_applied == replays_before
                and time.monotonic() - start < deadline
            ):
                time.sleep(0.01)
            assert server.trainer.replays_applied > replays_before
            served = self._predictions(client, 1, ids)
            uncached = {
                sid: server.model.predict_known(1, sid) for sid in ids
            }
            # The serve and the recompute race background replay, so allow
            # the model to have moved *between* the two reads — re-serving
            # must converge to the uncached answer once replay pauses.
            server.trainer.stop()
            served = self._predictions(client, 1, ids)
            uncached = {
                sid: server.model.predict_known(1, sid) for sid in ids
            }
            for sid in ids:
                assert served[sid] == pytest.approx(uncached[sid], abs=0.0)
            client.close()

    def test_cache_correct_across_checkpoint_restore(self, tmp_path):
        data_dir = str(tmp_path)
        with PredictionServer(
            rng=0, background_replay=False, data_dir=data_dir
        ) as server:
            client = PredictionClient(server.address)
            for k in range(120):
                client.report_observation(
                    k % 4, k % 5, value=2.0 + (k % 3), timestamp=float(k)
                )
            ids = list(range(5))
            before = self._predictions(client, 0, ids)
            before = self._predictions(client, 0, ids)  # cache is warm
            client.close()
        # Restore: fresh process state, fresh (empty) cache, version
        # counters restarted — recovery must serve from the restored
        # factors, not from anything cached pre-crash.
        with PredictionServer(
            rng=0, background_replay=False, data_dir=data_dir
        ) as restored:
            client = PredictionClient(restored.address)
            assert restored._predict_cache.stats()["size"] == 0
            after = self._predictions(client, 0, ids)
            uncached = {
                sid: restored.model.predict_known(0, sid) for sid in ids
            }
            for sid in ids:
                assert after[sid] == pytest.approx(uncached[sid], abs=0.0)
            # Recovery is exact, so restored answers match pre-restart ones.
            for sid in ids:
                assert after[sid] == pytest.approx(before[sid], abs=0.0)
            client.close()

    def test_cache_disabled_server_still_serves(self):
        with PredictionServer(
            rng=0, background_replay=False, predict_cache_size=None
        ) as server:
            client = PredictionClient(server.address)
            client.report_observation(0, 0, value=2.0, timestamp=0.0)
            predictions = self._predictions(client, 0, [0, 1])
            assert set(predictions) == {0, 1}
            assert server._predict_cache is None
            assert client.status()["predict_cache"] is None
            client.close()


class TestStandbyCatchUp:
    def test_standby_cache_invalidated_by_replication(self, tmp_path):
        """A standby's cache must go stale when shipped records are applied
        through the replication path (no client writes involved)."""
        from repro.server.replication import ReplicationConfig

        store = str(tmp_path / "epoch.json")
        primary = PredictionServer(
            rng=0,
            background_replay=False,
            data_dir=str(tmp_path / "primary"),
            replication=ReplicationConfig(store, role="primary", node_id="p1"),
        )
        primary.start()
        standby = PredictionServer(
            rng=0,
            background_replay=False,
            data_dir=str(tmp_path / "standby"),
            replication=ReplicationConfig(
                store,
                role="standby",
                node_id="s1",
                primary_address=primary.address,
            ),
        )
        standby.start()
        try:
            # Deterministic catch-up: stop the pull thread, poll explicitly.
            standby._replicator.stop()
            client = PredictionClient(primary.address)
            for k in range(60):
                client.report_observation(
                    k % 3, k % 4, value=2.0 + (k % 2), timestamp=float(k)
                )
            while standby._replicator.poll_once():
                pass
            sclient = PredictionClient(standby.address)
            ids = list(range(4))
            first = sclient.predict_candidates(0, ids)
            first = sclient.predict_candidates(0, ids)  # warm the cache
            assert standby._predict_cache.stats()["hits"] > 0
            # More primary writes, shipped to the standby.
            client.report_observation(0, 1, value=19.0, timestamp=100.0)
            client.report_observation(0, 2, value=19.0, timestamp=101.0)
            while standby._replicator.poll_once():
                pass
            after = sclient.predict_candidates(0, ids)
            uncached = {
                sid: standby.model.predict_known(0, sid) for sid in ids
            }
            for sid in ids:
                assert after[sid] == pytest.approx(uncached[sid], abs=0.0)
            assert after != first
            client.close()
            sclient.close()
        finally:
            standby.stop()
            primary.stop()


class TestEvictionMetricsUnderChurn:
    def test_demote_revive_churn_tracks_counter_and_size_gauge(self):
        from repro.lifecycle import LifecycleConfig
        from repro.observability import get_registry

        registry = get_registry()
        evictions = registry.counter("qos_predict_cache_evictions_total")
        size_gauge = registry.gauge("qos_predict_cache_size")
        with PredictionServer(
            rng=0,
            background_replay=False,
            predict_cache_size=256,
            lifecycle=LifecycleConfig(hot_users=8, hot_services=8),
        ) as server:
            client = PredictionClient(server.address, transport="json")
            # Fill the hot tier exactly, then cache predictions for the
            # oldest users.
            for k in range(64):
                client.report_observation(
                    k % 8, k // 8, value=1.0 + (k % 5), timestamp=float(k)
                )
            for u in range(4):
                client.predict_candidates(u, list(range(8)))
            cache = server._predict_cache
            assert len(cache) > 0
            assert size_gauge.value == float(len(cache))
            assert 0 in cache._by_user
            before = evictions.value

            # Churn: new users overflow the hot tier; demotions must
            # invalidate the demoted users' cached predictions.
            for k in range(32):
                client.report_observation(
                    100 + k, k % 8, value=2.0, timestamp=float(100 + k)
                )
            status = server._lifecycle_status()
            assert status["demoted_users"] > 0
            assert 0 not in cache._by_user  # user 0's entries dropped
            churn_evictions = evictions.value - before
            assert churn_evictions >= 1
            assert cache.stats()["evictions"] >= churn_evictions
            assert size_gauge.value == float(len(cache))

            # Revive-on-read brings user 0 back hot; the revive itself
            # invalidates (a no-op here — entries are already gone), and
            # fresh predictions re-enter the cache and the gauge follows.
            detailed = client.predict_candidates_detailed(0, list(range(8)))
            assert server.model.with_model(lambda m: m.knows_user(0))
            assert server._lifecycle_status()["revived_users"] > 0
            assert any(
                source == "model" for source in detailed["sources"].values()
            )
            client.predict_candidates(0, list(range(8)))
            assert 0 in cache._by_user
            assert size_gauge.value == float(len(cache))
            client.close()
