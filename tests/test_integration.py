"""Cross-module integration tests: full pipelines through the public API."""

import numpy as np
import pytest

from repro import AdaptiveMatrixFactorization, AMFConfig, StreamTrainer
from repro.adaptation import (
    SLA,
    AbstractTask,
    ExecutionEngine,
    QoSPredictionService,
    ServiceRegistry,
    TensorQoSOracle,
    ThresholdPolicy,
    UserManager,
    Workflow,
)
from repro.datasets import generate_dataset, train_test_split_matrix
from repro.datasets.stream import stream_from_matrix, stream_from_slices
from repro.metrics import mre, score_all, top_k_hit_rate
from repro.simulation import ChurnSchedule, SimClock


class TestPredictionPipeline:
    def test_generate_split_train_score(self):
        """The quickstart path end to end."""
        data = generate_dataset(n_users=25, n_services=50, n_slices=1, seed=0)
        train, test = train_test_split_matrix(data.slice(0), 0.3, rng=0)
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=0)
        model.ensure_user(24)
        model.ensure_service(49)
        report = StreamTrainer(model).process(stream_from_matrix(train, rng=0))
        assert report.converged
        rows, cols = test.observed_indices()
        scores = score_all(model.predict_matrix()[rows, cols], test.values[rows, cols])
        assert scores["MRE"] < 0.8

    def test_multi_slice_continuous_stream(self):
        """Feeding all slices as one continuous stream keeps the model
        current with the final slice's values."""
        data = generate_dataset(n_users=20, n_services=40, n_slices=4, seed=1)
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=1)
        trainer = StreamTrainer(model)
        stream = stream_from_slices(data, rng=1)
        trainer.process(stream)
        # Retained samples must come from the final slice's window only
        # (everything older has expired).
        assert model.n_stored_samples <= int(data.mask[-2:].sum())
        final = data.slice(3)
        rows, cols = final.observed_indices()
        predictions = model.predict_matrix()[rows, cols]
        assert mre(predictions, final.values[rows, cols]) < 0.6

    def test_prediction_supports_candidate_ranking(self):
        """QoS predictions are good enough to rank candidates (the actual
        adaptation use-case), measured with top-k hit rate."""
        data = generate_dataset(n_users=30, n_services=60, n_slices=1, seed=2)
        matrix = data.slice(0)
        train, __ = train_test_split_matrix(matrix, 0.4, rng=2)
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=2)
        model.ensure_user(29)
        model.ensure_service(59)
        StreamTrainer(model).process(stream_from_matrix(train, rng=2))
        predictions = model.predict_matrix()

        rng = np.random.default_rng(2)
        hits = []
        for __ in range(50):
            user = int(rng.integers(30))
            pool = rng.choice(60, size=8, replace=False)
            hits.append(
                top_k_hit_rate(predictions[user, pool], matrix.values[user, pool], k=3)
            )
        assert np.mean(hits) > 0.5  # random guessing would give 3/8


class TestAdaptationPipeline:
    def test_full_loop_with_churn(self):
        """Engine + policy + predictor + registry + churn + clock together."""
        data = generate_dataset(n_users=10, n_services=20, n_slices=4, seed=3)
        oracle = TensorQoSOracle(data, noise_sigma=0.05, rng=3)
        registry = ServiceRegistry()
        for sid in range(15):
            registry.register(sid, "t")
        # 5 services join later via the churn schedule.
        schedule = ChurnSchedule(
            [
                __import__("repro.simulation.churn", fromlist=["ChurnEvent"]).ChurnEvent(
                    timestamp=600.0, entity_kind="service", entity_id=sid, action="join"
                )
                for sid in range(15, 20)
            ]
        )
        workflow = Workflow(name="w", tasks=[AbstractTask("A", "t")])
        workflow.bind("A", 0)
        predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=3)
        sla = SLA(attribute="rt", threshold=2.0)
        engine = ExecutionEngine(
            user_id=0,
            workflow=workflow,
            registry=registry,
            predictor=predictor,
            policy=ThresholdPolicy(sla, improvement_margin=0.05),
            oracle=oracle,
            sla=sla,
            users=UserManager(),
        )
        clock = SimClock()
        for __ in range(60):
            clock.advance(30.0)
            for event in schedule.pop_due(clock.now):
                registry.register(event.entity_id, "t", at=event.timestamp)
            engine.execute_once(clock.now)
        assert engine.stats.executions == 60
        assert len(registry) == 20  # churned services arrived
        assert predictor.observations_handled == 60

    def test_predictor_shared_across_users(self):
        """Two engines (users) share one prediction service — the
        collaborative-filtering premise of the framework."""
        data = generate_dataset(n_users=6, n_services=10, n_slices=2, seed=4)
        oracle = TensorQoSOracle(data, noise_sigma=0.0, rng=4)
        registry = ServiceRegistry()
        for sid in range(10):
            registry.register(sid, "t")
        predictor = QoSPredictionService(AMFConfig.for_response_time(), rng=4)
        sla = SLA(attribute="rt", threshold=3.0)
        engines = []
        for user_id in (0, 1):
            workflow = Workflow(name=f"w{user_id}", tasks=[AbstractTask("A", "t")])
            workflow.bind("A", user_id)
            engines.append(
                ExecutionEngine(
                    user_id=user_id,
                    workflow=workflow,
                    registry=registry,
                    predictor=predictor,
                    policy=ThresholdPolicy(sla),
                    oracle=oracle,
                    sla=sla,
                )
            )
        for k in range(20):
            for engine in engines:
                engine.execute_once(now=k * 30.0)
        assert predictor.observations_handled == 40
        assert predictor.model.n_users >= 2


class TestRealDatasetFormatPipeline:
    def test_wsdream_file_to_amf(self, tmp_path):
        """Write a tiny dataset in the real WS-DREAM text format, load it,
        and run the full train/predict pipeline on it."""
        rng = np.random.default_rng(5)
        lines = []
        for t in range(2):
            for u in range(8):
                for s in range(12):
                    if rng.random() < 0.7:
                        lines.append(f"{u} {s} {t} {rng.uniform(0.1, 5.0):.4f}")
        (tmp_path / "rtdata.txt").write_text("\n".join(lines))

        from repro.datasets.wsdream import load_wsdream_directory

        data = load_wsdream_directory(str(tmp_path))
        train, test = train_test_split_matrix(data.slice(0), 0.4, rng=5)
        model = AdaptiveMatrixFactorization(AMFConfig.for_response_time(), rng=5)
        model.ensure_user(data.n_users - 1)
        model.ensure_service(data.n_services - 1)
        StreamTrainer(model).process(stream_from_matrix(train, rng=5))
        rows, cols = test.observed_indices()
        predictions = model.predict_matrix()[rows, cols]
        assert np.all(np.isfinite(predictions))
        assert mre(predictions, test.values[rows, cols]) < 2.0
